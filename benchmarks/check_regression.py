#!/usr/bin/env python
"""Bench regression gate: compare benchmarks/results/*.json against the
committed baselines (benchmarks/baselines.json).

The benches export deterministic, work-unit-derived scalars (improvement
percentages, affected-query counts, optimizer state counts) — not wall
times — so the baselines are stable across machines.  A metric fails the
gate when it moves in its *worse* direction by more than the tolerance
(default 25%).  Metrics with no preferred direction fail on movement
either way.

Usage:
    python benchmarks/check_regression.py            # gate (CI)
    python benchmarks/check_regression.py --update   # re-seed baselines
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
RESULTS_DIR = HERE / "results"
BASELINES = HERE / "baselines.json"

#: which way each metric is allowed to drift beyond tolerance.
#: "higher" = higher is better (only a drop fails), "lower" = lower is
#: better (only a rise fails), "either" = any drift beyond tolerance fails.
DIRECTIONS = {
    "n_affected": "higher",
    "top5_improvement_percent": "higher",
    "overall_improvement_percent": "higher",
    "degraded_query_percent": "lower",
    "optimization_time_increase_percent": "lower",
    "blocks_without_reuse": "either",
    "blocks_with_reuse": "lower",
    "blocks_saved": "higher",
    "states_heuristic": "either",
    "states_two_pass": "either",
    "states_linear": "either",
    "states_exhaustive": "either",
    # row -> vector executor wall-clock speedups (paired same-machine
    # ratios; only a drop beyond tolerance regresses)
    "executor_speedup_scan_filter": "higher",
    "executor_speedup_aggregate": "higher",
    "executor_speedup_projection": "higher",
    "executor_speedup_micro_median": "higher",
    "executor_speedup_paper_q4": "higher",
    # serving front end load bench (wall-clock; baselines are recorded
    # conservatively, the gate catches collapses, not machine noise)
    "server_statements_per_sec": "higher",
    "server_p95_latency_ms": "lower",
    # durable-storage recovery throughput (wall-clock, conservative
    # baselines for the same reason)
    "durability_replay_rows_per_sec": "higher",
    "durability_replay_records_per_sec": "higher",
    "durability_checkpoint_load_rows_per_sec": "higher",
    # subplan-memo effectiveness (deterministic counters from the
    # optimizer; a drop means states stopped sharing physical subplans)
    "memo_hit_rate_percent": "higher",
    "memo_join_enumerations_saved": "higher",
}

#: per-metric tolerance overrides (percent), tighter than the blanket
#: default.  optimization_time_increase_percent is the memo's headline
#: win — it is deterministic (fresh join-order enumerations, no wall
#: clock), so any backslide beyond 10% is a real sharing regression,
#: not machine noise.
TOLERANCES = {
    "optimization_time_increase_percent": 10.0,
    "memo_hit_rate_percent": 10.0,
    "memo_join_enumerations_saved": 10.0,
}


def load_results() -> dict[str, dict]:
    results = {}
    for path in sorted(RESULTS_DIR.glob("*.json")):
        payload = json.loads(path.read_text())
        results[path.stem] = payload
    return results


def relative_delta(baseline: float, current: float) -> float:
    """Signed drift of *current* from *baseline*, as a fraction of the
    baseline magnitude (floored so near-zero baselines don't blow up)."""
    scale = max(abs(baseline), 1.0)
    return (current - baseline) / scale


def check(tolerance_percent: float, only: str | None = None) -> int:
    if not BASELINES.exists():
        print(f"error: no baselines at {BASELINES}", file=sys.stderr)
        return 2
    baselines = json.loads(BASELINES.read_text())
    if only is not None:
        baselines = {
            bench: entry for bench, entry in baselines.items()
            if bench.startswith(only)
        }
        if not baselines:
            print(f"error: no baselines match --only {only}", file=sys.stderr)
            return 2
    results = load_results()
    failures: list[str] = []
    checked = 0

    for bench, entry in sorted(baselines.items()):
        current = results.get(bench)
        if current is None:
            failures.append(f"{bench}: no result produced (bench missing?)")
            continue
        if current.get("quick") != entry.get("quick"):
            failures.append(
                f"{bench}: quick-mode mismatch (baseline "
                f"quick={entry.get('quick')}, run quick={current.get('quick')})"
            )
            continue
        for metric, base_value in sorted(entry["metrics"].items()):
            new_value = current["metrics"].get(metric)
            if new_value is None:
                failures.append(f"{bench}.{metric}: missing from results")
                continue
            checked += 1
            drift = relative_delta(base_value, new_value)
            direction = DIRECTIONS.get(metric, "either")
            allowed_percent = min(
                TOLERANCES.get(metric, tolerance_percent), tolerance_percent
            )
            allowed = allowed_percent / 100.0
            worse = (
                (direction == "higher" and drift < -allowed)
                or (direction == "lower" and drift > allowed)
                or (direction == "either" and abs(drift) > allowed)
            )
            marker = "FAIL" if worse else "ok"
            print(
                f"  [{marker:>4}] {bench}.{metric}: "
                f"{base_value} -> {new_value} ({drift * 100:+.1f}%, "
                f"{direction} is better, ±{allowed_percent:.0f}%)"
            )
            if worse:
                failures.append(
                    f"{bench}.{metric}: {base_value} -> {new_value} "
                    f"({drift * 100:+.1f}% beyond {allowed_percent:.0f}%)"
                )

    print(f"\n{checked} metrics checked against {BASELINES.name}")
    if failures:
        print(f"{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


def update() -> int:
    results = load_results()
    if not results:
        print(f"error: no results under {RESULTS_DIR}", file=sys.stderr)
        return 2
    BASELINES.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(results)} baselines to {BASELINES}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="overwrite baselines.json with the current results",
    )
    parser.add_argument(
        "--tolerance", type=float, default=25.0,
        help="allowed drift in the worse direction, percent (default 25)",
    )
    parser.add_argument(
        "--only", default=None, metavar="PREFIX",
        help="gate only baselines whose name starts with PREFIX (lets a "
        "job that ran a single bench skip the others' missing results)",
    )
    args = parser.parse_args(argv)
    if args.update:
        return update()
    return check(args.tolerance, args.only)


if __name__ == "__main__":
    sys.exit(main())
