"""Table 1 — Re-use and state space (§3.4.2).

For a Q1-style query with two unnestable subqueries, exhaustive search
costs 4 states, each containing 3 query blocks = 12 block optimizations.
Q_S1, Q_S2, T(Q_S1) and T(Q_S2) each appear in two states, so cost
annotation reuse answers 4 of the 12 from the annotation store.

The bench regenerates the table (which blocks are optimized per state)
and asserts the paper's arithmetic: 12 optimizations without reuse, 8
with (4 reused)."""

import pytest

from repro import OptimizerConfig
from repro.cbqt.framework import CbqtConfig, CbqtFramework
from repro.optimizer.annotations import AnnotationStore
from repro.optimizer.physical import OptimizerCounters, PhysicalOptimizer

from conftest import record_report

Q1_STYLE = """
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j
WHERE e1.emp_id = j.emp_id AND j.start_date > '1998-01-01'
  AND e1.salary > (SELECT AVG(e2.salary) FROM employees e2
                   WHERE e2.dept_id = e1.dept_id)
  AND e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l
                     WHERE d.loc_id = l.loc_id AND l.country_id = 1)
"""


def run_exhaustive(hr_db, reuse: bool) -> OptimizerCounters:
    counters = OptimizerCounters()
    physical = PhysicalOptimizer(
        hr_db.catalog, hr_db.statistics,
        annotations=AnnotationStore(enabled=reuse), counters=counters,
    )
    framework = CbqtFramework(
        hr_db.catalog, physical,
        # interleaving off: the paper's Table 1 enumerates the plain 2x2
        # unnesting space (states (0,0) (1,0) (0,1) (1,1))
        CbqtConfig(search_strategy="exhaustive", interleaving=False,
                   juxtaposition=False, cost_cutoff=False),
    )
    framework.optimize(hr_db.parse(Q1_STYLE))
    return counters


@pytest.mark.benchmark(group="table1")
def test_table1_annotation_reuse(benchmark, hr_db):
    def measure():
        with_reuse = run_exhaustive(hr_db, reuse=True)
        without_reuse = run_exhaustive(hr_db, reuse=False)
        return with_reuse, without_reuse

    with_reuse, without_reuse = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    lines = [
        "Table 1. Re-use and State Space (Q1-style query, exhaustive)",
        "",
        "  state   query blocks optimized",
        "  (0,0)   Q_S1    Q_S2    Q_O",
        "  (1,0)   T(Q_S1) Q_S2    Q_O",
        "  (0,1)   Q_S1    T(Q_S2) Q_O",
        "  (1,1)   T(Q_S1) T(Q_S2) Q_O",
        "",
        f"  block optimizations without reuse: {without_reuse.blocks_optimized}",
        f"  block optimizations with reuse:    {with_reuse.blocks_optimized}",
        f"  avoided by cost-annotation reuse:  "
        f"{without_reuse.blocks_optimized - with_reuse.blocks_optimized}",
        "",
        "  paper: 12 total, 4 of 12 avoided",
    ]
    record_report(
        "Table 1 annotation reuse",
        "\n".join(lines),
        metrics={
            "blocks_without_reuse": without_reuse.blocks_optimized,
            "blocks_with_reuse": with_reuse.blocks_optimized,
            "blocks_saved": (
                without_reuse.blocks_optimized - with_reuse.blocks_optimized
            ),
        },
    )

    # Paper shape: 4 states x 3 blocks = 12 without reuse...
    assert without_reuse.blocks_optimized >= 12
    # ...and reuse eliminates at least the 4 repeat subquery optimizations.
    saved = without_reuse.blocks_optimized - with_reuse.blocks_optimized
    assert saved >= 4
