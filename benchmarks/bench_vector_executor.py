"""Row vs vectorized executor: microbench + paper-figure queries.

The vectorized engine must pay for itself: this bench runs the same
optimized plans through the row-at-a-time and batch engines (identical
plans, identical work units — only the interpretation loop differs) and
reports wall-clock speedups as ``executor_speedup_*`` metrics.

Speedups are *ratios of paired runs on the same machine*, so they are
stable enough to gate: the committed baselines fail the build when a
speedup drops by more than the regression tolerance (direction:
higher is better).

Targets (asserted here, gated in CI):

* >= 3x median speedup across the wide-table scan/filter/aggregate
  microbench;
* >= 1.5x on at least one paper-figure query.
"""

from __future__ import annotations

import statistics
import sys
import time
from collections import Counter
from pathlib import Path

from repro import Database

from conftest import QUICK, record_report

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
import paper_queries  # noqa: E402

WIDE_ROWS = 12_000 if QUICK else 40_000
REPEATS = 3 if QUICK else 5

#: wide-table microbench: selective conjunctive filter, grouped
#: aggregation, and expression-heavy projection — the shapes the
#: compiled kernels target
MICRO_QUERIES = {
    "scan_filter": (
        "SELECT a, b FROM wide WHERE c > 3 AND e < 20 AND d IS NOT NULL"
    ),
    "aggregate": "SELECT b, COUNT(*), SUM(a), MIN(e) FROM wide GROUP BY b",
    "projection": (
        "SELECT a + b, c * 2, CASE WHEN d IS NULL THEN 0 ELSE d END "
        "FROM wide"
    ),
}

#: paper worked examples (see tests/paper_queries.py); Q4/Q5 are the
#: join-elimination candidates whose post-transformation plans are pure
#: scan/filter/join pipelines — exactly the batch engine's native path
PAPER_QUERIES = {
    "paper_q2": paper_queries.Q2,
    "paper_q4": paper_queries.Q4,
}


def _wide_db() -> Database:
    db = Database()
    db.execute_ddl(
        "CREATE TABLE wide (a INT, b INT, c INT, d INT, e INT, f INT)"
    )
    db.insert(
        "wide",
        [
            {
                "a": i % 1000,
                "b": i % 97,
                "c": i % 13,
                "d": i % 7 if i % 10 else None,
                "e": i % 29,
                "f": i % 5,
            }
            for i in range(WIDE_ROWS)
        ],
    )
    db.analyze()
    return db


def _paired_speedup(db: Database, sql: str) -> tuple[float, float, float]:
    """Median wall seconds for the row and vector engines over the *same*
    optimized plan, interleaved so cache warmth hits both equally."""
    optimized = db.optimize(sql)
    row_times, vector_times = [], []
    expected = Counter(db.execute_plan(optimized, executor="row").rows)
    for _ in range(REPEATS):
        started = time.perf_counter()
        db.execute_plan(optimized, executor="row")
        row_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        got = db.execute_plan(optimized, executor="vector")
        vector_times.append(time.perf_counter() - started)
        assert Counter(got.rows) == expected, "engines disagree on rows"
    row_s = statistics.median(row_times)
    vector_s = statistics.median(vector_times)
    return row_s, vector_s, row_s / vector_s


def test_vector_executor_speedup(hr_db):
    wide = _wide_db()
    lines = [
        "row vs vectorized executor (same plans, paired runs)",
        f"{'query':>14} {'row ms':>9} {'vector ms':>10} {'speedup':>8}",
    ]
    metrics: dict[str, float] = {}
    micro_speedups = []

    for name, sql in MICRO_QUERIES.items():
        row_s, vector_s, speedup = _paired_speedup(wide, sql)
        micro_speedups.append(speedup)
        metrics[f"executor_speedup_{name}"] = round(speedup, 2)
        lines.append(
            f"{name:>14} {row_s * 1e3:9.1f} {vector_s * 1e3:10.1f} "
            f"{speedup:7.2f}x"
        )

    paper_speedups = {}
    for name, sql in PAPER_QUERIES.items():
        row_s, vector_s, speedup = _paired_speedup(hr_db, sql)
        paper_speedups[name] = speedup
        # only q4 is gated: q2's sub-millisecond runtime makes its ratio
        # too noisy to commit as a baseline
        if name == "paper_q4":
            metrics[f"executor_speedup_{name}"] = round(speedup, 2)
        lines.append(
            f"{name:>14} {row_s * 1e3:9.1f} {vector_s * 1e3:10.1f} "
            f"{speedup:7.2f}x"
        )

    micro_median = statistics.median(micro_speedups)
    metrics["executor_speedup_micro_median"] = round(micro_median, 2)
    lines.append(f"microbench median speedup: {micro_median:.2f}x")
    record_report("vectorized executor speedup", "\n".join(lines), metrics)

    assert micro_median >= 3.0, (
        f"microbench median speedup {micro_median:.2f}x below 3x target"
    )
    assert max(paper_speedups.values()) >= 1.5, (
        f"no paper query reached 1.5x: {paper_speedups}"
    )
