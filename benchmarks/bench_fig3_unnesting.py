"""Figure 3 — unnesting disabled vs cost-based unnesting (§4.2).

Baseline: both unnesting transformations disabled entirely; subqueries
run under tuple-iteration semantics with correlation-value caching.
Treatment: cost-based unnesting.  The paper reports a ~387% average
improvement over the affected 5% of the workload, ~460% at the top 5%,
with ~15% of affected queries degrading ~50% and optimization time +31%.

Shape criteria: multiple-x improvement on affected queries; the benefit
*grows* toward the most expensive queries (TIS cost scales with outer
cardinality); optimization effort increases."""

import pytest

from repro import OptimizerConfig
from repro.workload import (
    degradation_stats,
    optimization_time_increase_percent,
    run_workload,
    top_n_curve,
)

from conftest import format_curve, record_report

UNNESTING = ("unnest_view", "subquery_merge")


@pytest.mark.benchmark(group="fig3")
def test_fig3_unnesting(benchmark, apps, complex_queries, mixed_queries):
    db, _schema = apps
    relevant = [
        q for q in list(complex_queries) + list(mixed_queries)
        if q.relevant & set(UNNESTING)
    ]
    assert len(relevant) >= 15

    def run():
        return run_workload(
            db, relevant,
            OptimizerConfig().without(*UNNESTING),
            OptimizerConfig(),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.errors, result.errors[:3]

    affected = result.affected()
    assert affected
    curve = top_n_curve(affected)
    stats = degradation_stats(affected)
    opt_increase = optimization_time_increase_percent(result.outcomes)

    report = format_curve(
        "Figure 3. Unnesting disabled vs cost-based unnesting, "
        "improvement over top-N% most expensive affected queries",
        curve,
        extra_lines=[
            "",
            f"  affected queries: {len(affected)} of {len(result.outcomes)}",
            f"  degraded: {stats.degraded_percent_of_queries:.0f}% of affected, "
            f"by {stats.average_degradation_percent:.0f}% on average",
            f"  optimization effort increase: {opt_increase:.0f}%",
            "",
            "  paper: +460% at top 5%, +387% average; 15% degraded ~50%; "
            "optimization time +31%",
        ],
    )
    record_report(
        "Figure 3 unnesting",
        report,
        metrics={
            "n_affected": len(affected),
            "top5_improvement_percent": round(curve[0].improvement_percent, 1),
            "overall_improvement_percent": round(
                curve[-1].improvement_percent, 1
            ),
            "degraded_query_percent": round(
                stats.degraded_percent_of_queries, 1
            ),
            "optimization_time_increase_percent": round(opt_increase, 1),
        },
    )

    overall = curve[-1].improvement_percent
    top5 = curve[0].improvement_percent
    # unnesting is the dominant win: multiple-x improvement
    assert overall > 100.0
    # and it benefits the most expensive queries more (paper's key shape)
    assert top5 >= overall
    assert stats.degraded_percent_of_queries < 50.0
    # the subplan memo serves most of the treated parse's join cores
    # (see bench_fig2): the pre-memo value here was ~44%
    assert opt_increase < 40.0
