"""Server load bench: N concurrent HTTP clients over the serving front
end, mixed soft-parse / hard-parse / DML traffic, every result
differentially checked.

The acceptance bar from the serving milestone: sustain >= 8 concurrent
clients end to end (HTTP -> admission -> session queue -> worker pool ->
snapshot read -> plan cache) with zero errors and zero wrong results,
and commit throughput (statements/sec) and p95 statement latency to the
regression gate.

The committed baselines are deliberately conservative (recorded well
below the development machine's throughput and above its p95) because
these are wall-clock metrics: the gate should catch a collapse — a new
lock on the hot path serializing the pool — not machine-to-machine
noise.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

from repro import Database
from repro.server import ReproServer, ServerConfig
from repro.server.http import make_http_server

from conftest import QUICK, record_report

CLIENTS = 8 if QUICK else 12
STATEMENTS_PER_CLIENT = 24 if QUICK else 50
ITEM_ROWS = 300
#: per-iteration mix: indexes 0-6 cached soft parses, 7-8 unique-literal
#: hard parses, 9 a DML batch (70 / 20 / 10)
MIX = ("cached",) * 7 + ("hard",) * 2 + ("dml",)
DML_BATCH = 5

CACHED_STATEMENTS = [
    ("SELECT grp, COUNT(*) FROM items GROUP BY grp ORDER BY grp", None),
    ("SELECT COUNT(*) FROM items WHERE grp = :g", {"g": 3}),
    ("SELECT id FROM items WHERE val < :v AND grp = :g ORDER BY id",
     {"v": 50, "g": 1}),
]


def _item_rows() -> list[dict]:
    return [
        {"id": i, "grp": i % 6, "val": (i * 37) % 500}
        for i in range(ITEM_ROWS)
    ]


def _seed(db: Database) -> None:
    db.execute_ddl(
        "CREATE TABLE items (id INT PRIMARY KEY, grp INT, val INT)"
    )
    db.execute_ddl(
        "CREATE TABLE scratch (id INT PRIMARY KEY, c INT)"
    )
    db.insert("items", _item_rows())
    db.analyze()


def _expected_results(db: Database) -> dict:
    return {
        sql: db.reference_execute(sql, binds)
        for sql, binds in CACHED_STATEMENTS
    }


def _call(base: str, method: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _client_loop(
    base: str,
    client_index: int,
    expected: dict,
    items: list[dict],
    latencies: list[float],
    failures: list[str],
) -> None:
    status, payload = _call(base, "POST", "/sessions", {})
    if status != 200:
        failures.append(f"connect failed: {payload}")
        return
    sid = payload["session_id"]
    for i in range(STATEMENTS_PER_CLIENT):
        kind = MIX[i % len(MIX)]
        if kind == "cached":
            sql, binds = CACHED_STATEMENTS[i % len(CACHED_STATEMENTS)]
            body = {"sql": sql, "binds": binds}
            want = [list(row) for row in expected[sql]]
        elif kind == "hard":
            # a unique literal per call defeats the cache key: every one
            # of these is a fresh hard parse under concurrency
            threshold = (client_index * STATEMENTS_PER_CLIENT + i) % 500
            sql = f"SELECT COUNT(*) FROM items WHERE val > {threshold}"
            body = {"sql": sql}
            want = [[sum(1 for r in items if r["val"] > threshold)]]
        else:
            base_id = (client_index * STATEMENTS_PER_CLIENT + i) * DML_BATCH
            body = None
            want = None
        started = time.perf_counter()
        if kind == "dml":
            status, payload = _call(
                base, "POST", f"/sessions/{sid}/insert",
                {"table": "scratch", "rows": [
                    {"id": base_id + j, "c": j} for j in range(DML_BATCH)
                ]},
            )
        else:
            status, payload = _call(
                base, "POST", f"/sessions/{sid}/execute", body
            )
        latencies.append(time.perf_counter() - started)
        if status != 200:
            failures.append(f"{kind} statement failed ({status}): {payload}")
            return
        if kind == "dml":
            if payload.get("inserted") != DML_BATCH:
                failures.append(f"dml inserted {payload.get('inserted')}")
                return
        elif [list(row) for row in payload["rows"]] != want:
            failures.append(
                f"differential mismatch for {body['sql']}: {payload['rows']}"
            )
            return
    _call(base, "DELETE", f"/sessions/{sid}")


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1, int(q * len(ordered)) - 1))
    return ordered[index]


def test_server_load():
    db = Database()
    _seed(db)
    expected = _expected_results(db)
    items = _item_rows()
    app = ReproServer(database=db, config=ServerConfig(workers=4))
    server = make_http_server(app, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"

    latencies: list[float] = []
    failures: list[str] = []
    try:
        # warm the listener + the shared cursors outside the timed region
        warm: list[float] = []
        _client_loop(base, 999, expected, items, warm, failures)
        assert not failures, failures[0]

        started = time.perf_counter()
        clients = [
            threading.Thread(
                target=_client_loop,
                args=(base, n, expected, items, latencies, failures),
            )
            for n in range(CLIENTS)
        ]
        for client in clients:
            client.start()
        for client in clients:
            client.join(timeout=600)
        elapsed = time.perf_counter() - started
    finally:
        server.shutdown()
        server.server_close()
        app.close()

    assert not failures, failures[0]
    total = CLIENTS * STATEMENTS_PER_CLIENT
    assert len(latencies) == total
    throughput = total / elapsed
    p50_ms = _percentile(latencies, 0.50) * 1000
    p95_ms = _percentile(latencies, 0.95) * 1000
    stats = app.stats()
    cache = app.cache()

    report = "\n".join([
        f"server load: {CLIENTS} concurrent clients x "
        f"{STATEMENTS_PER_CLIENT} statements (70% cached / 20% hard parse "
        f"/ 10% DML), {app.config.workers} workers",
        f"{'statements':>14} {total:10d}",
        f"{'elapsed s':>14} {elapsed:10.3f}",
        f"{'stmts/sec':>14} {throughput:10.1f}",
        f"{'p50 ms':>14} {p50_ms:10.1f}",
        f"{'p95 ms':>14} {p95_ms:10.1f}",
        f"admission: admitted={stats['admitted_total']} "
        f"rejected={stats['rejected_global'] + stats['rejected_session']} "
        f"queue_timeouts={stats['queue_timeouts']}",
        f"plan cache: hits={cache['hits']} misses={cache['misses']} "
        f"hit_ratio={cache['hit_ratio']:.3f} "
        f"single_flight_waits={cache['single_flight_waits']}",
        "differential checks: all results matched the reference evaluator",
    ])
    record_report("server load", report, metrics={
        "server_statements_per_sec": round(throughput, 1),
        "server_p95_latency_ms": round(p95_ms, 1),
    })

    # every admitted statement finished and left its slot
    assert stats["pending"] == 0
    # the cached 70% actually shared plans
    assert cache["hit_ratio"] > 0.5, report
