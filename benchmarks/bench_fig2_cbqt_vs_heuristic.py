"""Figure 2 — CBQT relative improvement as a function of the top N% most
expensive queries (§4.1).

Baseline: heuristic mode (pre-10g rules for unnesting / group-by view
merging / JPPD; never-heuristic transformations off).  Treatment: full
cost-based transformation.  The paper reports, over the affected queries
(execution plan changed): ~20% average total-runtime improvement, ~27%
at the top 5%, a minority (~18%) of affected queries degrading, and
optimization time up ~40%.

Shape criteria asserted here: CBQT wins overall; expensive queries
benefit at least as much as the full set; some (but a minority of)
affected queries degrade; optimization effort increases."""

import pytest

from repro import OptimizerConfig
from repro.workload import (
    degradation_stats,
    optimization_time_increase_percent,
    run_workload,
    top_n_curve,
)

from conftest import format_curve, record_report


@pytest.mark.benchmark(group="fig2")
def test_fig2_cbqt_vs_heuristic(benchmark, apps, mixed_queries,
                                complex_queries):
    db, _schema = apps
    queries = list(mixed_queries) + list(complex_queries)

    def run():
        return run_workload(
            db, queries,
            OptimizerConfig.heuristic_mode(),
            OptimizerConfig(),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.errors, result.errors[:3]

    affected = result.affected()
    assert affected, "no query changed execution plan"
    curve = top_n_curve(affected)
    stats = degradation_stats(affected)
    opt_increase = optimization_time_increase_percent(result.outcomes)

    report = format_curve(
        "Figure 2. CBQT vs heuristic, improvement over top-N% "
        "most expensive affected queries",
        curve,
        extra_lines=[
            "",
            f"  affected queries (plan changed): {len(affected)} "
            f"of {len(result.outcomes)}",
            f"  degraded: {stats.degraded_percent_of_queries:.0f}% of affected, "
            f"by {stats.average_degradation_percent:.0f}% on average",
            f"  optimization effort increase: {opt_increase:.0f}%",
            "",
            "  paper: +27% at top 5%, +20% overall; 18% of affected "
            "degraded ~40%; optimization time +40%",
        ],
    )
    record_report(
        "Figure 2 CBQT vs heuristic",
        report,
        metrics={
            "n_affected": len(affected),
            "top5_improvement_percent": round(curve[0].improvement_percent, 1),
            "overall_improvement_percent": round(
                curve[-1].improvement_percent, 1
            ),
            "degraded_query_percent": round(
                stats.degraded_percent_of_queries, 1
            ),
            "optimization_time_increase_percent": round(opt_increase, 1),
        },
    )

    overall = curve[-1].improvement_percent
    top5 = curve[0].improvement_percent
    assert overall > 0, "CBQT must beat heuristic mode overall"
    assert top5 >= overall * 0.5, (
        "expensive queries should benefit comparably or more"
    )
    # a minority of affected queries may degrade — but only a minority
    assert stats.degraded_percent_of_queries < 50.0
    # Pre-memo, cost-based search cost ~56% extra fresh join-order
    # enumerations here (the paper: +40% optimization time).  The
    # subplan memo shares physical subplans across CBQT states *and*
    # across the heuristic/CBQT parses of the same statement, so the
    # treated parse's marginal effort now gates far below that —
    # negative means it was served mostly from the memo.
    assert opt_increase < 40.0
