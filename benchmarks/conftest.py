"""Shared benchmark fixtures and reporting.

Every benchmark regenerates one table or figure of the paper and
registers a text report; reports are printed in the terminal summary and
saved under ``benchmarks/results/``.

Scale note: the paper's workload is 241,000 production queries against a
14,000-table schema; these benches run a deterministic synthetic workload
(same query-class mix, see DESIGN.md §3) scaled to minutes of laptop
time.  The *shape* assertions (who wins, rough factors, where curves
bend) are the reproduction target, not absolute counts.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro import Database, OptimizerConfig
from repro.workload import (
    MixWeights,
    QueryGenerator,
    apps_database,
    hr_database,
    register_workload_functions,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: CI quick mode — a smaller workload slice so the bench job finishes in
#: minutes.  Committed baselines (benchmarks/baselines.json) are recorded
#: in quick mode; the regression gate compares like with like.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
MIXED_COUNT = 60 if QUICK else 150
COMPLEX_COUNT = 36 if QUICK else 70

_REPORTS: list[tuple[str, str]] = []


def record_report(title: str, text: str, metrics: dict | None = None) -> None:
    """Register a report for the terminal summary and persist it.

    *metrics* is an optional dict of deterministic, work-unit-derived
    scalars; when given it is written next to the text report as JSON so
    CI can diff it against the committed baselines
    (``benchmarks/check_regression.py``)."""
    _REPORTS.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    safe = title.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")
    if metrics is not None:
        payload = {"title": title, "quick": QUICK, "metrics": metrics}
        (RESULTS_DIR / f"{safe}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for title, text in _REPORTS:
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def hr_db() -> Database:
    return hr_database(scale=1, seed=42)


@pytest.fixture(scope="session")
def apps():
    """The synthetic applications schema + a registered expensive UDF."""
    db, schema = apps_database(seed=7)
    register_workload_functions(db)
    return db, schema


@pytest.fixture(scope="session")
def mixed_queries(apps):
    """A standard-mix workload slice (the paper's ~92% simple / 8%
    complex)."""
    _db, schema = apps
    return QueryGenerator(schema, seed=101).generate(MIXED_COUNT)


@pytest.fixture(scope="session")
def complex_queries(apps):
    """An enriched complex-query pool: the benches report over *affected*
    queries, as the paper does, so most of the budget goes to queries the
    transformations can touch."""
    _db, schema = apps
    weights = MixWeights(
        spj=0.10, exists=0.14, not_exists=0.08, in_multi=0.10, not_in=0.06,
        agg_subquery=0.16, groupby_view=0.12, distinct_view=0.08, gbp=0.08,
        union_all=0.03, setop=0.02, or_pred=0.02, rownum_pullup=0.01,
    )
    return QueryGenerator(schema, seed=202, weights=weights).generate(
        COMPLEX_COUNT
    )


def format_curve(title: str, points, extra_lines=()) -> str:
    lines = [title, f"{'top N%':>8} {'queries':>8} {'improvement %':>14}"]
    for point in points:
        lines.append(
            f"{point.fraction * 100:7.0f}% {point.n_queries:8d} "
            f"{point.improvement_percent:14.1f}"
        )
    lines.extend(extra_lines)
    return "\n".join(lines)
