"""Sanitizer overhead: paranoid mode on vs off.

The auditor is wired into the optimizer behind ``if auditor is not
None`` guards — with ``debug_checks=False`` no verifier object is even
constructed, so production optimization pays nothing for the existence
of the sanitizer.  This bench proves both halves of that contract:

* *structurally*: the verifier invocation counters stay at exactly zero
  across an entire optimized workload when ``debug_checks`` is off —
  guarded call sites, not pervasive checks;
* *empirically*: off-mode optimize throughput is reported next to
  on-mode, showing what paranoia costs when you do opt in.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro import OptimizerConfig, PlanVerifier, QTreeVerifier

from conftest import record_report

QUERIES = [
    "SELECT e.employee_name, e.salary FROM employees e WHERE e.salary > 5000",
    "SELECT e.employee_name, d.department_name FROM employees e, "
    "departments d WHERE e.dept_id = d.dept_id AND e.salary > 8000",
    "SELECT d.department_name, COUNT(*) FROM employees e, departments d "
    "WHERE e.dept_id = d.dept_id GROUP BY d.department_name",
    "SELECT e.employee_name FROM employees e WHERE EXISTS "
    "(SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id)",
    "SELECT e.employee_name FROM employees e WHERE e.salary > "
    "(SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)",
    "SELECT e.employee_name, d.department_name, l.city "
    "FROM employees e, departments d, locations l "
    "WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id "
    "AND l.city = 'City_1'",
]

ROUNDS = 8


def _config(debug_checks: bool) -> OptimizerConfig:
    base = OptimizerConfig()
    return replace(base, cbqt=replace(base.cbqt, debug_checks=debug_checks))


def _optimize_workload(db, config) -> float:
    started = time.perf_counter()
    for _ in range(ROUNDS):
        for sql in QUERIES:
            db.optimize(sql, config)
    return time.perf_counter() - started


def test_debug_checks_off_runs_zero_verifier_calls(hr_db):
    calls_before = (QTreeVerifier.calls, PlanVerifier.calls)
    elapsed_off = _optimize_workload(hr_db, _config(False))

    calls_off = (
        QTreeVerifier.calls - calls_before[0],
        PlanVerifier.calls - calls_before[1],
    )
    elapsed_on = _optimize_workload(hr_db, _config(True))
    calls_on = (
        QTreeVerifier.calls - calls_before[0] - calls_off[0],
        PlanVerifier.calls - calls_before[1] - calls_off[1],
    )

    optimizations = ROUNDS * len(QUERIES)
    overhead = (elapsed_on - elapsed_off) / elapsed_off * 100
    record_report(
        "sanitizer overhead (debug_checks)",
        "\n".join([
            f"{optimizations} optimizations per mode",
            f"{'mode':>14} {'seconds':>9} {'tree audits':>12} "
            f"{'plan audits':>12}",
            f"{'off':>14} {elapsed_off:9.3f} {calls_off[0]:12d} "
            f"{calls_off[1]:12d}",
            f"{'on':>14} {elapsed_on:9.3f} {calls_on[0]:12d} "
            f"{calls_on[1]:12d}",
            f"paranoia cost: {overhead:+.1f}% optimize time "
            "(off-mode call sites are `if auditor is not None` guards)",
        ]),
    )

    # the zero-overhead contract: with debug_checks off, the sanitizer
    # is never invoked at all — not merely "cheaply"
    assert calls_off == (0, 0)
    # and when on, it really audits every query's pipeline + search
    assert calls_on[0] >= optimizations
    assert calls_on[1] >= optimizations
