"""Durability-layer cost: free when off, bounded when on, fast to recover.

Three contracts:

* *structurally*: a full in-memory DML+query workload (no ``data_dir``)
  appends **zero** WAL records and issues zero WAL fsyncs — the durable
  path is guarded construction, not pervasive machinery;
* *empirically*: the in-memory mutation path — which since this layer
  landed carries a ``durability is None`` test per mutation — is within
  2% of the same workload driven through the pre-durability path
  (storage + statistics calls inlined), median of paired interleaved
  sweeps;
* *recovery throughput*: replaying a WAL and loading a checkpoint are
  fast enough to make crash recovery routine; both rates go to the
  regression gate with conservative committed baselines (wall-clock —
  the gate catches collapses, not machine noise).
"""

from __future__ import annotations

import statistics
import time

from repro import Database, DurabilityConfig
from repro.durability import WriteAheadLog

from conftest import QUICK, record_report

ROWS_PER_BATCH = 20
BATCHES = 12 if QUICK else 25
REPEATS = 9
TOLERANCE_PERCENT = 2.0

RECOVERY_ROWS = 4_000 if QUICK else 12_000
RECOVERY_BATCH = 50


def _fresh_db() -> Database:
    db = Database()
    db.execute_ddl(
        "CREATE TABLE items (id INT PRIMARY KEY, grp INT, val INT)"
    )
    return db


def _batch(base: int) -> list[dict]:
    return [
        {"id": base + i, "grp": i % 7, "val": (i * 37) % 500}
        for i in range(ROWS_PER_BATCH)
    ]


def _sweep_current(db: Database, offset: int) -> float:
    """The public mutation path, durability idle (``durability is None``
    tested once per mutation)."""
    started = time.perf_counter()
    for b in range(BATCHES):
        db.insert("items", _batch(offset + b * ROWS_PER_BATCH))
    db.analyze("items")
    return time.perf_counter() - started


def _sweep_stripped(db: Database, offset: int) -> float:
    """The pre-durability mutation path, inlined: storage insert +
    statistics invalidation with no durability dispatch at all."""
    started = time.perf_counter()
    for b in range(BATCHES):
        db.storage.get("items").insert(_batch(offset + b * ROWS_PER_BATCH))
        db.statistics.drop("items")
        db._sampling_cache.invalidate("items")
    db.analyze("items")
    return time.perf_counter() - started


def _measure_overhead(repeats: int) -> tuple[float, float, float]:
    """Median of paired, interleaved relative deltas on twin databases;
    each stripped sweep is immediately followed by a current sweep so
    clock drift and allocator state hit both variants equally."""
    stripped_db, current_db = _fresh_db(), _fresh_db()
    deltas, off_times, on_times = [], [], []
    for r in range(repeats):
        offset = r * BATCHES * ROWS_PER_BATCH
        off = _sweep_stripped(stripped_db, offset)
        on = _sweep_current(current_db, offset)
        off_times.append(off)
        on_times.append(on)
        deltas.append((on - off) / off * 100)
    return (
        statistics.median(deltas),
        statistics.median(off_times),
        statistics.median(on_times),
    )


def test_idle_durability_costs_nothing():
    records_before = WriteAheadLog.records_appended_total
    fsyncs_before = WriteAheadLog.fsyncs_total

    overhead, elapsed_off, elapsed_on = _measure_overhead(REPEATS)
    if overhead >= TOLERANCE_PERCENT:
        # confirmation pass before failing a perf gate on one noisy sample
        overhead, elapsed_off, elapsed_on = _measure_overhead(REPEATS * 2)

    # the structural contract: no WAL machinery ran at all
    assert WriteAheadLog.records_appended_total == records_before, (
        "in-memory workload appended WAL records"
    )
    assert WriteAheadLog.fsyncs_total == fsyncs_before, (
        "in-memory workload issued WAL fsyncs"
    )

    mutations = BATCHES + 1  # inserts + the analyze
    record_report(
        "durability idle overhead",
        "\n".join([
            f"{mutations} mutations x {ROWS_PER_BATCH} rows per sweep, "
            f"median of >= {REPEATS} interleaved sweep pairs",
            f"{'variant':>18} {'seconds':>9}",
            f"{'pre-durability':>18} {elapsed_off:9.3f}",
            f"{'durability idle':>18} {elapsed_on:9.3f}",
            f"idle cost: {overhead:+.1f}% "
            f"(tolerance {TOLERANCE_PERCENT:.0f}%; the durable path is "
            "one `is None` test per mutation)",
            "WAL records appended: "
            f"{WriteAheadLog.records_appended_total - records_before}, "
            f"fsyncs: {WriteAheadLog.fsyncs_total - fsyncs_before}",
        ]),
    )

    assert overhead < TOLERANCE_PERCENT, (
        f"idle durability overhead {overhead:.2f}% exceeds "
        f"{TOLERANCE_PERCENT}%"
    )


def _build_data_dir(tmp_path, checkpointed: bool) -> str:
    data_dir = str(tmp_path / ("ckpt" if checkpointed else "wal"))
    db = Database(
        data_dir=data_dir, durability=DurabilityConfig(fsync="off")
    )
    db.execute_ddl(
        "CREATE TABLE items (id INT PRIMARY KEY, grp INT, val INT)"
    )
    for base in range(0, RECOVERY_ROWS, RECOVERY_BATCH):
        db.insert("items", [
            {"id": base + i, "grp": i % 7, "val": (i * 37) % 500}
            for i in range(RECOVERY_BATCH)
        ])
    if checkpointed:
        db.checkpoint()
    db.close()
    return data_dir


def _time_open(data_dir: str) -> tuple[float, Database]:
    started = time.perf_counter()
    db = Database(
        data_dir=data_dir, durability=DurabilityConfig(fsync="off")
    )
    return time.perf_counter() - started, db


def test_recovery_throughput(tmp_path):
    wal_dir = _build_data_dir(tmp_path, checkpointed=False)
    ckpt_dir = _build_data_dir(tmp_path, checkpointed=True)

    replay_seconds, db = _time_open(wal_dir)
    report = db.recovery
    assert report.wal_records_applied == RECOVERY_ROWS // RECOVERY_BATCH + 1
    assert db.storage.get("items").row_count == RECOVERY_ROWS
    db.close()

    load_seconds, db = _time_open(ckpt_dir)
    assert db.recovery.checkpoint_rows == RECOVERY_ROWS
    assert db.recovery.wal_records_total == 0
    assert db.storage.get("items").row_count == RECOVERY_ROWS
    db.close()

    replay_rows_per_sec = RECOVERY_ROWS / replay_seconds
    replay_records_per_sec = report.wal_records_applied / replay_seconds
    load_rows_per_sec = RECOVERY_ROWS / load_seconds

    record_report(
        "durability recovery throughput",
        "\n".join([
            f"{RECOVERY_ROWS} rows in {RECOVERY_ROWS // RECOVERY_BATCH} "
            "committed batches",
            f"{'path':>22} {'seconds':>9} {'rows/s':>10}",
            f"{'WAL replay':>22} {replay_seconds:9.3f} "
            f"{replay_rows_per_sec:10.0f}",
            f"{'checkpoint load':>22} {load_seconds:9.3f} "
            f"{load_rows_per_sec:10.0f}",
            f"WAL records replayed: {report.wal_records_applied} "
            f"({replay_records_per_sec:.0f} records/s)",
        ]),
        metrics={
            "durability_replay_rows_per_sec": replay_rows_per_sec,
            "durability_replay_records_per_sec": replay_records_per_sec,
            "durability_checkpoint_load_rows_per_sec": load_rows_per_sec,
        },
    )
