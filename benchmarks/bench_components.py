"""Micro-benchmarks of the stack's components (pytest-benchmark proper):
parser, query-tree build + clone, physical optimization, execution.

These are not paper artifacts; they track the cost of the machinery the
CBQT framework exercises per state (deep copy + re-optimization) and
guard against performance regressions."""

import pytest

from repro import OptimizerConfig
from repro.optimizer.physical import PhysicalOptimizer
from repro.sql import parse_query

COMPLEX_SQL = """
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j
WHERE e1.emp_id = j.emp_id AND j.start_date > '1998-01-01'
  AND e1.salary > (SELECT AVG(e2.salary) FROM employees e2
                   WHERE e2.dept_id = e1.dept_id)
  AND e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l
                     WHERE d.loc_id = l.loc_id AND l.country_id = 1)
"""


@pytest.mark.benchmark(group="components")
def test_bench_parse(benchmark):
    benchmark(parse_query, COMPLEX_SQL)


@pytest.mark.benchmark(group="components")
def test_bench_build_query_tree(benchmark, hr_db):
    stmt_sql = COMPLEX_SQL
    benchmark(hr_db.parse, stmt_sql)


@pytest.mark.benchmark(group="components")
def test_bench_deep_copy(benchmark, hr_db):
    tree = hr_db.parse(COMPLEX_SQL)
    benchmark(tree.clone)


@pytest.mark.benchmark(group="components")
def test_bench_signature(benchmark, hr_db):
    from repro.qtree import signature

    tree = hr_db.parse(COMPLEX_SQL)
    benchmark(signature, tree)


@pytest.mark.benchmark(group="components")
def test_bench_physical_optimize(benchmark, hr_db):
    tree = hr_db.parse(COMPLEX_SQL)

    def optimize():
        optimizer = PhysicalOptimizer(hr_db.catalog, hr_db.statistics)
        return optimizer.optimize(tree)

    benchmark(optimize)


@pytest.mark.benchmark(group="components")
def test_bench_full_cbqt_optimize(benchmark, hr_db):
    benchmark(hr_db.optimize, COMPLEX_SQL)


@pytest.mark.benchmark(group="components")
def test_bench_execute_simple_join(benchmark, hr_db):
    sql = (
        "SELECT e.emp_id, d.department_name FROM employees e, departments d "
        "WHERE e.dept_id = d.dept_id AND d.loc_id = 3"
    )

    def run():
        return hr_db.execute(sql, OptimizerConfig())

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="components")
def test_bench_execute_aggregate(benchmark, hr_db):
    sql = (
        "SELECT e.dept_id, COUNT(*), AVG(e.salary) FROM employees e "
        "GROUP BY e.dept_id"
    )

    def run():
        return hr_db.execute(sql)

    benchmark.pedantic(run, rounds=3, iterations=1)
