"""Ablations of the framework's own machinery (§3.3-3.4, DESIGN.md §6).

* cost-annotation reuse on/off — optimizer block-optimizations and time;
* cost cut-off on/off — plan quality must be unchanged;
* interleaving on/off — the Q1/Q10/Q11 trap: without interleaving the
  unnesting decision can get stuck at a local minimum;
* semijoin left-side caching — duplicate-heavy probe side.
"""

import time

import pytest

from repro import OptimizerConfig
from repro.cbqt.framework import CbqtConfig, CbqtFramework
from repro.optimizer.annotations import AnnotationStore
from repro.optimizer.physical import OptimizerCounters, PhysicalOptimizer

from conftest import record_report

COMPLEX_QUERY = """
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j
WHERE e1.emp_id = j.emp_id AND j.start_date > '1998-01-01'
  AND e1.salary > (SELECT AVG(e2.salary) FROM employees e2
                   WHERE e2.dept_id = e1.dept_id)
  AND e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l
                     WHERE d.loc_id = l.loc_id AND l.country_id = 1)
  AND EXISTS (SELECT 1 FROM job_history j2, jobs jb
              WHERE j2.emp_id = e1.emp_id AND j2.job_id = jb.job_id
              AND jb.min_salary > 2000)
"""


def optimize_with(hr_db, *, reuse=True, cutoff=True, interleave=True):
    counters = OptimizerCounters()
    physical = PhysicalOptimizer(
        hr_db.catalog, hr_db.statistics,
        annotations=AnnotationStore(enabled=reuse), counters=counters,
    )
    framework = CbqtFramework(
        hr_db.catalog, physical,
        CbqtConfig(search_strategy="exhaustive", cost_cutoff=cutoff,
                   interleaving=interleave),
    )
    started = time.perf_counter()
    _tree, plan, report = framework.optimize(hr_db.parse(COMPLEX_QUERY))
    elapsed = time.perf_counter() - started
    return plan, report, counters, elapsed


@pytest.mark.benchmark(group="ablation")
def test_ablation_annotation_reuse(benchmark, hr_db):
    def run():
        return optimize_with(hr_db, reuse=True), optimize_with(hr_db, reuse=False)

    (with_reuse, without_reuse) = benchmark.pedantic(run, rounds=1, iterations=1)
    plan_r, _rep_r, counters_r, time_r = with_reuse
    plan_n, _rep_n, counters_n, time_n = without_reuse

    record_report(
        "Ablation annotation reuse",
        "\n".join([
            "Cost-annotation reuse (3-subquery query, exhaustive search)",
            f"  blocks optimized   with reuse: {counters_r.blocks_optimized:5d}"
            f"   without: {counters_n.blocks_optimized:5d}",
            f"  optimization time  with reuse: {time_r:6.3f}s"
            f"  without: {time_n:6.3f}s",
            f"  same final plan cost: "
            f"{abs(plan_r.cost - plan_n.cost) < 1e-6}",
        ]),
    )
    assert counters_r.blocks_optimized < counters_n.blocks_optimized
    assert plan_r.cost == pytest.approx(plan_n.cost)


@pytest.mark.benchmark(group="ablation")
def test_ablation_cost_cutoff(benchmark, hr_db):
    def run():
        return (
            optimize_with(hr_db, cutoff=True),
            optimize_with(hr_db, cutoff=False),
        )

    (with_cutoff, without_cutoff) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    plan_c, report_c, _counters_c, time_c = with_cutoff
    plan_n, report_n, _counters_n, time_n = without_cutoff

    record_report(
        "Ablation cost cutoff",
        "\n".join([
            "Cost cut-off during state costing",
            f"  states costed  with cutoff: {report_c.total_states}"
            f"   without: {report_n.total_states}",
            f"  optimization time  with: {time_c:6.3f}s  without: {time_n:6.3f}s",
            f"  plan cost identical: {abs(plan_c.cost - plan_n.cost) < 1e-6}",
        ]),
    )
    # cut-off must never change the chosen plan
    assert plan_c.cost == pytest.approx(plan_n.cost)


@pytest.mark.benchmark(group="ablation")
def test_ablation_interleaving(benchmark, hr_db):
    def run():
        return (
            optimize_with(hr_db, interleave=True),
            optimize_with(hr_db, interleave=False),
        )

    (with_il, without_il) = benchmark.pedantic(run, rounds=1, iterations=1)
    plan_i, report_i, _c, _t = with_il
    plan_n, report_n, _c2, _t2 = without_il

    record_report(
        "Ablation interleaving",
        "\n".join([
            "Interleaving unnesting with group-by view merging (§3.3.1)",
            f"  plan cost with interleaving:    {plan_i.cost:12.0f}",
            f"  plan cost without interleaving: {plan_n.cost:12.0f}",
            f"  states with: {report_i.total_states}   "
            f"without: {report_n.total_states}",
        ]),
    )
    # interleaving explores a superset of plans: never worse
    assert plan_i.cost <= plan_n.cost + 1e-6
    assert report_i.total_states >= report_n.total_states


@pytest.mark.benchmark(group="ablation")
def test_ablation_semijoin_caching(benchmark, apps):
    """Semijoin left-side duplicate caching (§2.1.1): probing with a
    duplicate-heavy (zipf-skewed) foreign key should hit the probe cache
    for a large share of rows."""
    db, schema = apps
    child, parent, fk, pk = schema.joinable_pairs()[0]
    sql = (
        f"SELECT c.{child.pk} FROM {child.name} c WHERE EXISTS "
        f"(SELECT 1 FROM {parent.name} p WHERE p.{pk} = c.{fk} "
        f"AND p.{parent.numeric_columns[0]} > 2)"
    )

    def run():
        return db.execute(sql)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.exec_stats
    record_report(
        "Ablation semijoin caching",
        "\n".join([
            "Semijoin probe caching on a zipf-skewed join column",
            f"  probe cache hits: {stats.subquery_cache_hits}",
            f"  rows probed:      {result.exec_stats.rows_out} emitted of "
            f"{db.storage.get(child.name).row_count} probes",
        ]),
    )
    assert stats.subquery_cache_hits > 0
