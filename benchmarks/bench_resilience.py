"""Resilience-layer idle overhead: the safeguards must be free when idle.

The layer's hooks sit on the hottest paths in the engine — every
transformation application, every costed search state, every executor
row loop, every plan-cache operation.  The design keeps each hook to a
single global load (fault injection disarmed) or an ``is None`` test
(no cancel token, no governor), so an untroubled statement pays nothing
measurable.  This bench proves both halves of that contract:

* *structurally*: an entire optimize+execute workload with no timeout,
  no token, and no armed faults constructs **zero** governors and zero
  cancel tokens — guarded construction, not pervasive machinery;
* *empirically*: throughput with the resilience layer idle is within 2%
  of the same workload with the ladder disabled outright (min-of-N
  timing to shed scheduler noise).
"""

from __future__ import annotations

import statistics
import time

from repro import Database, OptimizerConfig, ResilienceConfig, SearchGovernor
from repro.resilience import CancelToken, faults

from conftest import record_report

QUERIES = [
    "SELECT e.employee_name, e.salary FROM employees e WHERE e.salary > 5000",
    "SELECT e.employee_name, d.department_name FROM employees e, "
    "departments d WHERE e.dept_id = d.dept_id AND e.salary > 8000",
    "SELECT d.department_name, COUNT(*) FROM employees e, departments d "
    "WHERE e.dept_id = d.dept_id GROUP BY d.department_name",
    "SELECT e.employee_name FROM employees e WHERE EXISTS "
    "(SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id)",
    "SELECT e.employee_name FROM employees e WHERE e.salary > "
    "(SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)",
]

ROUNDS = 4
REPEATS = 9
TOLERANCE_PERCENT = 2.0


def _sweep(db: Database, config: OptimizerConfig) -> float:
    started = time.perf_counter()
    for _ in range(ROUNDS):
        for sql in QUERIES:
            db.execute(sql, config)
    return time.perf_counter() - started


def _measure_overhead(db, ladder_off, ladder_on, repeats) -> tuple[float, float, float]:
    """Median of paired, interleaved relative deltas: each off-sweep is
    immediately followed by an on-sweep, so clock-frequency drift and
    cache warmth hit both variants equally."""
    deltas, off_times, on_times = [], [], []
    for _ in range(repeats):
        off = _sweep(db, ladder_off)
        on = _sweep(db, ladder_on)
        off_times.append(off)
        on_times.append(on)
        deltas.append((on - off) / off * 100)
    return (
        statistics.median(deltas),
        statistics.median(off_times),
        statistics.median(on_times),
    )


def test_idle_resilience_layer_costs_nothing(hr_db):
    assert faults.active() is None, "bench requires a disarmed harness"
    ladder_on = OptimizerConfig(resilience=ResilienceConfig(fallback=True))
    ladder_off = OptimizerConfig(resilience=ResilienceConfig(fallback=False))

    _sweep(hr_db, ladder_off)  # warm caches for both variants
    _sweep(hr_db, ladder_on)

    governors_before = SearchGovernor.created
    tokens_before = CancelToken.created
    overhead, elapsed_off, elapsed_on = _measure_overhead(
        hr_db, ladder_off, ladder_on, REPEATS
    )
    if overhead >= TOLERANCE_PERCENT:
        # confirmation pass before failing a perf gate on one noisy sample
        overhead, elapsed_off, elapsed_on = _measure_overhead(
            hr_db, ladder_off, ladder_on, REPEATS * 2
        )

    # the structural contract: an idle run constructs no machinery
    assert SearchGovernor.created == governors_before
    assert CancelToken.created == tokens_before

    executions = ROUNDS * len(QUERIES)
    record_report(
        "resilience idle overhead",
        "\n".join([
            f"{executions} optimize+execute statements per sweep, "
            f"median of >= {REPEATS} interleaved sweep pairs",
            f"{'variant':>16} {'seconds':>9}",
            f"{'ladder off':>16} {elapsed_off:9.3f}",
            f"{'ladder idle':>16} {elapsed_on:9.3f}",
            f"idle cost: {overhead:+.1f}% "
            f"(tolerance {TOLERANCE_PERCENT:.0f}%; hooks are a global "
            "load / `is None` test when disarmed)",
            f"governors constructed: "
            f"{SearchGovernor.created - governors_before}, "
            f"cancel tokens: {CancelToken.created - tokens_before}",
        ]),
    )

    assert overhead < TOLERANCE_PERCENT, (
        f"idle resilience overhead {overhead:.2f}% exceeds "
        f"{TOLERANCE_PERCENT}%"
    )
