"""Plan-cache throughput: repeated parameterized workload, cache on vs
off.

The serving layer's pitch is Oracle's: most OLTP statements are the same
SQL text executed with different bind values, so the (expensive) CBQT
optimization should be paid once per statement, not once per execution.
This bench replays a small parameterized workload many times and
compares throughput with the shared plan cache against hard-parsing
every execution.  The acceptance bar is >= 5x.
"""

from __future__ import annotations

import time

from repro import QueryService

from conftest import record_report

#: (sql, bind maker) — bind values stay inside the column's observed
#: range so the adaptive-cursor-sharing drift check keeps sharing the
#: cached plan (same selectivity class), as an OLTP workload would.
STATEMENTS = [
    (
        "SELECT e.employee_name, e.salary FROM employees e "
        "WHERE e.emp_id = :id",
        lambda i: {"id": 1 + (i * 7) % 50},
    ),
    (
        "SELECT e.employee_name FROM employees e "
        "WHERE e.emp_id = :id "
        "AND EXISTS (SELECT 1 FROM job_history j "
        "            WHERE j.emp_id = e.emp_id AND j.start_date > :d)",
        lambda i: {"id": 1 + (i * 11) % 50, "d": "1995-01-01"},
    ),
    (
        "SELECT e.employee_name, d.department_name, l.city "
        "FROM employees e, departments d, locations l, countries c "
        "WHERE e.emp_id = :id AND e.dept_id = d.dept_id "
        "AND d.loc_id = l.loc_id AND l.country_id = c.country_id "
        "AND EXISTS (SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id) "
        "AND EXISTS (SELECT 1 FROM employees m WHERE m.emp_id = e.mgr_id)",
        lambda i: {"id": 1 + (i * 13) % 50},
    ),
]

ROUNDS = 40


def _replay(service: QueryService) -> tuple[float, int]:
    """Run the workload; returns (elapsed seconds, executions)."""
    prepared = [(service.prepare(sql), binder) for sql, binder in STATEMENTS]
    executions = 0
    started = time.perf_counter()
    for i in range(ROUNDS):
        for statement, binder in prepared:
            statement.execute(binder(i))
            executions += 1
    return time.perf_counter() - started, executions


def test_plan_cache_throughput(hr_db):
    cached = QueryService(hr_db)
    uncached = QueryService(hr_db, caching=False)

    # Warm once outside the timed region (first-touch costs like lazy
    # imports should not skew either side).
    cached.execute(STATEMENTS[0][0], STATEMENTS[0][1](0))
    uncached.execute(STATEMENTS[0][0], STATEMENTS[0][1](0))

    on_seconds, executions = _replay(cached)
    off_seconds, _ = _replay(uncached)

    on_throughput = executions / on_seconds
    off_throughput = executions / off_seconds
    speedup = on_throughput / off_throughput
    stats = cached.cache_stats()

    report = "\n".join([
        "plan cache on vs off, repeated parameterized workload "
        f"({len(STATEMENTS)} statements x {ROUNDS} rounds)",
        f"{'mode':>12} {'executions':>11} {'seconds':>9} {'exec/s':>9}",
        f"{'cache on':>12} {executions:11d} {on_seconds:9.3f} "
        f"{on_throughput:9.1f}",
        f"{'cache off':>12} {executions:11d} {off_seconds:9.3f} "
        f"{off_throughput:9.1f}",
        f"speedup: {speedup:.1f}x (bar: >= 5x)",
        f"cache: hits={stats['hits']} misses={stats['misses']} "
        f"reoptimizations={stats['reoptimizations']} "
        f"hit_ratio={stats['hit_ratio']:.3f}",
    ])
    record_report("plan cache throughput", report)

    assert speedup >= 5.0, report
    # At most one hard parse per statement; everything else is a hit.
    assert stats["hits"] >= executions - len(STATEMENTS)
    assert stats["misses"] <= len(STATEMENTS)
