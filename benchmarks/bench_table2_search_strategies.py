"""Table 2 — Increase in optimization time for the state-space search
techniques (§4.4).

The paper's query: three base tables and four unnestable subqueries (of
NOT IN / EXISTS / NOT EXISTS types), each subquery over three base
tables.  Expected state counts: Heuristic 1, Two-pass 2, Linear 5,
Exhaustive 16; optimization time grows in that order but stays tame
thanks to cost-annotation reuse."""

import time

import pytest

from repro import OptimizerConfig

from conftest import record_report

TABLE2_QUERY = """
SELECT e.employee_name, d.department_name, j.job_title
FROM employees e, departments d, job_history j
WHERE e.dept_id = d.dept_id AND e.emp_id = j.emp_id
  AND e.job_id NOT IN (SELECT j2.job_id FROM job_history j2, departments d2,
                       locations l2 WHERE j2.dept_id = d2.dept_id
                       AND d2.loc_id = l2.loc_id AND l2.country_id = 2)
  AND EXISTS (SELECT 1 FROM job_history j3, departments d3, locations l3
              WHERE j3.emp_id = e.emp_id AND j3.dept_id = d3.dept_id
              AND d3.loc_id = l3.loc_id)
  AND NOT EXISTS (SELECT 1 FROM job_history j4, departments d4, locations l4
                  WHERE j4.emp_id = e.emp_id AND j4.dept_id = d4.dept_id
                  AND d4.loc_id = l4.loc_id AND l4.country_id = 3)
  AND e.dept_id IN (SELECT d5.dept_id FROM departments d5, locations l5,
                    countries c5 WHERE d5.loc_id = l5.loc_id
                    AND l5.country_id = c5.country_id AND c5.region_id = 1)
"""

MODES = [
    ("Heuristic", OptimizerConfig.heuristic_mode()),
    ("Two Pass", OptimizerConfig().with_strategy("two_pass")),
    ("Linear", OptimizerConfig().with_strategy("linear")),
    ("Exhaustive", OptimizerConfig().with_strategy("exhaustive")),
]


def run_mode(hr_db, config, repeats: int = 9):
    hr_db.optimize(TABLE2_QUERY, config)  # warm-up (caches, allocator)
    started = time.perf_counter()
    for _ in range(repeats):
        optimized = hr_db.optimize(TABLE2_QUERY, config)
    elapsed = (time.perf_counter() - started) / repeats
    # Table 2 counts the states of the *unnesting* search specifically.
    decision = optimized.report.decision_for("unnest_view")
    states = decision.states_evaluated if decision and not \
        optimized.report.heuristic_mode else 1
    return elapsed, states, optimized


@pytest.mark.benchmark(group="table2")
def test_table2_search_strategies(benchmark, hr_db):
    # interleaving would add a third alternative per aggregate subquery;
    # this query has none, so counts match the paper's binary bit-vector.
    def measure():
        return {
            name: run_mode(hr_db, config)[:2] for name, config in MODES
        }

    # subplan-memo effectiveness across the four strategies' repeated
    # parses, measured as a delta over the bench window (counters are
    # deterministic; the committed baseline is recorded from the same
    # full-suite quick-mode invocation CI uses)
    memo_before = hr_db.plan_memo.snapshot()
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    memo_after = hr_db.plan_memo.snapshot()
    memo_hits = (
        memo_after["hits"] + memo_after["join_hits"]
        - memo_before["hits"] - memo_before["join_hits"]
    )
    memo_misses = (
        memo_after["misses"] + memo_after["join_misses"]
        - memo_before["misses"] - memo_before["join_misses"]
    )
    memo_lookups = memo_hits + memo_misses
    memo_hit_rate = 100.0 * memo_hits / memo_lookups if memo_lookups else 0.0
    enumerations_saved = memo_after["join_hits"] - memo_before["join_hits"]

    lines = [
        "Table 2. Optimization time and #states per search technique",
        "",
        f"  {'mode':<12} {'opt time':>10} {'#states':>8}   (paper: time / states)",
    ]
    paper = {
        "Heuristic": ("0.24 s", 1),
        "Two Pass": ("0.33 s", 2),
        "Linear": ("0.61 s", 5),
        "Exhaustive": ("0.97 s", 16),
    }
    for name, (elapsed, states) in results.items():
        p_time, p_states = paper[name]
        lines.append(
            f"  {name:<12} {elapsed:9.3f}s {states:8d}   ({p_time} / {p_states})"
        )
    lines.append("")
    lines.append(
        f"  subplan memo: {memo_hit_rate:.1f}% hit rate over "
        f"{memo_lookups} lookups, {enumerations_saved} join-order "
        f"enumerations served without running"
    )
    metrics = {
        f"states_{name.lower().replace(' ', '_')}": states
        for name, (_elapsed, states) in results.items()
    }
    metrics["memo_hit_rate_percent"] = round(memo_hit_rate, 1)
    metrics["memo_join_enumerations_saved"] = enumerations_saved
    record_report(
        "Table 2 search strategies",
        "\n".join(lines),
        metrics=metrics,
    )

    # Shape assertions: the paper's state counts, exactly.
    assert results["Heuristic"][1] == 1
    assert results["Two Pass"][1] == 2
    assert results["Linear"][1] == 5
    assert results["Exhaustive"][1] == 16
    # Optimization effort is monotone in states (allow timing noise on
    # the two cheapest modes).
    assert results["Exhaustive"][0] > results["Two Pass"][0] * 0.8
    assert results["Exhaustive"][0] >= results["Linear"][0] * 0.5
    # Repeated parses of the same statement must be served by the
    # subplan memo (unless the run disabled it via REPRO_MEMO=0).
    if hr_db.config.plan_memo:
        assert memo_hits > 0
        assert enumerations_saved > 0


@pytest.mark.benchmark(group="table2")
def test_table2_all_strategies_same_rows(benchmark, hr_db):
    def rows_per_mode():
        return {
            name: sorted(hr_db.execute(TABLE2_QUERY, config).rows)
            for name, config in MODES
        }

    rows = benchmark.pedantic(rows_per_mode, rounds=1, iterations=1)
    baseline = rows["Heuristic"]
    for name, got in rows.items():
        assert got == baseline, name
