"""Observability-layer idle overhead: tracing and profiling must be free
when off.

The obs hooks sit on the same hot paths as the resilience hooks — every
costed search state (trace emit), every executor row dispatch (profiled
generator wrap), every optimize/execute completion (metrics recording).
The design keeps each to an ``is None`` / plain-bool test when disarmed,
so an untraced, unanalyzed statement pays nothing measurable.  Both
halves of that contract:

* *structurally*: a full optimize+execute workload with no tracer armed
  and ``analyze`` off constructs **zero** trace events and records no
  per-operator invocation or timing entries;
* *empirically*: throughput with the metrics registry attached (the
  default) is within 2% of the same workload with metrics detached
  (median of paired interleaved sweeps, as in bench_resilience).
"""

from __future__ import annotations

import statistics
import time

from repro import Database
from repro.obs import TraceEvent

from conftest import record_report

QUERIES = [
    "SELECT e.employee_name, e.salary FROM employees e WHERE e.salary > 5000",
    "SELECT e.employee_name, d.department_name FROM employees e, "
    "departments d WHERE e.dept_id = d.dept_id AND e.salary > 8000",
    "SELECT d.department_name, COUNT(*) FROM employees e, departments d "
    "WHERE e.dept_id = d.dept_id GROUP BY d.department_name",
    "SELECT e.employee_name FROM employees e WHERE EXISTS "
    "(SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id)",
    "SELECT e.employee_name FROM employees e WHERE e.salary > "
    "(SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)",
]

ROUNDS = 4
REPEATS = 9
TOLERANCE_PERCENT = 2.0


def _sweep(db: Database) -> float:
    started = time.perf_counter()
    for _ in range(ROUNDS):
        for sql in QUERIES:
            db.execute(sql)
    return time.perf_counter() - started


def _measure_overhead(db: Database, repeats: int) -> tuple[float, float, float]:
    """Median of paired, interleaved relative deltas: each detached sweep
    is immediately followed by an attached sweep, so clock drift and
    cache warmth hit both variants equally."""
    metrics = db.metrics
    deltas, off_times, on_times = [], [], []
    try:
        for _ in range(repeats):
            db.metrics = None
            off = _sweep(db)
            db.metrics = metrics
            on = _sweep(db)
            off_times.append(off)
            on_times.append(on)
            deltas.append((on - off) / off * 100)
    finally:
        db.metrics = metrics
    return (
        statistics.median(deltas),
        statistics.median(off_times),
        statistics.median(on_times),
    )


def test_disarmed_observability_costs_nothing(hr_db):
    assert hr_db.tracer is None, "bench requires a disarmed tracer"

    _sweep(hr_db)  # warm caches

    # the structural contract: no trace machinery, no profiler entries
    events_before = TraceEvent.created
    result = hr_db.execute(QUERIES[-1])
    assert TraceEvent.created == events_before, (
        "disarmed engine constructed trace events"
    )
    assert result.exec_stats.node_seconds == {}
    assert result.exec_stats.node_invocations == {}

    overhead, elapsed_off, elapsed_on = _measure_overhead(hr_db, REPEATS)
    if overhead >= TOLERANCE_PERCENT:
        # confirmation pass before failing a perf gate on one noisy sample
        overhead, elapsed_off, elapsed_on = _measure_overhead(
            hr_db, REPEATS * 2
        )

    executions = ROUNDS * len(QUERIES)
    record_report(
        "observability idle overhead",
        "\n".join([
            f"{executions} optimize+execute statements per sweep, "
            f"median of >= {REPEATS} interleaved sweep pairs",
            f"{'variant':>18} {'seconds':>9}",
            f"{'metrics detached':>18} {elapsed_off:9.3f}",
            f"{'metrics attached':>18} {elapsed_on:9.3f}",
            f"idle cost: {overhead:+.1f}% "
            f"(tolerance {TOLERANCE_PERCENT:.0f}%; tracer/profiler hooks "
            "are an `is None` test when disarmed)",
            f"trace events constructed: {TraceEvent.created - events_before}",
        ]),
    )

    assert overhead < TOLERANCE_PERCENT, (
        f"idle observability overhead {overhead:.2f}% exceeds "
        f"{TOLERANCE_PERCENT}%"
    )
