"""Figure 4 — JPPD disabled vs cost-based JPPD (§4.2).

The paper's contrast with unnesting: JPPD is a modest win (~23% average)
and — unlike unnesting — benefits the *less* expensive queries more (the
top 80% improved more than the top 5%), because pushed join predicates
pay off when the outer row set is small and an index probe replaces a
full view materialisation; the very largest queries are dominated by
other costs.  Optimization time increased only 7% (JPPD applies to few
queries).

Shape criteria: positive overall improvement; improvement at the widest
fraction at least comparable to the top-5% point; small optimizer-effort
increase relative to Figure 3's."""

import pytest

from repro import OptimizerConfig
from repro.workload import (
    QueryGenerator,
    degradation_stats,
    optimization_time_increase_percent,
    run_workload,
    top_n_curve,
)

from conftest import format_curve, record_report


@pytest.mark.benchmark(group="fig4")
def test_fig4_jppd(benchmark, apps, complex_queries, mixed_queries):
    db, schema = apps
    # enrich the JPPD-relevant slice the way the paper's experiment
    # isolates the 0.75% of the workload JPPD touches
    generator = QueryGenerator(schema, seed=505)
    relevant = [
        q for q in list(complex_queries) + list(mixed_queries)
        if "jppd" in q.relevant
    ] + [
        generator.generate_class(
            "distinct_view" if i % 2 else "groupby_view"
        )
        for i in range(20)
    ]
    assert len(relevant) >= 8

    def run():
        return run_workload(
            db, relevant,
            OptimizerConfig().without("jppd"),
            OptimizerConfig(),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.errors, result.errors[:3]

    affected = result.affected()
    assert affected
    curve = top_n_curve(affected)
    stats = degradation_stats(affected)
    opt_increase = optimization_time_increase_percent(result.outcomes)

    report = format_curve(
        "Figure 4. JPPD disabled vs cost-based JPPD, improvement over "
        "top-N% most expensive affected queries",
        curve,
        extra_lines=[
            "",
            f"  affected queries: {len(affected)} of {len(result.outcomes)}",
            f"  degraded: {stats.degraded_percent_of_queries:.0f}% of affected, "
            f"by {stats.average_degradation_percent:.0f}% on average",
            f"  optimization effort increase: {opt_increase:.0f}%",
            "",
            "  paper: +15% at top 5%, +23% average (cheaper queries "
            "benefit more); 11% degraded ~15%; optimization time +7%",
        ],
    )
    record_report(
        "Figure 4 JPPD",
        report,
        metrics={
            "n_affected": len(affected),
            "top5_improvement_percent": round(curve[0].improvement_percent, 1),
            "overall_improvement_percent": round(
                curve[-1].improvement_percent, 1
            ),
            "degraded_query_percent": round(
                stats.degraded_percent_of_queries, 1
            ),
            "optimization_time_increase_percent": round(opt_increase, 1),
        },
    )

    overall = curve[-1].improvement_percent
    top5 = curve[0].improvement_percent
    assert overall > 0.0
    # JPPD's signature shape: the wide fraction beats (or at least
    # matches) the top-5% point — opposite of unnesting.
    assert overall >= top5 * 0.8
    assert stats.degraded_percent_of_queries <= 50.0
