"""§4.3 — group-by placement on vs off.

"In Oracle, the GBP transformation is never applied using heuristics";
the experiment compares the workload with GBP enabled (cost-based) and
disabled.  Paper: ~21% average improvement over ~2,000 affected queries,
with a heavy right tail (individual queries improving 2x-10x).

Shape criteria: positive average improvement over affected queries, and
a right tail (the best query improves by a larger factor than the
average)."""

import pytest

from repro import OptimizerConfig
from repro.workload import QueryGenerator, run_workload, top_n_curve

from conftest import format_curve, record_report


@pytest.mark.benchmark(group="gbp")
def test_gbp_placement(benchmark, apps):
    db, schema = apps
    # §4.3 ran a GBP-relevant workload slice; generate one directly.
    generator = QueryGenerator(schema, seed=404)
    relevant = [generator.generate_class("gbp") for _ in range(24)]

    def run():
        return run_workload(
            db, relevant,
            OptimizerConfig().without("groupby_placement"),
            OptimizerConfig(),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.errors, result.errors[:3]

    affected = result.affected()
    assert affected, "GBP never changed a plan"
    curve = top_n_curve(affected)
    best = max(affected, key=lambda o: o.improvement_ratio)
    overall_ratio = curve[-1].baseline_total / max(curve[-1].treated_total, 1e-9)

    report = format_curve(
        "Group-by placement on vs off (paper section 4.3)",
        curve,
        extra_lines=[
            "",
            f"  affected queries: {len(affected)} of {len(result.outcomes)}",
            f"  best single-query improvement: "
            f"{(best.improvement_ratio - 1) * 100:.0f}%",
            "",
            "  paper: +21% average; 9 queries improved >200%, 2 >1000%",
        ],
    )
    record_report("Group-by placement", report)

    assert curve[-1].improvement_percent > 0.0
    # heavy right tail: the best query improves more than the average
    assert best.improvement_ratio >= overall_ratio
