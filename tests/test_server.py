"""Integration tests for the HTTP/JSON serving front end.

Every test talks to a real ``ThreadingHTTPServer`` bound to an
ephemeral port — the same stack ``python -m repro serve`` runs — so the
protocol, the admission controller, the per-session statement queues,
and snapshot-read isolation are exercised end to end.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import Database
from repro.server import ReproServer, ServerConfig
from repro.server.http import make_http_server

#: sized so the non-equi cross join below runs for seconds if nothing
#: stops it — long enough that cancel/timeout must be doing the work
SLOW_ROWS = 900
SLOW_SQL = "SELECT COUNT(*) FROM big a, big b WHERE a.id + b.id < 0"


class Client:
    """Minimal JSON-over-HTTP client for one server."""

    def __init__(self, base: str):
        self.base = base

    def call(self, method: str, path: str, body=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def ok(self, method: str, path: str, body=None):
        status, payload = self.call(method, path, body)
        assert status == 200, f"{method} {path} -> {status}: {payload}"
        return payload

    def connect(self, options=None) -> str:
        return self.ok("POST", "/sessions", options or {})["session_id"]

    def execute(self, session_id: str, sql: str, **kwargs):
        return self.call(
            "POST", f"/sessions/{session_id}/execute",
            {"sql": sql, **kwargs},
        )


@pytest.fixture
def serve_db():
    """Factory: start a server over a prepared database; yields
    (app, client) pairs and tears everything down."""
    running = []

    def start(config=None, seed=None):
        database = Database()
        if seed is not None:
            seed(database)
        app = ReproServer(database=database, config=config or ServerConfig())
        server = make_http_server(app, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = Client(f"http://{host}:{port}")
        running.append((server, app))
        return app, client

    yield start
    for server, app in running:
        server.shutdown()
        server.server_close()
        app.close()


def seed_people(db: Database) -> None:
    db.execute_ddl(
        "CREATE TABLE people (id INT PRIMARY KEY, dept INT, pay INT)"
    )
    db.insert("people", [
        {"id": i, "dept": i % 5, "pay": 100 + (i * 37) % 900}
        for i in range(200)
    ])
    db.analyze()


def seed_big(db: Database) -> None:
    db.execute_ddl("CREATE TABLE big (id INT PRIMARY KEY)")
    db.insert("big", [{"id": i} for i in range(SLOW_ROWS)])
    db.analyze()


# -- protocol round trips ----------------------------------------------------


def test_connect_execute_disconnect(serve_db):
    _, client = serve_db(seed=seed_people)
    sid = client.connect()
    status, result = client.execute(
        sid, "SELECT dept, COUNT(*) FROM people GROUP BY dept ORDER BY dept"
    )
    assert status == 200
    assert result["rows"] == [[d, 40] for d in range(5)]
    assert result["cache_status"] == "miss"
    status, again = client.execute(
        sid, "SELECT dept, COUNT(*) FROM people GROUP BY dept ORDER BY dept"
    )
    assert again["cache_status"] == "hit"
    assert client.ok("DELETE", f"/sessions/{sid}") == {"closed": sid}
    status, _ = client.execute(sid, "SELECT COUNT(*) FROM people")
    assert status == 404


def test_ddl_insert_analyze_over_http(serve_db):
    _, client = serve_db()
    sid = client.connect()
    client.ok("POST", f"/sessions/{sid}/ddl",
              {"sql": "CREATE TABLE t (id INT PRIMARY KEY, v INT)"})
    out = client.ok("POST", f"/sessions/{sid}/insert", {
        "table": "t", "rows": [{"id": i, "v": i % 3} for i in range(9)],
    })
    assert out == {"inserted": 9, "table": "t"}
    assert client.ok("POST", f"/sessions/{sid}/analyze",
                     {"table": "t"}) == {"analyzed": "t"}
    _, result = client.execute(
        sid, "SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v"
    )
    assert result["rows"] == [[0, 3], [1, 3], [2, 3]]


def test_prepare_binds_and_paged_fetch(serve_db):
    _, client = serve_db(seed=seed_people)
    sid = client.connect()
    prepared = client.ok("POST", f"/sessions/{sid}/statements", {
        "sql": "SELECT id FROM people WHERE dept = :d ORDER BY id",
    })
    status, result = client.call(
        "POST", f"/sessions/{sid}/execute",
        {"statement_id": prepared["statement_id"], "binds": {"d": 2},
         "fetch_size": 15},
    )
    assert status == 200
    assert result["row_count"] == 40 and len(result["rows"]) == 15
    assert result["more"] and "cursor_id" in result
    collected = [row[0] for row in result["rows"]]
    cursor_id = result["cursor_id"]
    while result.get("more"):
        result = client.ok("POST", f"/sessions/{sid}/fetch",
                           {"cursor_id": cursor_id, "n": 15})
        collected.extend(row[0] for row in result["rows"])
    assert collected == [i for i in range(200) if i % 5 == 2]
    # exhausted cursors close server-side
    status, _ = client.call("POST", f"/sessions/{sid}/fetch",
                            {"cursor_id": cursor_id, "n": 15})
    assert status == 404


def test_explain_verbs(serve_db):
    _, client = serve_db(seed=seed_people)
    sid = client.connect()
    plan = client.ok("POST", f"/sessions/{sid}/explain",
                     {"sql": "SELECT COUNT(*) FROM people"})["plan"]
    assert "Aggregate" in plan or "aggregate" in plan.lower()
    _, result = client.execute(
        sid, "EXPLAIN ANALYZE SELECT COUNT(*) FROM people WHERE dept = 1"
    )
    assert "actual" in result["explain_analyze"]
    assert result["rows"] == [[40]]


def test_admin_endpoints_and_shared_plan_cache(serve_db):
    app, client = serve_db(seed=seed_people)
    first, second = client.connect(), client.connect()
    sql = "SELECT COUNT(*) FROM people WHERE pay > 500"
    assert client.execute(first, sql)[1]["cache_status"] == "miss"
    # a different session shares the plan cache (one cursor per text)
    assert client.execute(second, sql)[1]["cache_status"] == "hit"
    health = client.ok("GET", "/healthz")
    assert health["ok"] and health["sessions"] == 2
    cache = client.ok("GET", "/cache")
    assert cache["entries"] >= 1 and cache["hits"] >= 1
    metrics = client.ok("GET", "/metrics")
    assert metrics["server"]["admitted_total"] >= 2
    assert metrics["counters"]["server.statements"] >= 2
    assert "epoch" in client.ok("GET", "/quarantine")
    assert set(client.ok("GET", "/sessions")["sessions"]) == {first, second}


def test_error_status_mapping(serve_db):
    _, client = serve_db(seed=seed_people)
    sid = client.connect()
    assert client.call("POST", "/sessions/zzz/execute",
                       {"sql": "SELECT 1"})[0] == 404
    assert client.execute(sid, "SELECT nosuch FROM people")[0] == 400
    assert client.execute(sid, "DELETE FROM people")[0] == 400
    assert client.call("GET", "/nosuch")[0] == 404
    assert client.call("POST", f"/sessions/{sid}/fetch",
                       {"cursor_id": "c999"})[0] == 404
    status, payload = client.execute(sid, "SELECT FROM people")
    assert status == 400
    assert payload["error"]["type"] in ("ParseError", "SqlError")


# -- admission control -------------------------------------------------------


def _bg(client: Client, sid: str, sql: str, **kwargs):
    """Run one execute on a thread; returns (thread, outcome-dict)."""
    outcome: dict = {}

    def run():
        outcome["status"], outcome["payload"] = client.execute(
            sid, sql, **kwargs
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, outcome


def _wait_running(app: ReproServer, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if app.admission.snapshot()["running"] >= 1:
            return
        time.sleep(0.01)
    raise AssertionError("statement never started running")


def test_saturation_rejects_with_429(serve_db):
    app, client = serve_db(
        config=ServerConfig(workers=1, max_queue_depth=0),
        seed=seed_big,
    )
    busy, other = client.connect(), client.connect()
    thread, outcome = _bg(client, busy, SLOW_SQL)
    _wait_running(app)
    status, payload = client.execute(other, "SELECT COUNT(*) FROM big")
    assert status == 429
    assert payload["error"]["type"] == "AdmissionRejected"
    client.ok("POST", f"/sessions/{busy}/cancel", {})
    thread.join(timeout=30)
    assert outcome["status"] == 409
    # capacity freed: the refused client's retry succeeds
    status, result = client.execute(other, "SELECT COUNT(*) FROM big")
    assert status == 200 and result["rows"] == [[SLOW_ROWS]]


def test_session_queue_depth_rejects_with_429(serve_db):
    app, client = serve_db(
        config=ServerConfig(workers=2, session_queue_depth=1),
        seed=seed_big,
    )
    sid = client.connect()
    thread, outcome = _bg(client, sid, SLOW_SQL)
    _wait_running(app)
    status, payload = client.execute(sid, "SELECT COUNT(*) FROM big")
    assert status == 429 and payload["error"]["type"] == "AdmissionRejected"
    # other sessions are unaffected by this session's full queue
    other = client.connect()
    assert client.execute(other, "SELECT COUNT(*) FROM big")[0] == 200
    client.ok("POST", f"/sessions/{sid}/cancel", {})
    thread.join(timeout=30)
    assert outcome["status"] == 409


def test_statement_timeout_maps_to_408(serve_db):
    _, client = serve_db(seed=seed_big)
    sid = client.connect()
    started = time.monotonic()
    status, payload = client.execute(sid, SLOW_SQL, timeout=0.2)
    assert status == 408
    assert payload["error"]["type"] == "StatementTimeout"
    assert time.monotonic() - started < 30
    # the session keeps serving after its statement timed out
    assert client.execute(sid, "SELECT COUNT(*) FROM big")[0] == 200


def test_deadline_burned_in_queue_maps_to_408(serve_db):
    app, client = serve_db(
        config=ServerConfig(workers=1, max_queue_depth=8),
        seed=seed_big,
    )
    busy, queued = client.connect(), client.connect()
    slow_thread, slow_outcome = _bg(client, busy, SLOW_SQL)
    _wait_running(app)
    # admitted behind the slow statement with a deadline it cannot make
    fast_thread, fast_outcome = _bg(
        client, queued, "SELECT COUNT(*) FROM big", timeout=0.1
    )
    time.sleep(0.3)
    client.ok("POST", f"/sessions/{busy}/cancel", {})
    slow_thread.join(timeout=30)
    fast_thread.join(timeout=30)
    assert fast_outcome["status"] == 408
    assert app.admission.snapshot()["queue_timeouts"] >= 1


def test_session_default_timeout_from_connect(serve_db):
    _, client = serve_db(seed=seed_big)
    sid = client.connect({"timeout": 0.2})
    status, payload = client.execute(sid, SLOW_SQL)
    assert status == 408 and payload["error"]["type"] == "StatementTimeout"


# -- cancellation (satellite: no leaked cursors, no poisoned queue) ---------


def test_cancel_over_http_leaves_session_healthy(serve_db):
    app, client = serve_db(seed=seed_big)
    sid = client.connect()
    thread, outcome = _bg(client, sid, SLOW_SQL, fetch_size=10)
    _wait_running(app)
    cancelled = client.ok("POST", f"/sessions/{sid}/cancel", {})
    assert cancelled["cancelled"] == 1
    thread.join(timeout=30)
    assert outcome["status"] == 409
    assert outcome["payload"]["error"]["type"] == "StatementCancelled"
    # no partially-consumed cursor leaked from the aborted execution
    session = app.sessions.get(sid)
    assert session.cursors == {}
    assert session.active_token is None and not session.queue
    # the statement queue is not poisoned: same session keeps working,
    # including statements queued *behind* the cancelled one
    status, result = client.execute(
        sid, "SELECT COUNT(*) FROM big WHERE id < 10"
    )
    assert status == 200 and result["rows"] == [[10]]
    assert app.admission.snapshot()["pending"] == 0


def test_cancel_with_drain_flushes_queued_statements(serve_db):
    app, client = serve_db(
        config=ServerConfig(workers=1), seed=seed_big
    )
    sid = client.connect()
    slow_thread, slow_outcome = _bg(client, sid, SLOW_SQL)
    _wait_running(app)
    queued_thread, queued_outcome = _bg(client, sid, SLOW_SQL)
    time.sleep(0.1)
    out = client.ok("POST", f"/sessions/{sid}/cancel", {"drain": True})
    assert out["cancelled"] == 2
    slow_thread.join(timeout=30)
    queued_thread.join(timeout=30)
    assert slow_outcome["status"] == 409
    assert queued_outcome["status"] == 409
    assert client.execute(sid, "SELECT COUNT(*) FROM big")[0] == 200


# -- snapshot reads ----------------------------------------------------------


def test_snapshot_reads_never_see_torn_batches(serve_db):
    """Readers racing batched inserts must observe counts that are
    multiples of the batch size: copy-on-write versions publish a batch
    atomically and each statement reads one pinned snapshot."""
    batch = 7
    app, client = serve_db(config=ServerConfig(workers=4))
    setup = client.connect()
    client.ok("POST", f"/sessions/{setup}/ddl", {
        "sql": "CREATE TABLE feed (id INT PRIMARY KEY, batch INT)",
    })
    stop = threading.Event()
    failures: list[str] = []

    def writer():
        n = 0
        while not stop.is_set() and n < 40:
            rows = [{"id": n * batch + i, "batch": n} for i in range(batch)]
            status, payload = client.call(
                "POST", f"/sessions/{setup}/insert",
                {"table": "feed", "rows": rows},
            )
            if status != 200:
                failures.append(f"insert failed: {payload}")
                return
            n += 1

    def reader():
        rsid = client.connect()
        while not stop.is_set():
            status, result = client.execute(
                rsid, "SELECT COUNT(*) FROM feed"
            )
            if status != 200:
                failures.append(f"read failed: {result}")
                return
            count = result["rows"][0][0]
            if count % batch != 0:
                failures.append(f"torn read: COUNT(*) = {count}")
                return

    writer_thread = threading.Thread(target=writer)
    reader_threads = [threading.Thread(target=reader) for _ in range(3)]
    writer_thread.start()
    for thread in reader_threads:
        thread.start()
    writer_thread.join(timeout=60)
    stop.set()
    for thread in reader_threads:
        thread.join(timeout=60)
    assert not failures, failures[0]
    status, result = client.execute(setup, "SELECT COUNT(*) FROM feed")
    assert result["rows"] == [[40 * batch]]


def test_snapshot_reads_survive_concurrent_ddl(serve_db):
    """CREATE INDEX / ANALYZE racing readers must never produce an
    error or a wrong count (reads run on pinned versions; the plan
    cache revalidates against the snapshot's versions)."""
    app, client = serve_db(seed=seed_people)
    sid = client.connect()
    failures: list[str] = []
    stop = threading.Event()

    def reader():
        rsid = client.connect()
        while not stop.is_set():
            status, result = client.execute(
                rsid, "SELECT COUNT(*) FROM people WHERE dept = 3"
            )
            if status != 200 or result["rows"] != [[40]]:
                failures.append(f"{status}: {result}")
                return

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    client.ok("POST", f"/sessions/{sid}/ddl", {
        "sql": "CREATE INDEX people_dept ON people (dept)",
    })
    client.ok("POST", f"/sessions/{sid}/analyze", {})
    time.sleep(0.3)
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, failures[0]


# -- session lifecycle -------------------------------------------------------


def test_idle_sessions_are_reaped(serve_db):
    app, client = serve_db(seed=seed_people)
    sid = client.connect()
    client.execute(sid, "SELECT COUNT(*) FROM people")
    # deterministic reap: pretend the idle timeout elapsed
    reaped = app.sessions.reap_idle(
        now=time.monotonic() + app.config.idle_timeout + 1
    )
    assert sid in reaped
    assert client.execute(sid, "SELECT COUNT(*) FROM people")[0] == 404
    assert app.sessions.reaped_total >= 1


def test_busy_sessions_are_not_reaped(serve_db):
    app, client = serve_db(seed=seed_big)
    sid = client.connect()
    thread, outcome = _bg(client, sid, SLOW_SQL)
    _wait_running(app)
    reaped = app.sessions.reap_idle(
        now=time.monotonic() + app.config.idle_timeout + 1
    )
    assert sid not in reaped
    client.ok("POST", f"/sessions/{sid}/cancel", {})
    thread.join(timeout=30)


# -- concurrent load with differential checking ------------------------------


def test_eight_concurrent_clients_get_correct_results(serve_db):
    """The acceptance floor: >= 8 concurrent sessions, every result
    differentially checked against the reference evaluator."""
    app, client = serve_db(
        config=ServerConfig(workers=4), seed=seed_people
    )
    queries = [
        "SELECT dept, COUNT(*) FROM people GROUP BY dept ORDER BY dept",
        "SELECT COUNT(*) FROM people WHERE pay > 400",
        "SELECT id FROM people WHERE dept = 1 AND pay < 300 ORDER BY id",
        "SELECT MAX(pay), MIN(pay) FROM people",
    ]
    expected = {
        sql: app.database.reference_execute(sql) for sql in queries
    }
    failures: list[str] = []

    def worker(seed: int):
        sid = client.connect()
        for i in range(6):
            sql = queries[(seed + i) % len(queries)]
            status, result = client.execute(sid, sql)
            if status != 200:
                failures.append(f"{status}: {result}")
                return
            got = [tuple(row) for row in result["rows"]]
            if got != expected[sql]:
                failures.append(f"wrong rows for {sql}: {got}")
                return
        client.call("DELETE", f"/sessions/{sid}")

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, failures[0]
    stats = app.admission.snapshot()
    assert stats["pending"] == 0
    assert stats["admitted_total"] >= 8 * 6
