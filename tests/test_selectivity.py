"""Selectivity estimator unit tests."""

import pytest

from repro.catalog.statistics import (
    ColumnStats,
    Histogram,
    TableStats,
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
)
from repro.optimizer.selectivity import conjunct_selectivity, conjuncts_selectivity
from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.qtree import exprutil


class Stats:
    """StatsContext over one table 't' with a uniform int column 'x'
    (values 0..99, NDV 100, 1000 rows) and a nullable column 'n'."""

    def __init__(self):
        values = [i % 100 for i in range(1000)]
        self._columns = {
            "x": ColumnStats(
                num_distinct=100, num_nulls=0, min_value=0, max_value=99,
                histogram=Histogram(values, buckets=10),
            ),
            "n": ColumnStats(num_distinct=10, num_nulls=500,
                             min_value=0, max_value=9),
        }

    def column_stats(self, alias, column):
        if alias == "t":
            return self._columns.get(column)
        return None

    def table_stats(self, alias):
        return TableStats(row_count=1000) if alias == "t" else None


def sel(text):
    expr = parse_expression(text)

    def qualify(node):
        if isinstance(node, ast.ColumnRef) and node.qualifier is None:
            return ast.ColumnRef("t", node.name)
        return None

    return conjunct_selectivity(exprutil.map_expr(expr, qualify), Stats())


class TestComparisons:
    def test_equality_uses_histogram(self):
        assert sel("x = 5") == pytest.approx(0.01, rel=0.5)

    def test_equality_out_of_range_is_tiny(self):
        assert sel("x = 5000") <= 1e-5

    def test_range_half(self):
        assert sel("x < 50") == pytest.approx(0.5, abs=0.15)

    def test_range_with_reversed_operands(self):
        assert sel("50 > x") == pytest.approx(sel("x < 50"), abs=0.01)

    def test_open_range_tail(self):
        assert sel("x > 89") == pytest.approx(0.1, abs=0.08)

    def test_inequality_complement(self):
        assert sel("x <> 5") == pytest.approx(1.0 - sel("x = 5"), abs=0.01)

    def test_unknown_column_defaults(self):
        assert sel("zzz = 3") == pytest.approx(DEFAULT_EQ_SELECTIVITY)
        assert sel("zzz < 3") == pytest.approx(DEFAULT_RANGE_SELECTIVITY)

    def test_join_predicate_uses_max_ndv(self):
        expr = ast.BinOp("=", ast.ColumnRef("t", "x"), ast.ColumnRef("u", "y"))
        assert conjunct_selectivity(expr, Stats()) == pytest.approx(1 / 100)


class TestNullAwareness:
    def test_is_null_uses_null_fraction(self):
        assert sel("n IS NULL") == pytest.approx(0.5)
        assert sel("n IS NOT NULL") == pytest.approx(0.5)

    def test_equality_discounts_nulls(self):
        # only half the rows are non-null, spread over 10 values
        assert sel("n = 3") == pytest.approx(0.05, abs=0.02)


class TestCompound:
    def test_and_independence(self):
        expr = parse_expression("x = 5 AND x = 7")
        combined = conjuncts_selectivity(
            [exprutil.map_expr(e, lambda n: ast.ColumnRef("t", n.name)
                               if isinstance(n, ast.ColumnRef) else None)
             for e in ast.conjuncts_of(expr)],
            Stats(),
        )
        assert combined == pytest.approx(sel("x = 5") * sel("x = 7"), rel=0.01)

    def test_or_inclusion_exclusion(self):
        s = sel("x = 5 OR x = 7")
        a, b = sel("x = 5"), sel("x = 7")
        assert s == pytest.approx(a + b - a * b, rel=0.01)

    def test_not_complements(self):
        assert sel("NOT (x < 50)") == pytest.approx(1 - sel("x < 50"), abs=0.01)

    def test_between(self):
        assert sel("x BETWEEN 20 AND 39") == pytest.approx(0.2, abs=0.1)

    def test_in_list_sums(self):
        assert sel("x IN (1, 2, 3)") == pytest.approx(0.03, abs=0.02)

    def test_not_in_list(self):
        assert sel("x NOT IN (1, 2, 3)") == pytest.approx(0.97, abs=0.02)

    def test_like_default(self):
        assert 0.0 < sel("n LIKE 'a%'") < 0.2


class TestBounds:
    def test_never_zero_or_negative(self):
        assert sel("x = 123456") > 0.0

    def test_never_above_one(self):
        assert sel("x >= 0 OR x < 1000") <= 1.0
