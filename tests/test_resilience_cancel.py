"""Statement timeouts and cooperative cancellation.

Covers the token itself, timeout expiry inside optimization and inside
executor row loops, cross-thread ``Cursor.cancel()`` against a wedged
(injected-stall) operator, and the cache-hygiene guarantee: a cancelled
execution never poisons the shared plan cache.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

import pytest

from repro import Database, OptimizerConfig, QueryService, ResilienceConfig
from repro.errors import StatementCancelled, StatementTimeout
from repro.resilience import CancelToken, FaultSpec, activate, current_token, inject

from .conftest import build_tiny_db

SQL = (
    "SELECT e.emp_id, d.department_name FROM employees e, departments d "
    "WHERE e.dept_id = d.dept_id AND e.salary > 5"
)

RESILIENT = OptimizerConfig(resilience=ResilienceConfig(fallback=True))


def _scan_stalls() -> list[FaultSpec]:
    """Stall whichever access path the plan picked for its first input."""
    return [
        FaultSpec(f"executor.{op}", kind="stall")
        for op in ("TableScan", "IndexScan", "ViewScan")
    ]


class TestCancelToken:
    def test_cancel_then_check_raises(self):
        token = CancelToken()
        token.check()  # idle token is silent
        token.cancel()
        assert token.cancelled
        with pytest.raises(StatementCancelled):
            token.check()

    def test_deadline_expiry_raises_timeout(self):
        token = CancelToken(timeout=0.01)
        token.check()
        time.sleep(0.02)
        assert token.expired()
        with pytest.raises(StatementTimeout):
            token.check()

    def test_rearming_extends_the_deadline(self):
        token = CancelToken(timeout=0.0)
        token.set_deadline(60.0)
        token.check()

    def test_checks_are_counted(self):
        token = CancelToken()
        for _ in range(3):
            token.check()
        assert token.checks == 3

    def test_activate_publishes_and_restores(self):
        outer, inner = CancelToken(), CancelToken()
        assert current_token() is None
        with activate(outer):
            assert current_token() is outer
            with activate(inner):
                assert current_token() is inner
            assert current_token() is outer
        assert current_token() is None

    def test_activate_none_is_noop(self):
        with activate(None):
            assert current_token() is None


class TestStatementTimeout:
    @pytest.fixture()
    def db(self) -> Database:
        return build_tiny_db()

    def test_expired_timeout_aborts_before_work(self, db):
        with pytest.raises(StatementTimeout):
            db.execute(SQL, timeout=0.0)

    def test_generous_timeout_returns_rows(self, db):
        expected = Counter(db.reference_execute(SQL))
        result = db.execute(SQL, timeout=30.0)
        assert Counter(result.rows) == expected

    def test_timeout_interrupts_stalled_operator(self, db):
        # wedge the scan mid-execution (whichever access path the plan
        # picked); the operator's token poll must fire the deadline long
        # before the stall gives up on its own
        specs = _scan_stalls()
        started = time.perf_counter()
        with inject(*specs, stall_limit=30.0), pytest.raises(StatementTimeout):
            db.execute(SQL, timeout=0.3)
        assert time.perf_counter() - started < 5.0

    def test_session_timeout_bumps_metric(self, db):
        service = QueryService(db)
        session = service.session()
        with pytest.raises(StatementTimeout):
            session.execute(SQL, timeout=0.0)
        assert service.metrics.snapshot()["timeouts"] == 1


class TestCursorCancel:
    @pytest.fixture()
    def db(self) -> Database:
        return build_tiny_db()

    def test_cross_thread_cancel_interrupts_stall(self, db):
        service = QueryService(db)
        cursor = service.session().cursor(SQL)
        canceller = threading.Timer(0.2, cursor.cancel)
        specs = _scan_stalls()
        started = time.perf_counter()
        canceller.start()
        try:
            with inject(*specs, stall_limit=30.0), \
                    pytest.raises(StatementCancelled):
                cursor.execute()
        finally:
            canceller.cancel()
        assert time.perf_counter() - started < 5.0
        assert cursor.cancelled
        assert service.metrics.snapshot()["cancellations"] == 1

    def test_pre_cancelled_cursor_refuses_to_run(self, db):
        service = QueryService(db)
        cursor = service.session().cursor(SQL)
        cursor.cancel()
        with pytest.raises(StatementCancelled):
            cursor.execute()

    def test_cancelled_execution_does_not_poison_cache(self, db):
        service = QueryService(db)
        expected = Counter(db.reference_execute(SQL))

        # warm the cache with a clean execution
        warm = service.execute(SQL)
        assert Counter(warm.rows) == expected

        # cancel mid-execution on the cached plan
        cursor = service.session().cursor(SQL)
        cursor.cancel()
        with pytest.raises(StatementCancelled):
            cursor.execute()

        # the cached plan still serves everyone else, unharmed
        after = service.execute(SQL)
        assert after.cache_status == "hit"
        assert Counter(after.rows) == expected

    def test_cancel_during_hard_parse_leaves_no_entry(self, db):
        service = QueryService(db)
        with pytest.raises(StatementCancelled):
            cursor = service.session().cursor(SQL)
            cursor.cancel()
            cursor.execute()
        assert len(service.cache) == 0
        # a later untroubled call hard-parses and caches normally
        result = service.execute(SQL)
        assert result.cache_status == "miss"
        assert len(service.cache) == 1

    def test_stall_gives_up_with_typed_error_when_never_cancelled(self, db):
        # the harness's own backstop: a stall nobody cancels raises
        # FaultInjected at stall_limit instead of hanging the suite
        from repro.errors import FaultInjected

        with inject(*_scan_stalls(), stall_limit=0.1), \
                pytest.raises(FaultInjected):
            db.execute(SQL)
