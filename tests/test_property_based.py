"""Property-based tests (hypothesis).

Core invariants:

* every optimizer configuration produces the same rows as the reference
  evaluator, over randomly generated data with NULLs and skew;
* expression compilation matches a direct three-valued-logic model;
* query-tree clone is a fixpoint of the structural signature;
* histogram selectivities are true fractions and monotone in the bound.
"""

import random
from collections import Counter

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, OptimizerConfig
from repro.catalog.statistics import Histogram
from repro.engine.expressions import ExpressionCompiler, FunctionRegistry
from repro.sql import ast


# ---------------------------------------------------------------------------
# expression three-valued logic vs a model
# ---------------------------------------------------------------------------

values = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))


@st.composite
def comparison_exprs(draw):
    op = draw(st.sampled_from(sorted(ast.COMPARISON_OPERATORS)))
    return op


@given(a=values, b=values, op=comparison_exprs())
def test_comparison_matches_model(a, b, op):
    compiler = ExpressionCompiler(FunctionRegistry())
    expr = ast.BinOp(
        op, ast.ColumnRef("t", "a"), ast.ColumnRef("t", "b")
    )
    result = compiler.compile(expr)({"t.a": a, "t.b": b})
    if a is None or b is None:
        assert result is None
    else:
        import operator

        model = {
            "=": operator.eq, "<>": operator.ne, "<": operator.lt,
            "<=": operator.le, ">": operator.gt, ">=": operator.ge,
        }[op]
        assert result == model(a, b)


@given(operands=st.lists(st.one_of(st.booleans(), st.none()),
                         min_size=1, max_size=5))
def test_kleene_and_or(operands):
    compiler = ExpressionCompiler(FunctionRegistry())
    literals = [ast.Literal(v) for v in operands]
    and_result = compiler.compile(ast.And(literals))({})
    or_result = compiler.compile(ast.Or(literals))({})
    if False in operands:
        assert and_result is False
    elif None in operands:
        assert and_result is None
    else:
        assert and_result is True
    if True in operands:
        assert or_result is True
    elif None in operands:
        assert or_result is None
    else:
        assert or_result is False


# ---------------------------------------------------------------------------
# histogram invariants
# ---------------------------------------------------------------------------

@given(values=st.lists(st.integers(min_value=0, max_value=200),
                       min_size=1, max_size=400),
       bound=st.integers(min_value=-10, max_value=210))
def test_histogram_range_is_a_fraction(values, bound):
    hist = Histogram(values, buckets=8)
    sel = hist.selectivity_range(None, bound)
    assert 0.0 <= sel <= 1.0
    truth = sum(1 for v in values if v <= bound) / len(values)
    # frequency histograms are exact; equi-height within a bucket
    tolerance = 1.0 if not hist.is_frequency else 1e-9
    assert abs(sel - truth) <= (0.3 if not hist.is_frequency else 1e-9)


@given(values=st.lists(st.integers(min_value=0, max_value=100),
                       min_size=2, max_size=300))
def test_histogram_cumulative_monotone(values):
    hist = Histogram(values, buckets=8)
    previous = -1.0
    for bound in range(0, 101, 10):
        sel = hist.selectivity_range(None, bound)
        assert sel >= previous - 1e-9
        previous = sel


# ---------------------------------------------------------------------------
# whole-stack equivalence on random data
# ---------------------------------------------------------------------------

QUERY_POOL = [
    "SELECT p.id FROM parent p WHERE EXISTS "
    "(SELECT 1 FROM child c WHERE c.pid = p.id AND c.v > 3)",
    "SELECT p.id FROM parent p WHERE p.id NOT IN "
    "(SELECT c.pid FROM child c WHERE c.v > 5)",
    "SELECT p.id FROM parent p WHERE p.w > "
    "(SELECT AVG(c.v) FROM child c WHERE c.pid = p.id)",
    "SELECT p.w, COUNT(c.v) FROM parent p, child c "
    "WHERE c.pid = p.id GROUP BY p.w",
    "SELECT p.id FROM parent p, "
    "(SELECT DISTINCT c.pid AS k FROM child c WHERE c.v > 2) s "
    "WHERE p.id = s.k",
    "SELECT c.pid FROM child c MINUS SELECT p.id FROM parent p WHERE p.w > 4",
    "SELECT p.id FROM parent p, child c WHERE c.pid = p.id "
    "AND (p.w = 1 OR c.v > 6)",
    "SELECT p.id FROM parent p LEFT OUTER JOIN child c ON c.pid = p.id "
    "WHERE c.pid IS NULL",
]


def build_random_db(seed: int) -> Database:
    rng = random.Random(seed)
    db = Database()
    db.execute_ddl("CREATE TABLE parent (id INT PRIMARY KEY, w INT)")
    db.execute_ddl(
        "CREATE TABLE child (cid INT PRIMARY KEY, pid INT, v INT)"
    )
    db.execute_ddl("CREATE INDEX child_pid ON child (pid)")
    n_parent = rng.randint(3, 15)
    n_child = rng.randint(0, 40)
    db.insert("parent", [
        {"id": i, "w": None if rng.random() < 0.2 else rng.randint(0, 8)}
        for i in range(1, n_parent + 1)
    ])
    db.insert("child", [
        {
            "cid": i,
            "pid": None if rng.random() < 0.2 else rng.randint(1, n_parent + 2),
            "v": None if rng.random() < 0.2 else rng.randint(0, 9),
        }
        for i in range(1, n_child + 1)
    ])
    db.analyze()
    return db


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       query_index=st.integers(min_value=0, max_value=len(QUERY_POOL) - 1),
       heuristic=st.booleans())
def test_optimized_execution_matches_reference(seed, query_index, heuristic):
    db = build_random_db(seed)
    sql = QUERY_POOL[query_index]
    expected = Counter(db.reference_execute(sql))
    config = (
        OptimizerConfig.heuristic_mode() if heuristic else OptimizerConfig()
    )
    got = Counter(db.execute(sql, config).rows)
    assert got == expected


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       query_index=st.integers(min_value=0, max_value=len(QUERY_POOL) - 1))
def test_clone_signature_fixpoint(seed, query_index):
    from repro.qtree import signature

    db = build_random_db(seed)
    tree = db.parse(QUERY_POOL[query_index])
    assert signature(tree.clone()) == signature(tree)
    assert signature(tree.clone().clone()) == signature(tree)
