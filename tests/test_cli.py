"""CLI shell tests (driven through the Shell API, no subprocess)."""

import io

import pytest

from repro.cli import Shell


@pytest.fixture()
def shell():
    out = io.StringIO()
    sh = Shell(out=out)
    sh.out = out
    sh._out_buffer = out
    return sh


def output_of(shell) -> str:
    return shell.out.getvalue()


def feed(shell, text):
    shell.run_script(text)
    return output_of(shell)


SETUP = """
CREATE TABLE t (id INT PRIMARY KEY, v INT);
"""


class TestStatements:
    def test_create_table(self, shell):
        text = feed(shell, SETUP)
        assert "ok" in text
        assert shell.db.catalog.has_table("t")

    def test_multiline_statement(self, shell):
        shell.run_line("CREATE TABLE t (")
        assert shell.needs_more
        shell.run_line("  id INT PRIMARY KEY);")
        assert not shell.needs_more
        assert shell.db.catalog.has_table("t")

    def test_select_prints_rows(self, shell):
        feed(shell, SETUP)
        shell.db.insert("t", [{"id": 1, "v": 10}, {"id": 2, "v": None}])
        text = feed(shell, "SELECT id, v FROM t;")
        assert "(2 rows)" in text
        assert "NULL" in text

    def test_error_is_reported_not_raised(self, shell):
        text = feed(shell, "SELECT x FROM missing;")
        assert "error:" in text

    def test_unsupported_statement(self, shell):
        text = feed(shell, "DROP TABLE t;")
        assert "error" in text

    def test_missing_trailing_semicolon_still_runs(self, shell):
        feed(shell, SETUP)
        text = feed(shell, "SELECT id FROM t")
        assert "(0 rows)" in text


class TestMetaCommands:
    def test_schema_listing(self, shell):
        feed(shell, SETUP)
        text = feed(shell, ".schema")
        assert "t (0 rows)" in text

    def test_schema_describe(self, shell):
        feed(shell, SETUP)
        text = feed(shell, ".schema t")
        assert "id INT NOT NULL" in text
        assert "PRIMARY KEY (id)" in text

    def test_explain_toggle(self, shell):
        feed(shell, SETUP)
        feed(shell, ".explain on")
        text = feed(shell, "SELECT id FROM t;")
        assert "-- transformed:" in text
        assert "TABLE SCAN" in text

    def test_decisions_toggle(self, shell):
        feed(shell, SETUP)
        shell.db.insert("t", [{"id": i, "v": i} for i in range(20)])
        feed(shell, ".analyze")
        feed(shell, ".decisions on")
        text = feed(
            shell,
            "SELECT a.id FROM t a WHERE a.v > "
            "(SELECT AVG(b.v) FROM t b WHERE b.id = a.id);",
        )
        assert "rows)" in text

    def test_timing_toggle(self, shell):
        feed(shell, SETUP)
        feed(shell, ".timing on")
        text = feed(shell, "SELECT id FROM t;")
        assert "work units" in text

    def test_mode_switch(self, shell):
        feed(shell, ".mode heuristic")
        assert not shell.db.config.cbqt.enabled
        feed(shell, ".mode cbqt")
        assert shell.db.config.cbqt.enabled

    def test_strategy_switch(self, shell):
        feed(shell, ".strategy linear")
        assert shell.db.config.cbqt.search_strategy == "linear"
        feed(shell, ".strategy auto")
        assert shell.db.config.cbqt.search_strategy is None

    def test_disable_enable(self, shell):
        feed(shell, ".disable jppd")
        assert "jppd" in shell.db.config.cbqt.disabled_transformations
        feed(shell, ".enable jppd")
        assert "jppd" not in shell.db.config.cbqt.disabled_transformations

    def test_analyze(self, shell):
        feed(shell, SETUP)
        shell.db.insert("t", [{"id": 1, "v": 2}])
        text = feed(shell, ".analyze t")
        assert "statistics collected" in text
        assert shell.db.statistics.get("t").row_count == 1

    def test_unknown_command(self, shell):
        text = feed(shell, ".nonsense")
        assert "unknown command" in text

    def test_help(self, shell):
        text = feed(shell, ".help")
        assert ".schema" in text

    def test_quit_sets_done(self, shell):
        feed(shell, ".quit")
        assert shell.done

    def test_load_script(self, shell, tmp_path):
        script = tmp_path / "setup.sql"
        script.write_text(SETUP + "SELECT id FROM t;")
        text = feed(shell, f".load {script}")
        assert "ok" in text
        assert "(0 rows)" in text

    def test_load_missing_file(self, shell):
        text = feed(shell, ".load /no/such/file.sql")
        assert "error" in text


class TestPlanCache:
    def test_cache_stats_meta(self, shell):
        feed(shell, SETUP)
        shell.db.insert("t", [{"id": 1, "v": 10}])
        feed(shell, "SELECT id FROM t;\nSELECT id FROM t;")
        text = feed(shell, ".cache stats")
        assert "plan cache statistics" in text
        assert shell.service.metrics.hits == 1
        assert shell.service.metrics.misses == 1

    def test_cache_clear_and_toggle(self, shell):
        feed(shell, SETUP)
        feed(shell, "SELECT id FROM t;")
        text = feed(shell, ".cache clear")
        assert "plan cache cleared (1 entries)" in text
        feed(shell, ".cache off")
        feed(shell, "SELECT id FROM t;\nSELECT id FROM t;")
        assert shell.service.metrics.hits == 0
        text = feed(shell, ".cache bogus")
        assert "usage" in text

    def test_explain_shows_cache_disposition(self, shell):
        feed(shell, SETUP + ".explain on\n")
        text = feed(shell, "SELECT id FROM t;\nSELECT id FROM t;")
        assert "-- cache: miss" in text
        assert "-- cache: hit" in text


class TestSubcommands:
    def test_cache_stats_subcommand(self, tmp_path, capsys, monkeypatch):
        import sys

        from repro.cli import main

        script = tmp_path / "setup.sql"
        script.write_text(SETUP + "SELECT id FROM t;\nSELECT id FROM t;")
        monkeypatch.setattr(sys.stdin, "isatty", lambda: True, raising=False)
        assert main(["cache-stats", str(script)]) == 0
        out = capsys.readouterr().out
        assert "plan cache statistics" in out
        assert "hits" in out

    def test_explain_subcommand(self, tmp_path, capsys, monkeypatch):
        import sys

        from repro.cli import main

        script = tmp_path / "setup.sql"
        script.write_text(SETUP)
        monkeypatch.setattr(sys.stdin, "isatty", lambda: True, raising=False)
        assert main(["explain", "SELECT id FROM t", str(script)]) == 0
        out = capsys.readouterr().out
        assert "-- cache: miss" in out
        assert "plan cache statistics" in out

    def test_explain_subcommand_usage_and_errors(self, capsys, monkeypatch):
        import sys

        from repro.cli import main

        monkeypatch.setattr(sys.stdin, "isatty", lambda: True, raising=False)
        assert main(["explain"]) == 2
        assert main(["explain", "SELECT x FROM missing"]) == 1


class TestDurabilityVerbs:
    """``repro checkpoint`` / ``repro recover`` over a real data dir."""

    def test_checkpoint_then_recover_report(self, tmp_path, capsys,
                                            monkeypatch):
        import os
        import sys

        from repro.cli import main

        monkeypatch.setattr(sys.stdin, "isatty", lambda: True, raising=False)
        data_dir = str(tmp_path / "data")
        script = tmp_path / "setup.sql"
        script.write_text(SETUP)
        assert main(
            ["checkpoint", "--data-dir", data_dir, str(script)]
        ) == 0
        out = capsys.readouterr().out
        assert "checkpoint written at lsn 1" in out
        assert os.path.exists(os.path.join(data_dir, "checkpoint.json"))

        assert main(["recover", "--data-dir", data_dir]) == 0
        out = capsys.readouterr().out
        assert "checkpoint_lsn: 1" in out

        assert main(["recover", "--data-dir", data_dir, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "verification ok" in out

    def test_recover_verify_fails_on_corruption(self, tmp_path, capsys,
                                                monkeypatch):
        import os
        import sys

        from repro.cli import main

        monkeypatch.setattr(sys.stdin, "isatty", lambda: True, raising=False)
        data_dir = str(tmp_path / "data")
        script = tmp_path / "setup.sql"
        script.write_text(SETUP)
        assert main(["checkpoint", "--data-dir", data_dir, str(script)]) == 0
        capsys.readouterr()
        # corrupt the checkpoint: verification must fail loudly
        with open(os.path.join(data_dir, "checkpoint.json"), "w") as handle:
            handle.write("{broken")
        assert main(["recover", "--data-dir", data_dir, "--verify"]) == 1
        out = capsys.readouterr().out
        assert "verification FAILED" in out

    def test_usage_errors(self, capsys, monkeypatch):
        import sys

        from repro.cli import main

        monkeypatch.setattr(sys.stdin, "isatty", lambda: True, raising=False)
        assert main(["checkpoint"]) == 2
        assert main(["recover"]) == 2
        assert main(["recover", "--data-dir"]) == 2
        assert main(["recover", "--bogus"]) == 2
