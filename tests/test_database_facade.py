"""Database facade tests: DDL, inserts, analyze, explain, reports."""

import pytest

from repro import Database, OptimizerConfig
from repro.errors import CatalogError, ExecutionError, ResolutionError


@pytest.fixture()
def db():
    database = Database()
    database.execute_ddl(
        "CREATE TABLE items (id INT PRIMARY KEY, price INT, kind INT)"
    )
    database.insert("items", [
        {"id": i, "price": i * 10, "kind": i % 3} for i in range(1, 21)
    ])
    database.analyze()
    return database


class TestDdlAndData:
    def test_create_and_insert(self, db):
        assert db.storage.get("items").row_count == 20

    def test_insert_invalidates_statistics(self, db):
        assert db.statistics.get("items") is not None
        db.insert("items", [{"id": 99, "price": 1, "kind": 0}])
        assert db.statistics.get("items") is None

    def test_create_index_backfills(self, db):
        db.execute_ddl("CREATE INDEX items_kind ON items (kind)")
        data = db.storage.get("items")
        assert len(list(data.index_named("items_kind").scan((1,)))) > 0

    def test_ddl_rejects_select(self, db):
        with pytest.raises(CatalogError):
            db.execute_ddl("SELECT id FROM items")

    def test_pk_violation_surfaces(self, db):
        with pytest.raises(ExecutionError):
            db.insert("items", [{"id": 1, "price": 5, "kind": 0}])


class TestQueries:
    def test_execute_returns_columns(self, db):
        result = db.execute("SELECT id, price FROM items WHERE kind = 0")
        assert result.columns == ["id", "price"]
        assert all(len(row) == 2 for row in result.rows)

    def test_result_iterable_and_sized(self, db):
        result = db.execute("SELECT id FROM items")
        assert len(result) == 20
        assert len(list(result)) == 20

    def test_explain_contains_plan_and_sql(self, db):
        text = db.explain("SELECT id FROM items WHERE id = 3")
        assert "-- transformed:" in text
        assert "INDEX SCAN" in text or "TABLE SCAN" in text

    def test_optimize_exposes_report(self, db):
        optimized = db.optimize("SELECT id FROM items WHERE price > 50")
        assert optimized.estimated_cost > 0
        assert optimized.report.elapsed_seconds >= 0

    def test_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT x FROM missing")

    def test_unknown_column_raises(self, db):
        with pytest.raises(ResolutionError):
            db.execute("SELECT nope FROM items")

    def test_reference_execute_agrees(self, db):
        sql = "SELECT kind, COUNT(*) FROM items GROUP BY kind"
        assert sorted(db.execute(sql).rows) == sorted(db.reference_execute(sql))


class TestConfigPlumbing:
    def test_without_creates_disabled_copy(self):
        config = OptimizerConfig().without("jppd", "unnest_view")
        assert "jppd" in config.cbqt.disabled_transformations
        assert "unnest_view" in config.cbqt.disabled_transformations
        # original untouched
        assert not OptimizerConfig().cbqt.disabled_transformations

    def test_heuristic_mode_disables_cbqt(self):
        assert not OptimizerConfig.heuristic_mode().cbqt.enabled

    def test_with_strategy(self):
        config = OptimizerConfig().with_strategy("two_pass")
        assert config.cbqt.search_strategy == "two_pass"

    def test_per_call_config_override(self, db):
        default = db.execute("SELECT id FROM items")
        overridden = db.execute(
            "SELECT id FROM items", OptimizerConfig.heuristic_mode()
        )
        assert sorted(default.rows) == sorted(overridden.rows)

    def test_register_function_plumbs_through(self, db):
        db.register_function("DOUBLE_IT", lambda x: None if x is None else 2 * x)
        result = db.execute("SELECT DOUBLE_IT(price) FROM items WHERE id = 1")
        assert result.rows == [(20,)]

    def test_expensive_function_marked(self, db):
        db.register_function("COSTLY", lambda x: x, expensive_cost=500.0)
        assert db.catalog.is_expensive_function("costly")


class TestTotalTimeAccounting:
    def test_total_time_includes_states(self, db):
        result = db.execute("SELECT id FROM items WHERE price > 10")
        assert result.total_time_units >= result.work_units
        assert result.optimize_seconds >= 0.0
        assert result.execute_seconds >= 0.0
