"""The fault-injection harness, the degradation ladder, and the
transformation quarantine.

Mechanics first (deterministic firing, seed-planned specs, nesting),
then the ladder: an injected transformation failure must degrade to a
correct plan with the failure attributed, quarantine the repeat
offender, and never swallow KeyboardInterrupt / SystemExit /
VerificationError in strict mode.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import Database, OptimizerConfig, ResilienceConfig
from repro.errors import FaultInjected, VerificationError
from repro.resilience import FaultInjector, FaultSpec, faults, inject
from repro.resilience.faults import injection_points

from .conftest import build_tiny_db

# crosses heuristic points (subquery_merge via EXISTS rewrite elsewhere)
# and the cost-based search: unnest/merge/jppd alternatives plus costing
SQL = (
    "SELECT e.emp_id FROM employees e "
    "WHERE e.salary > (SELECT AVG(j.start_date) FROM job_history j "
    "WHERE j.emp_id = e.emp_id)"
)

STRICT = OptimizerConfig(resilience=ResilienceConfig(fallback=False))
RESILIENT = OptimizerConfig(resilience=ResilienceConfig(fallback=True))


def transform_specs(**kwargs) -> list[FaultSpec]:
    """One spec per transformation injection point."""
    return [
        FaultSpec(point, **kwargs)
        for point in injection_points()
        if point.startswith("transform.")
    ]


def probe_points(db: Database, sql: str, config: OptimizerConfig) -> list[str]:
    """The injection points one execution actually crosses."""
    with inject() as probe:
        db.execute(sql, config)
    return sorted(probe.counts)


class TestHarnessMechanics:
    def test_disarmed_check_is_noop(self):
        assert faults.active() is None
        faults.check("transform.unnest_view")  # must not raise

    def test_fires_on_kth_invocation_only(self):
        with inject(FaultSpec("p", at=3)) as injector:
            faults.check("p")
            faults.check("p")
            with pytest.raises(FaultInjected):
                faults.check("p")
            faults.check("p")  # at=3 without repeat: fires exactly once
        assert injector.counts["p"] == 4
        assert injector.fired == [("p", 3, "raise")]

    def test_repeat_fires_on_every_invocation_past_at(self):
        with inject(FaultSpec("p", at=2, repeat=True)):
            faults.check("p")
            for _ in range(3):
                with pytest.raises(FaultInjected):
                    faults.check("p")

    def test_custom_error_type_and_message(self):
        spec = FaultSpec("p", error=VerificationError, message="boom")
        with inject(spec), pytest.raises(VerificationError, match="boom"):
            faults.check("p")

    def test_nesting_restores_previous_injector(self):
        with inject(FaultSpec("outer")) as outer:
            with inject(FaultSpec("inner")) as inner:
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is None

    def test_plan_is_seed_deterministic(self):
        a = FaultInjector.plan(seed=7)
        b = FaultInjector.plan(seed=7)
        assert (a.specs[0].point, a.specs[0].at) == (
            b.specs[0].point, b.specs[0].at,
        )
        assert a.specs[0].point in injection_points()

    def test_injection_points_cover_every_layer(self):
        points = injection_points()
        assert any(p.startswith("transform.") for p in points)
        assert any(p.startswith("executor.") for p in points)
        assert "cbqt.costing" in points
        assert "plan_cache.lookup" in points
        assert "plan_cache.store" in points
        assert "memo.lookup" in points


class TestDegradationLadder:
    @pytest.fixture()
    def db(self) -> Database:
        return build_tiny_db()

    def test_strict_mode_propagates_with_blame(self, db):
        with inject(*transform_specs(repeat=True)):
            with pytest.raises(FaultInjected) as excinfo:
                db.execute(SQL, STRICT)
        assert getattr(excinfo.value, "transformation", None)

    def test_fallback_rescues_with_correct_rows(self, db):
        expected = Counter(db.reference_execute(SQL))
        with inject(*transform_specs(repeat=True)):
            result = db.execute(SQL, RESILIENT)
        assert Counter(result.rows) == expected
        degradation = result.report.degradation
        assert degradation is not None
        assert degradation.level in ("cbqt-discard", "heuristic", "untransformed")
        assert degradation.attempts >= 2
        assert degradation.blamed
        assert degradation.errors

    def test_single_fault_discards_only_the_culprit(self, db):
        expected = Counter(db.reference_execute(SQL))
        assert "transform.unnest_view" in probe_points(db, SQL, RESILIENT)
        with inject(FaultSpec("transform.unnest_view", repeat=True)):
            result = db.execute(SQL, RESILIENT)
        assert Counter(result.rows) == expected
        assert result.report.degradation is not None
        assert result.report.degradation.blamed == ["unnest_view"]
        # full CBQT minus the culprit, not a deeper fall
        assert result.report.degradation.level == "cbqt-discard"

    def test_degradation_surfaces_in_explain(self, db):
        with inject(*transform_specs(repeat=True)):
            text = db.optimize(SQL, RESILIENT).explain()
        assert "-- degraded:" in text

    def test_costing_fault_degrades_to_heuristic(self, db):
        expected = Counter(db.reference_execute(SQL))
        with inject(FaultSpec("cbqt.costing", repeat=True)):
            result = db.execute(SQL, RESILIENT)
        assert Counter(result.rows) == expected

    def test_timeout_never_degrades(self, db):
        # a user limit must abort, not walk the ladder
        from repro.errors import StatementTimeout

        with pytest.raises(StatementTimeout):
            db.execute(SQL, RESILIENT, timeout=0.0)


class TestNoSwallowedInterrupts:
    """No handler in transform/ or cbqt/ may eat control-flow exceptions
    or sanitizer verdicts — proven by injecting them at live points."""

    @pytest.fixture()
    def db(self) -> Database:
        return build_tiny_db()

    @pytest.mark.parametrize("interrupt", [KeyboardInterrupt, SystemExit])
    def test_interrupts_escape_the_ladder(self, db, interrupt):
        points = probe_points(db, SQL, RESILIENT)
        for point in points:
            with inject(FaultSpec(point, error=interrupt)):
                with pytest.raises(interrupt):
                    db.execute(SQL, RESILIENT)

    def test_verification_error_escapes_in_strict_mode(self, db):
        points = [
            p for p in probe_points(db, SQL, STRICT)
            if p.startswith("transform.")
        ]
        for point in points:
            with inject(FaultSpec(point, error=VerificationError)):
                with pytest.raises(VerificationError):
                    db.execute(SQL, STRICT)


class TestQuarantine:
    def _db(self) -> Database:
        db = build_tiny_db()
        db.config = OptimizerConfig(
            resilience=ResilienceConfig(
                fallback=True, quarantine_statement_threshold=2
            )
        )
        # thresholds are read at Database construction; rebuild the ledger
        db.quarantine.statement_threshold = 2
        return db

    def test_repeat_offender_is_quarantined_then_skipped(self):
        db = self._db()
        point, name = "transform.unnest_view", "unnest_view"
        assert point in probe_points(db, SQL, db.config)
        for _ in range(2):
            with inject(FaultSpec(point, repeat=True)):
                db.execute(SQL)
        assert db.quarantine.failures(name) == 2
        assert db.quarantine.is_quarantined(name, " ".join(SQL.split()))

        # quarantined: the transformation is skipped up front, so the
        # armed fault never fires and no degradation is needed
        with inject(FaultSpec(point, repeat=True)) as injector:
            result = db.execute(SQL)
        assert name in result.report.quarantined
        assert result.report.degradation is None
        assert injector.fired == []

    def test_reset_lifts_quarantine_and_bumps_epoch(self):
        db = self._db()
        db.quarantine.record_failure("unnest_view", "sig")
        db.quarantine.record_failure("unnest_view", "sig")
        assert db.quarantine.is_quarantined("unnest_view", "sig")
        epoch = db.quarantine.epoch
        db.quarantine.reset("unnest_view")
        assert not db.quarantine.is_quarantined("unnest_view", "sig")
        assert db.quarantine.epoch == epoch + 1

    def test_global_threshold_spans_statements(self):
        db = self._db()
        db.quarantine.global_threshold = 3
        for i in range(3):
            db.quarantine.record_failure("jppd", f"sig-{i}")
        assert db.quarantine.is_quarantined("jppd", "never-seen")

    def test_format_table_lists_offenders(self):
        db = self._db()
        db.quarantine.record_failure("jppd", "sig")
        text = db.quarantine.format_table()
        assert "jppd" in text
        assert "epoch" in text
