"""End-to-end tests of the paper's worked examples (Q1-Q17) on the HR
demo schema: transformation shapes match the paper's rewritten queries,
and every variant returns the same rows."""

from collections import Counter

import pytest

from repro import OptimizerConfig
from repro.qtree.blocks import QueryBlock, SetOpBlock
from repro.transform.base import apply_everywhere
from repro.transform.costbased import (
    GroupByViewMerging,
    JoinFactorization,
    JoinPredicatePushdown,
    SetOpIntoJoin,
    UnnestSubqueryToView,
)
from repro.transform.heuristic import JoinElimination, SubqueryMergeUnnesting

from tests import paper_queries as pq


def normalized(rows):
    """Round floats so aggregation-order differences (eager aggregation
    legitimately re-associates floating-point sums) do not fail equality."""
    return Counter(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in rows
    )


def reference(db, sql):
    return normalized(db.reference_execute(sql))


def evaluate_tree(db, tree):
    from repro.engine.reference import ReferenceEvaluator

    return normalized(
        ReferenceEvaluator(db.storage, db.functions).evaluate(tree)
    )


class TestQ1Family:
    """Q1 -> Q10 (unnest to group-by view) -> Q11 (merge the view)."""

    def test_q10_shape(self, hr_db):
        tree = hr_db.parse(pq.Q1)
        unnest = UnnestSubqueryToView(hr_db.catalog)
        targets = unnest.find_targets(tree)
        assert len(targets) == 2  # both subqueries are unnestable
        expected = reference(hr_db, pq.Q1)
        # unnest only the aggregate subquery (the paper's Q10)
        for target in targets:
            block = tree  # single outer block
            conjunct = block.where_conjuncts[int(target.key)]
            from repro.sql import ast

            if isinstance(conjunct, ast.BinOp):  # the salary > (...) one
                tree = unnest.apply(tree, target)
                break
        views = [i for i in tree.from_items if i.is_derived]
        assert len(views) == 1
        view = views[0].subquery
        assert view.group_by and view.has_aggregates
        assert evaluate_tree(hr_db, tree) == expected

    def test_q11_shape(self, hr_db):
        tree = hr_db.parse(pq.Q1)
        expected = reference(hr_db, pq.Q1)
        tree = apply_everywhere(UnnestSubqueryToView(hr_db.catalog), tree)
        tree = apply_everywhere(GroupByViewMerging(hr_db.catalog), tree)
        # Q11: no derived group-by view left; outer block groups on
        # rowids and the correlation column, aggregate moved to HAVING.
        assert tree.group_by
        assert tree.having_conjuncts
        assert evaluate_tree(hr_db, tree) == expected

    def test_q1_execution_all_modes(self, hr_db):
        expected = reference(hr_db, pq.Q1)
        for config in (
            OptimizerConfig(),
            OptimizerConfig.heuristic_mode(),
            OptimizerConfig().without("unnest_view", "subquery_merge"),
            OptimizerConfig().with_strategy("linear"),
        ):
            assert normalized(hr_db.execute(pq.Q1, config).rows) == expected

    def test_cbqt_not_worse_than_heuristic_on_q1(self, hr_db):
        cbqt = hr_db.execute(pq.Q1, OptimizerConfig())
        heuristic = hr_db.execute(pq.Q1, OptimizerConfig.heuristic_mode())
        assert cbqt.work_units <= heuristic.work_units * 1.05


class TestQ2Q3:
    def test_exists_merges_to_semijoin(self, hr_db):
        tree = hr_db.parse(pq.Q2)
        expected = reference(hr_db, pq.Q2)
        tree = apply_everywhere(SubqueryMergeUnnesting(hr_db.catalog), tree)
        semis = [i for i in tree.from_items if i.join_type == "SEMI"]
        assert len(semis) == 1
        # semijoin imposes the partial order: departments precede employees
        assert semis[0].required_predecessors() == {"d"}
        assert evaluate_tree(hr_db, tree) == expected


class TestQ4Q5Q6:
    def test_q4_to_q6(self, hr_db):
        tree = hr_db.parse(pq.Q4)
        expected = reference(hr_db, pq.Q4)
        tree = apply_everywhere(JoinElimination(hr_db.catalog), tree)
        assert len(tree.from_items) == 1
        assert tree.from_items[0].table_name == "employees"
        assert evaluate_tree(hr_db, tree) == expected

    def test_q5_to_q6(self, hr_db):
        tree = hr_db.parse(pq.Q5)
        expected = reference(hr_db, pq.Q5)
        tree = apply_everywhere(JoinElimination(hr_db.catalog), tree)
        assert len(tree.from_items) == 1
        assert evaluate_tree(hr_db, tree) == expected

    def test_q4_q5_same_rows(self, hr_db):
        # Q4 keeps only employees with a (non-null) department; Q5 keeps
        # all employees.  With nullable dept_id they differ.
        q4 = reference(hr_db, pq.Q4)
        q5 = reference(hr_db, pq.Q5)
        assert sum(q4.values()) <= sum(q5.values())


class TestQ7Q8:
    def test_partition_by_predicate_pushed(self, hr_db):
        result = hr_db.execute(pq.Q7)
        expected = reference(hr_db, pq.Q7)
        assert normalized(result.rows) == expected
        # the acct_id predicate reached the accounts scan: way fewer rows
        # processed than the full accounts table
        accounts_rows = hr_db.storage.get("accounts").row_count
        scanned = result.exec_stats.operator_rows.get("IndexScan", 0) + \
            result.exec_stats.operator_rows.get("TableScan", 0)
        assert scanned < accounts_rows


class TestQ12Family:
    """Q12 -> Q13 (JPPD, distinct removed, semijoin) vs Q18 (merge)."""

    def test_q13_shape(self, hr_db):
        tree = hr_db.parse(pq.Q12)
        expected = reference(hr_db, pq.Q12)
        jppd = JoinPredicatePushdown(hr_db.catalog)
        targets = jppd.find_targets(tree)
        assert len(targets) == 1
        tree = jppd.apply(tree, targets[0])
        item = next(i for i in tree.from_items if i.is_derived)
        assert item.join_type == "SEMI"       # paper: internally a semijoin
        assert not item.subquery.distinct     # distinct operator removed
        assert evaluate_tree(hr_db, tree) == expected

    def test_q18_shape(self, hr_db):
        tree = hr_db.parse(pq.Q12)
        expected = reference(hr_db, pq.Q12)
        merger = GroupByViewMerging(hr_db.catalog)
        targets = merger.find_targets(tree)
        assert len(targets) == 1
        tree = merger.apply(tree, targets[0])
        # distinct pulled up: outer block now groups (rowid-keyed)
        assert tree.group_by
        assert evaluate_tree(hr_db, tree) == expected

    def test_juxtaposition_explores_all_three(self, hr_db):
        optimized = hr_db.optimize(pq.Q12)
        decision = optimized.report.decision_for("groupby_merge")
        assert decision is not None
        assert decision.states_evaluated == 3  # Q12 vs Q13 vs Q18

    def test_q12_execution_matches(self, hr_db):
        expected = reference(hr_db, pq.Q12)
        assert normalized(hr_db.execute(pq.Q12).rows) == expected


class TestQ14Q15:
    def test_factorization_shape(self, hr_db):
        tree = hr_db.parse(pq.Q14)
        expected = reference(hr_db, pq.Q14)
        factorizer = JoinFactorization(hr_db.catalog)
        targets = factorizer.find_targets(tree)
        assert targets
        tree = factorizer.apply(tree, targets[0])
        assert isinstance(tree, QueryBlock)
        view = next(i for i in tree.from_items if i.is_derived)
        assert isinstance(view.subquery, SetOpBlock)
        assert evaluate_tree(hr_db, tree) == expected

    def test_q14_execution_matches(self, hr_db):
        expected = reference(hr_db, pq.Q14)
        assert normalized(hr_db.execute(pq.Q14).rows) == expected


class TestQ16Q17:
    @pytest.fixture()
    def db(self, hr_db):
        if "SLOW_CHECK" not in hr_db.functions:
            hr_db.register_function(
                "SLOW_CHECK", lambda x: None if x is None else int(x) % 2,
                expensive_cost=300.0,
            )
            hr_db.register_function(
                "SLOW_MATCH", lambda x: None if x is None else x % 3,
                expensive_cost=300.0,
            )
        return hr_db

    def test_pullup_decision_is_cost_based(self, db):
        optimized = db.optimize(pq.Q16)
        decision = optimized.report.decision_for("predicate_pullup")
        assert decision is not None
        assert decision.n_objects == 2  # two expensive predicates
        # 2 binary objects -> 4 states (paper: "three ways" + original)
        assert decision.states_evaluated == 4

    def test_q16_execution_matches(self, db):
        expected = reference(db, pq.Q16)
        assert normalized(db.execute(pq.Q16).rows) == expected


class TestSetOpAndOr:
    @pytest.mark.parametrize("sql_name", ["Q_MINUS", "Q_INTERSECT", "Q_OR"])
    def test_execution_matches(self, hr_db, sql_name):
        sql = getattr(pq, sql_name)
        expected = reference(hr_db, sql)
        assert normalized(hr_db.execute(sql).rows) == expected

    def test_minus_conversion_considered(self, hr_db):
        optimized = hr_db.optimize(pq.Q_MINUS)
        assert optimized.report.decision_for("setop_to_join") is not None

    def test_or_expansion_considered(self, hr_db):
        optimized = hr_db.optimize(pq.Q_OR)
        assert optimized.report.decision_for("or_expansion") is not None


class TestNullAwareAntijoin:
    def test_not_in_nullable_correct(self, hr_db):
        expected = reference(hr_db, pq.Q_NOT_IN_NULLABLE)
        got = Counter(hr_db.execute(pq.Q_NOT_IN_NULLABLE).rows)
        assert got == expected


class TestGroupByPlacement:
    def test_gbp_decision_exists(self, hr_db):
        optimized = hr_db.optimize(pq.Q_GBP)
        assert optimized.report.decision_for("groupby_placement") is not None

    def test_gbp_execution_matches(self, hr_db):
        expected = reference(hr_db, pq.Q_GBP)
        assert normalized(hr_db.execute(pq.Q_GBP).rows) == expected

    def test_gbp_never_applied_in_heuristic_mode(self, hr_db):
        result = hr_db.optimize(pq.Q_GBP, OptimizerConfig.heuristic_mode())
        assert result.report.decision_for("groupby_placement") is None


@pytest.mark.parametrize("name", sorted(pq.ALL_RUNNABLE))
def test_every_paper_query_correct_under_default_config(hr_db, name):
    sql = pq.ALL_RUNNABLE[name]
    if "SLOW_" in sql:
        pytest.skip("needs UDF registration (covered elsewhere)")
    expected = reference(hr_db, sql)
    assert normalized(hr_db.execute(sql).rows) == expected
