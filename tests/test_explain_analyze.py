"""EXPLAIN ANALYZE golden tests over the paper's example queries.

Acceptance criteria: EXPLAIN ANALYZE on every runnable paper query
reports estimated and actual rows with a Q-error for every operator;
``timing=False`` output is deterministic; the profiler fills invocation
and self-time accounting only when armed.
"""

from __future__ import annotations

import re

import pytest

from repro.obs import operator_profiles, qerror

from .paper_queries import ALL_RUNNABLE

OPERATOR_LINE = re.compile(
    r"est=(?P<est>\d+) actual=(?P<actual>\d+) q=(?P<q>[\d.]+) "
    r"invocations=(?P<inv>\d+)"
)


class TestQError:
    def test_symmetric(self):
        assert qerror(10, 100) == qerror(100, 10) == 10.0

    def test_exact_estimate_is_one(self):
        assert qerror(42, 42) == 1.0

    def test_floored_at_one_row(self):
        assert qerror(0, 0) == 1.0
        assert qerror(5, 0) == 5.0


class TestExplainAnalyze:
    @pytest.mark.parametrize("name", sorted(ALL_RUNNABLE))
    def test_every_operator_reports_est_actual_qerror(self, hr_db, name):
        text = hr_db.explain_analyze(ALL_RUNNABLE[name])
        lines = text.splitlines()
        operator_lines = [
            line for line in lines
            if not line.startswith("--") and line.strip()
        ]
        assert operator_lines, f"{name}: no operator lines rendered"
        for line in operator_lines:
            match = OPERATOR_LINE.search(line)
            assert match, f"{name}: operator line missing stats: {line!r}"
            est = int(match.group("est"))
            actual = int(match.group("actual"))
            q = float(match.group("q"))
            # est is rendered rounded; the true estimate lies anywhere in
            # [est - 0.5, est + 0.5], so bound q by the interval endpoints
            # (1.0 is reachable whenever actual falls inside the interval)
            endpoints = [
                qerror(est - 0.5, actual),
                qerror(est + 0.5, actual),
            ]
            low = (
                1.0
                if est - 0.5 <= actual <= est + 0.5
                else min(endpoints)
            )
            assert low - 0.01 <= q <= max(endpoints) + 0.01, (
                f"{name}: q={q} outside rounding bounds for "
                f"est={est} actual={actual}"
            )
        assert any(line.startswith("-- max q-error:") for line in lines)
        assert any(line.startswith("-- transformed:") for line in lines)

    @pytest.mark.parametrize("name", ["Q1", "Q12", "Q_GBP"])
    def test_untimed_output_is_deterministic(self, hr_db, name):
        sql = ALL_RUNNABLE[name]
        first = hr_db.explain_analyze(sql, timing=False)
        second = hr_db.explain_analyze(sql, timing=False)
        # generated names (vw$N, gbp$N, ...) come from a global counter
        # and so differ between optimizations; all else must be identical
        normalize = lambda text: re.sub(r"\$\d+", "$N", text)  # noqa: E731
        assert normalize(first) == normalize(second)
        assert "self=" not in first

    def test_timing_adds_self_time(self, hr_db):
        text = hr_db.explain_analyze(ALL_RUNNABLE["Q1"])
        assert "self=" in text
        assert "ms" in text

    def test_root_actual_matches_rows_out(self, hr_db):
        result = hr_db.execute(ALL_RUNNABLE["Q_GBP"], analyze=True)
        profiles = operator_profiles(result.plan, result.exec_stats)
        assert profiles[0]["actual"] == len(result.rows)
        assert f"-- actual rows out: {len(result.rows)}" in (
            result.explain_analyze()
        )

    def test_profiles_cover_whole_plan(self, hr_db):
        result = hr_db.execute(ALL_RUNNABLE["Q12"], analyze=True)
        profiles = operator_profiles(result.plan, result.exec_stats)
        assert len(profiles) == result.plan.total_operator_count()
        assert [p["plan"] for p in profiles] == list(result.plan.walk())

    def test_self_time_non_negative_and_filled(self, hr_db):
        result = hr_db.execute(ALL_RUNNABLE["Q1"], analyze=True)
        stats = result.exec_stats
        assert stats.node_seconds, "profiler armed but recorded no timings"
        assert stats.node_invocations
        for profile in operator_profiles(result.plan, stats):
            assert profile["self_seconds"] >= 0.0

    def test_parameterised_inner_counts_invocations(self, hr_db):
        # Q1's transformed plan (or any NLJ with a parameterised inner)
        # re-instantiates the inner generator per outer row; the profiler
        # must count each instantiation.
        result = hr_db.execute(ALL_RUNNABLE["Q1"], analyze=True)
        invocations = result.exec_stats.node_invocations
        assert max(invocations.values()) >= 1

    def test_profiler_off_fills_nothing(self, hr_db):
        result = hr_db.execute(ALL_RUNNABLE["Q1"])
        assert result.exec_stats.node_seconds == {}
        assert result.exec_stats.node_invocations == {}
