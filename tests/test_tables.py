"""Storage and index structure tests."""

import pytest

from repro.catalog import Catalog, Column, DataType, Index, TableDef
from repro.engine.tables import Storage
from repro.errors import ExecutionError


def make_storage():
    catalog = Catalog()
    table = catalog.add_table(TableDef(
        "t",
        [Column("id", DataType.INT, True), Column("a", DataType.INT),
         Column("b", DataType.INT)],
        primary_key=("id",),
    ))
    catalog.add_index(Index("t_ab", "t", ("a", "b")))
    storage = Storage()
    data = storage.create(table)
    return catalog, storage, data


class TestInsert:
    def test_basic_insert_and_count(self):
        _c, _s, data = make_storage()
        data.insert([{"id": 1, "a": 10, "b": 1}, {"id": 2, "a": 20, "b": 2}])
        assert data.row_count == 2

    def test_missing_columns_become_null(self):
        _c, _s, data = make_storage()
        data.insert([{"id": 1}])
        assert data.rows[0]["a"] is None

    def test_not_null_violation(self):
        _c, _s, data = make_storage()
        with pytest.raises(ExecutionError):
            data.insert([{"id": None, "a": 1}])

    def test_unknown_column_rejected(self):
        _c, _s, data = make_storage()
        with pytest.raises(ExecutionError):
            data.insert([{"id": 1, "zzz": 2}])

    def test_unique_index_violation(self):
        _c, _s, data = make_storage()
        data.insert([{"id": 1, "a": 1, "b": 1}])
        with pytest.raises(ExecutionError):
            data.insert([{"id": 1, "a": 2, "b": 2}])


class TestIndexScan:
    def test_eq_probe_full_key(self):
        _c, _s, data = make_storage()
        data.insert([{"id": i, "a": i % 3, "b": i % 2} for i in range(1, 13)])
        index = data.index_named("t_ab")
        hits = list(index.scan((1, 0)))
        assert all(data.rows[r]["a"] == 1 and data.rows[r]["b"] == 0 for r in hits)
        assert len(hits) == 2  # ids 4 and 10

    def test_prefix_probe(self):
        _c, _s, data = make_storage()
        data.insert([{"id": i, "a": i % 3, "b": i} for i in range(1, 10)])
        index = data.index_named("t_ab")
        hits = list(index.scan((2,)))
        assert sorted(data.rows[r]["a"] for r in hits) == [2, 2, 2]

    def test_prefix_plus_range(self):
        _c, _s, data = make_storage()
        data.insert([{"id": i, "a": 1, "b": i} for i in range(1, 8)])
        index = data.index_named("t_ab")
        hits = list(index.scan((1,), "<", 4))
        assert sorted(data.rows[r]["b"] for r in hits) == [1, 2, 3]
        hits = list(index.scan((1,), ">=", 6))
        assert sorted(data.rows[r]["b"] for r in hits) == [6, 7]

    def test_null_keys_not_indexed(self):
        _c, _s, data = make_storage()
        data.insert([{"id": 1, "a": None, "b": 1}, {"id": 2, "a": 5, "b": 1}])
        index = data.index_named("t_ab")
        assert list(index.scan((5, 1))) == [1]
        assert list(index.scan((None, 1))) == []

    def test_attach_index_backfills(self):
        catalog, storage, data = make_storage()
        data.insert([{"id": i, "a": i, "b": 0} for i in range(1, 6)])
        catalog.add_index(Index("t_b", "t", ("b",)))
        data.attach_index(catalog.indexes["t_b"])
        assert len(list(data.index_named("t_b").scan((0,)))) == 5

    def test_pk_index_created_automatically(self):
        _c, _s, data = make_storage()
        data.insert([{"id": 7, "a": 0, "b": 0}])
        assert list(data.index_named("t_pk").scan((7,))) == [0]


class TestStorage:
    def test_get_missing_raises(self):
        _c, storage, _d = make_storage()
        with pytest.raises(ExecutionError):
            storage.get("missing")

    def test_has(self):
        _c, storage, _d = make_storage()
        assert storage.has("t")
        assert not storage.has("u")
