"""The cross-statement subplan memo (:mod:`repro.optimizer.memo`).

Contract under test: the memo is a pure optimization-time win.  Plans
chosen with the memo on must be structurally identical to plans chosen
with it off (over a randomized workload, not just the paper corpus);
any catalog / statistics / costing-config change must invalidate every
entry before the next statement; an injected ``memo.lookup`` fault must
degrade the statement to memo-off — fresh work, never a wrong plan;
statements with peeked binds must skip the memo entirely.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import OptimizerConfig
from repro.optimizer.memo import PlanMemo
from repro.resilience import FaultSpec, inject
from repro.workload import (
    QueryGenerator,
    apps_database,
    register_workload_functions,
    structural_digest,
)

from .conftest import build_tiny_db

MEMO_ON = OptimizerConfig(plan_memo=True)
MEMO_OFF = OptimizerConfig(plan_memo=False)

# joins + an unnestable aggregate subquery: crosses both memo tiers
SQL = (
    "SELECT e.emp_id, d.department_name FROM employees e, departments d "
    "WHERE e.dept_id = d.dept_id AND e.salary > "
    "(SELECT AVG(j.start_date) FROM job_history j "
    "WHERE j.emp_id = e.emp_id)"
)


class _StubPlan:
    """Just enough Plan surface for PlanMemo unit tests."""

    def total_operator_count(self):
        return 3


class TestPlanMemoUnit:
    def test_same_fingerprint_keeps_entries_across_statements(self):
        memo = PlanMemo()
        session = memo.begin_statement(("v1",))
        session.put("sig", _StubPlan())
        assert len(memo) == 1
        again = memo.begin_statement(("v1",))
        assert again.get("sig") is not None
        assert memo.stats.invalidations == 0

    def test_fingerprint_mismatch_clears_and_counts_invalidation(self):
        memo = PlanMemo()
        memo.begin_statement(("v1",)).put("sig", _StubPlan())
        session = memo.begin_statement(("v2",))
        assert len(memo) == 0
        assert memo.stats.invalidations == 1
        assert session.get("sig") is None

    def test_disabled_or_peeked_statements_get_no_session(self):
        memo = PlanMemo(enabled=False)
        assert memo.begin_statement(("v1",)) is None
        peeking = PlanMemo()
        assert peeking.begin_statement(("v1",), peeked=True) is None
        assert memo.stats.disabled_statements == 1
        assert peeking.stats.disabled_statements == 1

    def test_join_tier_is_separate_from_node_tier(self):
        memo = PlanMemo()
        session = memo.begin_statement(("v1",))
        session.put("key", _StubPlan())
        assert session.join_get("key") is None
        session.join_put("key", _StubPlan())
        assert len(memo) == 2

    def test_snapshot_accounts_hits_and_share_depth(self):
        memo = PlanMemo()
        session = memo.begin_statement(("v1",))
        session.put("sig", _StubPlan())
        assert session.get("sig") is not None
        assert session.get("other") is None
        snap = memo.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["stores"] == 1
        assert snap["hit_rate"] == pytest.approx(0.5)
        assert snap["shared_operators"] == 3
        assert snap["max_share_depth"] == 3

    def test_explicit_invalidate_drops_everything(self):
        memo = PlanMemo()
        memo.begin_statement(("v1",)).put("sig", _StubPlan())
        memo.invalidate()
        assert len(memo) == 0
        assert memo.stats.invalidations == 1

    def test_env_knob_disables_by_default_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMO", "0")
        assert OptimizerConfig().plan_memo is False
        monkeypatch.setenv("REPRO_MEMO", "1")
        assert OptimizerConfig().plan_memo is True


class TestMemoReuse:
    def test_second_parse_hits_and_skips_enumerations(self, tiny_db):
        first = tiny_db.optimize(SQL, MEMO_ON)
        second = tiny_db.optimize(SQL, MEMO_ON)
        assert second.report.memo_hits + second.report.memo_join_hits > 0
        assert second.report.join_enumerations < first.report.join_enumerations

    def test_memo_off_reports_no_hits(self, tiny_db):
        tiny_db.optimize(SQL, MEMO_OFF)
        report = tiny_db.optimize(SQL, MEMO_OFF).report
        assert report.memo_hits == 0
        assert report.memo_join_hits == 0

    def test_metrics_expose_hit_rate_and_counter(self, tiny_db):
        tiny_db.optimize(SQL, MEMO_ON)
        tiny_db.optimize(SQL, MEMO_ON)
        snap = tiny_db.metrics.snapshot()
        assert snap["plan_memo"]["hit_rate"] > 0.0
        assert snap["counters"]["optimizer.memo_hits"] > 0

    def test_peeked_binds_skip_the_memo(self):
        db = build_tiny_db()
        before = db.plan_memo.stats.disabled_statements
        db.optimize(
            "SELECT e.emp_id FROM employees e WHERE e.salary > :floor",
            MEMO_ON,
            binds={"floor": 40},
        )
        assert db.plan_memo.stats.disabled_statements == before + 1
        assert len(db.plan_memo) == 0

    def test_unpeeked_binds_still_use_the_memo(self):
        db = build_tiny_db()
        db.optimize(
            "SELECT e.emp_id FROM employees e WHERE e.salary > :floor",
            MEMO_ON,
        )
        assert len(db.plan_memo) > 0


class TestInvalidation:
    def warm(self, db):
        """Optimize twice; the second run must prove cross-statement
        reuse (fewer fresh enumerations).  Returns (warm enumeration
        count, invalidations so far)."""
        cold = db.optimize(SQL, MEMO_ON).report.join_enumerations
        warm = db.optimize(SQL, MEMO_ON).report.join_enumerations
        assert warm < cold
        assert len(db.plan_memo) > 0
        return warm, db.plan_memo.stats.invalidations

    def assert_cold(self, db, warm_enums, invalidations_before):
        """The next statement must have lost the cross-statement savings
        (the memo was cleared; intra-statement sharing may remain)."""
        report = db.optimize(SQL, MEMO_ON).report
        assert db.plan_memo.stats.invalidations == invalidations_before + 1
        assert report.join_enumerations > warm_enums

    def test_analyze_invalidates(self):
        db = build_tiny_db()
        warm_enums, before = self.warm(db)
        db.analyze()
        self.assert_cold(db, warm_enums, before)

    def test_ddl_invalidates(self):
        db = build_tiny_db()
        warm_enums, before = self.warm(db)
        db.execute_ddl("CREATE INDEX memo_inv_ix ON employees (salary)")
        self.assert_cold(db, warm_enums, before)

    def test_insert_invalidates(self):
        db = build_tiny_db()
        _warm_enums, before = self.warm(db)
        db.insert("employees", [{
            "emp_id": 9001, "dept_id": 1, "salary": 50,
            "employee_name": 9001, "mgr_id": None,
        }])
        # the changed statistics may change the chosen plan shape, so
        # enumeration counts are not comparable — but the populated memo
        # must have been cleared (that is what bumps the counter)
        db.optimize(SQL, MEMO_ON)
        assert db.plan_memo.stats.invalidations == before + 1

    def test_costing_config_change_invalidates(self):
        db = build_tiny_db()
        _warm_enums, before = self.warm(db)
        db.optimize(SQL, OptimizerConfig(dp_threshold=2))
        assert db.plan_memo.stats.invalidations == before + 1


class TestMemoChaos:
    def test_lookup_fault_degrades_to_fresh_work_not_wrong_plan(self):
        clean = build_tiny_db()
        expected_rows = Counter(clean.reference_execute(SQL))
        expected_digest = structural_digest(clean.optimize(SQL, MEMO_OFF).plan)

        db = build_tiny_db()
        with inject(FaultSpec("memo.lookup", at=1, repeat=True)):
            result = db.execute(SQL, MEMO_ON)
        assert Counter(result.rows) == expected_rows
        assert structural_digest(result.plan) == expected_digest
        assert db.plan_memo.stats.faults >= 1

    def test_degradation_is_per_statement(self):
        db = build_tiny_db()
        with inject(FaultSpec("memo.lookup", at=1)):
            db.optimize(SQL, MEMO_ON)
        faults_after = db.plan_memo.stats.faults
        assert faults_after == 1
        # the next statements open a fresh session: memo works again
        db.optimize(SQL, MEMO_ON)
        report = db.optimize(SQL, MEMO_ON).report
        assert report.memo_hits + report.memo_join_hits > 0
        assert db.plan_memo.stats.faults == faults_after


class TestMemoDifferential:
    @pytest.fixture(scope="class")
    def workload(self):
        db, schema = apps_database(
            seed=11,
            modules=("hr", "fin"),
            masters_per_module=1,
            details_per_module=2,
            histories_per_module=1,
            detail_rows=200,
            history_rows=400,
        )
        register_workload_functions(db)
        queries = QueryGenerator(schema, seed=77).generate(24)
        return db, queries

    def test_randomized_suite_chooses_identical_plans(self, workload):
        db, queries = workload
        for query in queries:
            off = structural_digest(db.optimize(query.sql, MEMO_OFF).plan)
            cold = structural_digest(db.optimize(query.sql, MEMO_ON).plan)
            warm = structural_digest(db.optimize(query.sql, MEMO_ON).plan)
            assert off == cold, query.name
            assert off == warm, query.name

    def test_randomized_suite_returns_identical_rows(self, workload):
        db, queries = workload
        for query in queries[:6]:
            off = Counter(db.execute(query.sql, MEMO_OFF).rows)
            on = Counter(db.execute(query.sql, MEMO_ON).rows)
            assert off == on, query.name

    def test_shared_suite_run_populates_memo(self, workload):
        db, _queries = workload
        snap = db.plan_memo.snapshot()
        assert snap["hits"] + snap["join_hits"] > 0
        assert snap["entries"] > 0
