"""The search governor: budgeted, deadline-bounded CBQT search.

Unit tests of the admit() contract plus end-to-end proofs that an
exhausted governor degrades plan quality but never correctness: the
statement still runs and returns the same rows as reference.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import Database, OptimizerConfig, ResilienceConfig, SearchGovernor
from repro.errors import StatementCancelled, StatementTimeout
from repro.resilience import CancelToken

from .conftest import build_tiny_db

# a correlated aggregate subquery: drives the cost-based state-space
# search (unnest/merge/jppd alternatives), so cost_fn — and therefore the
# governor — is actually exercised
SQL = (
    "SELECT e.emp_id FROM employees e "
    "WHERE e.salary > (SELECT AVG(j.start_date) FROM job_history j "
    "WHERE j.emp_id = e.emp_id)"
)


class TestAdmitContract:
    def test_state_budget_exhaustion(self):
        governor = SearchGovernor(max_cost_estimations=2)
        assert governor.admit() is True
        assert governor.admit() is True
        assert governor.admit() is False
        assert governor.exhausted == "state budget"
        # stays exhausted: the search drains instead of flapping
        assert governor.admit() is False
        assert governor.cost_estimations == 2

    def test_deadline_exhaustion(self):
        governor = SearchGovernor(deadline_seconds=0.0)
        assert governor.admit() is False
        assert governor.exhausted == "deadline"

    def test_unbounded_always_admits(self):
        governor = SearchGovernor()
        assert all(governor.admit() for _ in range(100))
        assert governor.exhausted is None

    def test_cancelled_token_aborts_not_degrades(self):
        token = CancelToken()
        token.cancel()
        governor = SearchGovernor(max_cost_estimations=10, token=token)
        with pytest.raises(StatementCancelled):
            governor.admit()

    def test_expired_token_aborts_not_degrades(self):
        token = CancelToken(timeout=0.0)
        governor = SearchGovernor(token=token)
        with pytest.raises(StatementTimeout):
            governor.admit()

    def test_stats_describe(self):
        governor = SearchGovernor(max_cost_estimations=1)
        governor.admit()
        governor.admit()
        stats = governor.stats()
        assert stats.cost_estimations == 1
        assert stats.exhausted == "state budget"
        assert "best-so-far" in stats.describe()


class TestGovernedOptimization:
    @pytest.fixture(scope="class")
    def db(self) -> Database:
        return build_tiny_db()

    def _governed(self, **knobs) -> OptimizerConfig:
        return OptimizerConfig(resilience=ResilienceConfig(**knobs))

    def test_state_budget_returns_best_so_far(self, db):
        expected = Counter(db.reference_execute(SQL))
        result = db.execute(SQL, self._governed(governor_max_states=1))
        assert Counter(result.rows) == expected
        governor = result.report.governor
        assert governor is not None
        assert governor.exhausted == "state budget"

    def test_zero_deadline_still_plans(self, db):
        expected = Counter(db.reference_execute(SQL))
        result = db.execute(SQL, self._governed(governor_deadline=0.0))
        assert Counter(result.rows) == expected
        assert result.report.governor.exhausted == "deadline"

    def test_generous_budget_within_limits(self, db):
        result = db.execute(SQL, self._governed(governor_max_states=100_000))
        assert result.report.governor is not None
        assert result.report.governor.exhausted is None

    def test_exhaustion_surfaces_in_explain(self, db):
        optimized = db.optimize(SQL, self._governed(governor_max_states=1))
        assert "-- governor:" in optimized.explain()
        # within budget -> no governor noise in explain
        quiet = db.optimize(SQL, self._governed(governor_max_states=100_000))
        assert "-- governor:" not in quiet.explain()

    def test_ungoverned_path_builds_no_governor(self, db):
        before = SearchGovernor.created
        db.optimize(SQL, OptimizerConfig())
        assert SearchGovernor.created == before

    def test_governed_matches_ungoverned_rows(self, db):
        free = db.execute(SQL, OptimizerConfig())
        capped = db.execute(SQL, self._governed(governor_max_states=3))
        assert Counter(capped.rows) == Counter(free.rows)
