"""Database-level durability integration: the commit protocol under
fault injection, atomic DDL (the rollback regression), and the
zero-cost guarantee for in-memory databases.

The invariant every fault test asserts from both sides: an
*unacknowledged* commit (the call raised) is visible neither in memory
nor after recovery; an *acknowledged* commit (the call returned)
survives both.
"""

from __future__ import annotations

import os

import pytest

from repro import Database, DurabilityConfig, FaultSpec, inject
from repro.durability import WriteAheadLog, read_wal, state_digest
from repro.errors import CatalogError, DurabilityError, FaultInjected


def _open(tmp_path, fsync: str = "off") -> Database:
    return Database(
        data_dir=str(tmp_path / "data"),
        durability=DurabilityConfig(fsync=fsync),
    )


def _seeded(db: Database) -> Database:
    db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    db.insert("t", [{"id": i, "v": i % 3} for i in range(20)])
    return db


class TestConfiguration:
    def test_durability_config_requires_data_dir(self):
        with pytest.raises(DurabilityError, match="data_dir"):
            Database(durability=DurabilityConfig())

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(DurabilityError, match="fsync policy"):
            Database(
                data_dir=str(tmp_path / "data"),
                durability=DurabilityConfig(fsync="mostly"),
            )

    def test_in_memory_database_never_touches_the_wal(self):
        """Structural zero-cost check: a full in-memory workload leaves
        the process-wide WAL counters untouched."""
        before = WriteAheadLog.records_appended_total
        db = _seeded(Database())
        db.analyze()
        assert db.durability is None and db.recovery is None
        assert WriteAheadLog.records_appended_total == before

    def test_checkpoint_requires_data_dir(self):
        with pytest.raises(DurabilityError, match="data_dir"):
            Database().checkpoint()

    def test_close_is_idempotent(self, tmp_path):
        db = _open(tmp_path)
        db.close()
        db.close()
        Database().close()  # in-memory close is a no-op


class TestAtomicDdl:
    """Satellite regression: a failed CREATE must leave no catalog or
    storage residue — before this PR the catalog entry leaked."""

    def test_in_memory_create_table_rolls_back_catalog(self, monkeypatch):
        db = Database()
        real_create = db.storage.create

        def explode(table):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(db.storage, "create", explode)
        with pytest.raises(RuntimeError):
            db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY)")
        assert not db.catalog.has_table("t")
        monkeypatch.setattr(db.storage, "create", real_create)
        db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY)")  # now clean
        assert db.catalog.has_table("t")

    def test_durable_create_table_rolls_back_on_wal_fault(self, tmp_path):
        db = _open(tmp_path)
        with inject(FaultSpec(point="wal.append", at=1)):
            with pytest.raises(FaultInjected):
                db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY)")
        assert not db.catalog.has_table("t")
        assert not db.storage.has("t")
        db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY)")
        db.close()
        db2 = _open(tmp_path)
        assert db2.catalog.has_table("t")
        assert db2.recovery.wal_records_applied == 1
        db2.close()

    def test_durable_create_index_rolls_back_on_wal_fault(self, tmp_path):
        db = _seeded(_open(tmp_path))
        before = state_digest(db)
        with inject(FaultSpec(point="wal.append", at=1)):
            with pytest.raises(FaultInjected):
                db.execute_ddl("CREATE INDEX t_v ON t (v)")
        assert "t_v" not in db.catalog.indexes
        assert state_digest(db) == before
        db.execute_ddl("CREATE INDEX t_v ON t (v)")
        db.close()
        db2 = _open(tmp_path)
        assert "t_v" in db2.catalog.indexes
        db2.close()

    def test_duplicate_table_still_refused(self, tmp_path):
        db = _seeded(_open(tmp_path))
        with pytest.raises(CatalogError):
            db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY)")
        db.close()
        # the failed DDL logged nothing: replay sees exactly 2 records
        db2 = _open(tmp_path)
        assert db2.recovery.wal_records_applied == 2
        db2.close()


class TestCommitFaults:
    def test_insert_rolls_back_on_wal_fault(self, tmp_path):
        db = _seeded(_open(tmp_path))
        before = state_digest(db)
        with inject(FaultSpec(point="wal.append", at=1)):
            with pytest.raises(FaultInjected):
                db.insert("t", [{"id": 100, "v": 1}, {"id": 101, "v": 2}])
        assert state_digest(db) == before  # no partial batch visible
        assert db.storage.get("t").row_count == 20
        db.insert("t", [{"id": 100, "v": 1}])  # WAL stays healthy
        db.close()
        db2 = _open(tmp_path)
        assert db2.storage.get("t").row_count == 21
        db2.close()

    def test_insert_rolls_back_on_fsync_fault(self, tmp_path):
        db = _seeded(_open(tmp_path, fsync="always"))
        with inject(FaultSpec(point="wal.fsync", at=1)):
            with pytest.raises(FaultInjected):
                db.insert("t", [{"id": 100, "v": 1}])
        assert db.storage.get("t").row_count == 20
        db.close()
        db2 = _open(tmp_path, fsync="always")
        assert db2.storage.get("t").row_count == 20
        db2.close()

    def test_torn_tail_crash_loses_only_the_unacked_commit(self, tmp_path):
        db = _seeded(_open(tmp_path))
        before = state_digest(db)
        with inject(FaultSpec(point="wal.torn_tail", at=1)):
            with pytest.raises(FaultInjected):
                db.insert("t", [{"id": 100, "v": 1}])
        # the handle is poisoned: this process can no longer commit
        with pytest.raises(DurabilityError, match="poisoned"):
            db.insert("t", [{"id": 101, "v": 1}])
        db.close()
        # ... but recovery truncates the torn record and carries on
        db2 = _open(tmp_path)
        assert db2.recovery.torn_bytes_dropped > 0
        assert state_digest(db2) == before
        db2.insert("t", [{"id": 100, "v": 1}])
        db2.close()

    def test_analyze_failure_logs_nothing(self, tmp_path):
        from repro.errors import ReproError

        db = _seeded(_open(tmp_path))
        wal_path = db.durability.wal_path
        records_before = len(read_wal(wal_path).records)
        with pytest.raises(ReproError):
            db.analyze("missing_table")
        assert len(read_wal(wal_path).records) == records_before
        db.close()

    def test_checkpoint_write_fault_preserves_wal(self, tmp_path):
        db = _seeded(_open(tmp_path))
        wal_path = db.durability.wal_path
        wal_size = os.path.getsize(wal_path)
        with inject(FaultSpec(point="checkpoint.write", at=1)):
            with pytest.raises(FaultInjected):
                db.checkpoint()
        # checkpoint failed before writing: WAL untouched, no snapshot
        assert os.path.getsize(wal_path) == wal_size
        assert not os.path.exists(db.durability.checkpoint_path)
        before = state_digest(db)
        db.checkpoint()  # retry succeeds
        db.close()
        db2 = _open(tmp_path)
        assert state_digest(db2) == before
        db2.close()

    def test_commit_after_close_refused(self, tmp_path):
        db = _seeded(_open(tmp_path))
        db.close()
        with pytest.raises(DurabilityError, match="closed"):
            db.insert("t", [{"id": 100, "v": 1}])


class TestMetricsIntegration:
    def test_durability_collector_registered(self, tmp_path):
        db = _seeded(_open(tmp_path, fsync="always"))
        snapshot = db.snapshot()
        stats = snapshot["durability"]
        assert stats["lsn"] == 2
        assert stats["wal_records"] == 2
        assert stats["fsync"] == "always"
        assert stats["wal_fsyncs"] >= 2
        counters = snapshot["counters"]
        assert counters.get("durability.wal_records") == 2
        db.checkpoint()
        assert db.snapshot()["counters"].get("durability.checkpoints") == 1
        db.close()
