"""Randomized differential testing under paranoid mode.

Generates small random queries (the workload generator's class mix,
biased hard toward the constructs the transformations rewrite), runs
each with all transformations enabled and with all of them disabled —
both under ``debug_checks`` so every intermediate tree and every CBQT
search state passes the sanitizer — and compares both result multisets
against the naive reference evaluator (``engine/reference.py``).

Any miscompare is a transformation changing query semantics; any
VerificationError is a transformation corrupting the IR; both surface
here with the transformation name attached.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import OptimizerConfig
from repro.transform.pipeline import COST_BASED_ORDER, HEURISTIC_ORDER
from repro.workload import apps_database
from repro.workload.querygen import MixWeights, QueryGenerator
from repro.workload.runner import register_workload_functions

ALL_TRANSFORMATIONS = tuple(
    cls.name for cls in HEURISTIC_ORDER + COST_BASED_ORDER
)

#: every class the generator knows, weighted toward transformation food
STRESS_WEIGHTS = MixWeights(
    spj=0.25,
    exists=0.08, not_exists=0.08, in_multi=0.08, not_in=0.08,
    agg_subquery=0.09, groupby_view=0.08, distinct_view=0.06,
    gbp=0.08, union_all=0.05, setop=0.03, or_pred=0.02,
    rownum_pullup=0.02,
)

N_QUERIES = 24


@pytest.fixture(scope="module")
def apps():
    db, schema = apps_database(
        seed=11,
        modules=("hr", "fin"),
        master_rows=30,
        detail_rows=220,
        history_rows=400,
    )
    register_workload_functions(db, cost=50.0)
    db.analyze()
    return db, schema


@pytest.fixture(scope="module")
def generated(apps):
    _db, schema = apps
    generator = QueryGenerator(schema, seed=523, weights=STRESS_WEIGHTS)
    return generator.generate(N_QUERIES)


def _configs() -> dict[str, OptimizerConfig]:
    return {
        "transforms-on": OptimizerConfig(),
        "transforms-off": OptimizerConfig().without(*ALL_TRANSFORMATIONS),
        "heuristic-mode": OptimizerConfig.heuristic_mode(),
    }


class TestDifferential:
    def test_paranoid_default_active(self, apps):
        # conftest exports REPRO_DEBUG_CHECKS=1; every optimization in
        # this module must actually run under the sanitizer
        assert OptimizerConfig().cbqt.debug_checks is True

    @pytest.mark.parametrize("config_name", list(_configs()))
    def test_random_queries_match_reference(
        self, apps, generated, config_name
    ):
        db, _schema = apps
        config = _configs()[config_name]
        mismatches = []
        for query in generated:
            expected = Counter(db.reference_execute(query.sql))
            # VerificationError propagates with the transformation blamed
            actual = Counter(db.execute(query.sql, config).rows)
            if actual != expected:
                mismatches.append(
                    f"{query.name} [{query.query_class}]: "
                    f"{sum(actual.values())} rows vs reference "
                    f"{sum(expected.values())}"
                )
        assert not mismatches, "\n".join(mismatches)

    def test_rowcounts_agree_between_modes(self, apps, generated):
        # transforms on vs off must agree with each other too (they both
        # matched the reference above; this pins the multisets directly)
        db, _schema = apps
        on, off = _configs()["transforms-on"], _configs()["transforms-off"]
        for query in generated[: N_QUERIES // 2]:
            rows_on = Counter(db.execute(query.sql, on).rows)
            rows_off = Counter(db.execute(query.sql, off).rows)
            assert rows_on == rows_off, query.name

    @pytest.mark.parametrize("executor", ["row", "vector", "parallel"])
    def test_random_queries_match_reference_per_executor(
        self, apps, generated, executor
    ):
        # the same random battery through each execution engine; any
        # miscompare is the batch engine (or its morsel scheduling)
        # changing semantics relative to the reference evaluator
        db, _schema = apps
        mismatches = []
        for query in generated:
            expected = Counter(db.reference_execute(query.sql))
            actual = Counter(db.execute(query.sql, executor=executor).rows)
            if actual != expected:
                mismatches.append(
                    f"{query.name} [{query.query_class}] via {executor}: "
                    f"{sum(actual.values())} rows vs reference "
                    f"{sum(expected.values())}"
                )
        assert not mismatches, "\n".join(mismatches)
