"""Cost-based transformation tests: unnest-to-view, group-by view
merging, JPPD, group-by placement, join factorization, predicate pullup,
set-op conversion, OR expansion."""

from collections import Counter

import pytest

from repro.errors import TransformError
from repro.qtree.blocks import QueryBlock, SetOpBlock
from repro.transform.costbased import (
    GroupByPlacement,
    GroupByViewMerging,
    JoinFactorization,
    JoinPredicatePushdown,
    OrExpansion,
    PredicatePullup,
    SetOpIntoJoin,
    UnnestSubqueryToView,
)


def apply_all(db, sql, transformation_cls, expect_targets=True):
    tree = db.parse(sql)
    transformation = transformation_cls(db.catalog)
    targets = transformation.find_targets(tree)
    if expect_targets:
        assert targets, f"{transformation.name} found no targets"
    while targets:
        tree = transformation.apply(tree, targets[0])
        targets = transformation.find_targets(tree)
    return tree


def assert_equivalent(db, sql, tree):
    from repro.engine.reference import ReferenceEvaluator

    expected = Counter(db.reference_execute(sql))
    evaluator = ReferenceEvaluator(db.storage, db.functions)
    assert Counter(evaluator.evaluate(tree)) == expected


class TestUnnestToView:
    AGG_SQL = (
        "SELECT e.emp_id FROM employees e WHERE e.salary > "
        "(SELECT AVG(e2.salary) FROM employees e2 "
        "WHERE e2.dept_id = e.dept_id)"
    )

    def test_aggregate_subquery_becomes_groupby_view(self, tiny_db):
        tree = apply_all(tiny_db, self.AGG_SQL, UnnestSubqueryToView)
        views = [i for i in tree.from_items if i.is_derived]
        assert len(views) == 1
        view = views[0].subquery
        assert view.group_by
        assert view.has_aggregates
        assert not tree.subquery_exprs()
        assert_equivalent(tiny_db, self.AGG_SQL, tree)

    def test_count_subquery_not_unnested(self, tiny_db):
        # the count bug: COUNT over an empty group must stay TIS
        sql = (
            "SELECT e.emp_id FROM employees e WHERE 2 > "
            "(SELECT COUNT(j.emp_id) FROM job_history j "
            "WHERE j.emp_id = e.emp_id)"
        )
        transformation = UnnestSubqueryToView(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))

    def test_uncorrelated_scalar_not_unnested(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.salary > "
            "(SELECT AVG(e2.salary) FROM employees e2)"
        )
        transformation = UnnestSubqueryToView(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))

    def test_multi_table_in_becomes_semijoined_view(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.dept_id IN "
            "(SELECT d.dept_id FROM departments d, locations l "
            "WHERE d.loc_id = l.loc_id AND l.country_id = 1)"
        )
        tree = apply_all(tiny_db, sql, UnnestSubqueryToView)
        semi_views = [
            i for i in tree.from_items
            if i.is_derived and i.join_type == "SEMI"
        ]
        assert len(semi_views) == 1
        assert_equivalent(tiny_db, sql, tree)

    def test_not_in_nullable_becomes_null_aware_antijoin(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.dept_id NOT IN "
            "(SELECT j.dept_id FROM job_history j WHERE j.job_title > 3)"
        )
        tree = apply_all(tiny_db, sql, UnnestSubqueryToView)
        items = [i for i in tree.from_items if i.join_type == "ANTI_NA"]
        assert len(items) == 1
        # the local predicate stays inside the view, not in the join
        view = items[0].subquery
        assert view.where_conjuncts
        assert_equivalent(tiny_db, sql, tree)

    def test_correlated_not_in_keeps_correlation_in_view(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.mgr_id NOT IN "
            "(SELECT j.job_title FROM job_history j WHERE j.emp_id = e.emp_id)"
        )
        tree = apply_all(tiny_db, sql, UnnestSubqueryToView)
        item = next(i for i in tree.from_items if i.join_type == "ANTI_NA")
        assert item.subquery.is_correlated
        assert_equivalent(tiny_db, sql, tree)


class TestGroupByViewMerging:
    SQL = (
        "SELECT e.emp_id, v.avg_sal FROM employees e, "
        "(SELECT e2.dept_id AS d, AVG(e2.salary) AS avg_sal "
        "FROM employees e2 GROUP BY e2.dept_id) v "
        "WHERE e.dept_id = v.d AND e.salary > 40"
    )

    def test_merge_produces_grouped_outer(self, tiny_db):
        tree = apply_all(tiny_db, self.SQL, GroupByViewMerging)
        assert all(i.is_base_table for i in tree.from_items)
        assert tree.group_by
        # rowid of the preserved outer table appears in the grouping
        assert any(
            getattr(g, "name", None) == "rowid" for g in tree.group_by
        )
        assert_equivalent(tiny_db, self.SQL, tree)

    def test_filter_on_aggregate_moves_to_having(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e, "
            "(SELECT e2.dept_id AS d, AVG(e2.salary) AS avg_sal "
            "FROM employees e2 GROUP BY e2.dept_id) v "
            "WHERE e.dept_id = v.d AND e.salary > v.avg_sal"
        )
        tree = apply_all(tiny_db, sql, GroupByViewMerging)
        assert tree.having_conjuncts
        assert_equivalent(tiny_db, sql, tree)

    def test_distinct_view_merges(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e, "
            "(SELECT DISTINCT j.dept_id AS k FROM job_history j) v "
            "WHERE e.dept_id = v.k"
        )
        tree = apply_all(tiny_db, sql, GroupByViewMerging)
        assert tree.group_by
        assert_equivalent(tiny_db, sql, tree)

    def test_grouped_outer_not_merged(self, tiny_db):
        sql = (
            "SELECT COUNT(*) FROM employees e, "
            "(SELECT e2.dept_id AS d, AVG(e2.salary) AS a "
            "FROM employees e2 GROUP BY e2.dept_id) v "
            "WHERE e.dept_id = v.d"
        )
        transformation = GroupByViewMerging(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))

    def test_outer_joined_view_not_merged(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e LEFT OUTER JOIN "
            "(SELECT e2.dept_id AS d, AVG(e2.salary) AS a "
            "FROM employees e2 GROUP BY e2.dept_id) v ON e.dept_id = v.d"
        )
        transformation = GroupByViewMerging(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))


class TestJppd:
    SQL = (
        "SELECT e.emp_id FROM employees e, "
        "(SELECT DISTINCT j.dept_id AS k FROM job_history j "
        "WHERE j.job_title > 2) v "
        "WHERE e.dept_id = v.k AND e.salary > 50"
    )

    def test_pushdown_makes_view_lateral_semijoin(self, tiny_db):
        tree = apply_all(tiny_db, self.SQL, JoinPredicatePushdown)
        item = next(i for i in tree.from_items if i.is_derived)
        # distinct removed, inner join became semijoin (outputs unused)
        assert item.join_type == "SEMI"
        assert not item.subquery.distinct
        assert item.subquery.is_correlated
        assert_equivalent(tiny_db, self.SQL, tree)

    def test_groupby_view_keeps_aggregation(self, tiny_db):
        sql = (
            "SELECT e.emp_id, v.a FROM employees e, "
            "(SELECT e2.dept_id AS d, AVG(e2.salary) AS a "
            "FROM employees e2 GROUP BY e2.dept_id) v "
            "WHERE e.dept_id = v.d"
        )
        tree = apply_all(tiny_db, sql, JoinPredicatePushdown)
        item = next(i for i in tree.from_items if i.is_derived)
        assert item.subquery.group_by  # kept: aggregate output referenced
        assert_equivalent(tiny_db, sql, tree)

    def test_union_all_view_pushdown(self, tiny_db):
        sql = (
            "SELECT e.emp_id, v.k FROM employees e, "
            "(SELECT d.dept_id AS k FROM departments d UNION ALL "
            "SELECT j.dept_id AS k FROM job_history j) v "
            "WHERE e.dept_id = v.k AND e.salary > 70"
        )
        tree = apply_all(tiny_db, sql, JoinPredicatePushdown)
        item = next(i for i in tree.from_items if i.is_derived)
        assert isinstance(item.subquery, SetOpBlock)
        assert all(b.where_conjuncts for b in item.subquery.branches)
        assert_equivalent(tiny_db, sql, tree)

    def test_pushdown_on_aggregate_output_refused(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e, "
            "(SELECT AVG(e2.salary) AS a FROM employees e2 "
            "GROUP BY e2.dept_id) v WHERE e.salary = v.a"
        )
        transformation = JoinPredicatePushdown(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))


class TestGroupByPlacement:
    SQL = (
        "SELECT d.loc_id, SUM(e.salary), COUNT(e.salary) "
        "FROM departments d, employees e "
        "WHERE e.dept_id = d.dept_id GROUP BY d.loc_id"
    )

    def test_eager_aggregation_creates_view(self, tiny_db):
        tree = apply_all(tiny_db, self.SQL, GroupByPlacement)
        views = [i for i in tree.from_items if i.is_derived]
        assert len(views) == 1
        inner = views[0].subquery
        assert inner.group_by
        assert_equivalent(tiny_db, self.SQL, tree)

    def test_avg_decomposes_into_sum_count(self, tiny_db):
        sql = (
            "SELECT d.loc_id, AVG(e.salary) FROM departments d, employees e "
            "WHERE e.dept_id = d.dept_id GROUP BY d.loc_id"
        )
        tree = apply_all(tiny_db, sql, GroupByPlacement)
        assert_equivalent(tiny_db, sql, tree)

    def test_count_star_composes(self, tiny_db):
        sql = (
            "SELECT d.loc_id, COUNT(*) FROM departments d, employees e "
            "WHERE e.dept_id = d.dept_id GROUP BY d.loc_id"
        )
        tree = apply_all(tiny_db, sql, GroupByPlacement)
        assert_equivalent(tiny_db, sql, tree)

    def test_distinct_aggregate_refused(self, tiny_db):
        sql = (
            "SELECT d.loc_id, COUNT(DISTINCT e.salary) FROM departments d, "
            "employees e WHERE e.dept_id = d.dept_id GROUP BY d.loc_id"
        )
        transformation = GroupByPlacement(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))

    def test_aggregates_from_two_tables_refused(self, tiny_db):
        sql = (
            "SELECT d.loc_id, SUM(e.salary), SUM(d.department_name) "
            "FROM departments d, employees e "
            "WHERE e.dept_id = d.dept_id GROUP BY d.loc_id"
        )
        transformation = GroupByPlacement(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))


class TestJoinFactorization:
    SQL = (
        "SELECT d.dept_id, e.salary FROM departments d, employees e "
        "WHERE e.dept_id = d.dept_id AND e.salary > 70 "
        "UNION ALL "
        "SELECT d.dept_id, j.job_title FROM departments d, job_history j "
        "WHERE j.dept_id = d.dept_id AND j.start_date > 90"
    )

    def test_common_table_pulled_out(self, tiny_db):
        tree = apply_all(tiny_db, self.SQL, JoinFactorization)
        assert isinstance(tree, QueryBlock)
        base = [i for i in tree.from_items if i.is_base_table]
        assert base and base[0].table_name == "departments"
        view = next(i for i in tree.from_items if i.is_derived)
        assert isinstance(view.subquery, SetOpBlock)
        # departments no longer inside the branches
        for branch in view.subquery.branches:
            assert all(
                i.table_name != "departments" for i in branch.from_items
            )
        assert_equivalent(tiny_db, self.SQL, tree)

    def test_no_common_table_no_target(self, tiny_db):
        sql = (
            "SELECT dept_id FROM departments UNION ALL "
            "SELECT dept_id FROM job_history"
        )
        transformation = JoinFactorization(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))

    def test_different_local_predicates_block_factoring(self, tiny_db):
        sql = (
            "SELECT d.dept_id FROM departments d, employees e "
            "WHERE e.dept_id = d.dept_id AND d.loc_id = 1 "
            "UNION ALL "
            "SELECT d.dept_id FROM departments d, job_history j "
            "WHERE j.dept_id = d.dept_id AND d.loc_id = 2"
        )
        tree = tiny_db.parse(sql)
        transformation = JoinFactorization(tiny_db.catalog)
        targets = transformation.find_targets(tree)
        # departments has different local predicates -> not factorable
        assert not targets


class TestPredicatePullup:
    @pytest.fixture()
    def db(self, tiny_db):
        tiny_db.register_function(
            "SLOWFN", lambda x: None if x is None else x % 3,
            expensive_cost=400.0,
        )
        return tiny_db

    SQL = (
        "SELECT v.emp_id, v.salary FROM "
        "(SELECT e.emp_id, e.salary FROM employees e "
        "WHERE SLOWFN(e.salary) = 1 ORDER BY e.salary DESC) v "
        "WHERE rownum <= 5"
    )

    def test_predicate_moves_to_outer_block(self, db):
        tree = apply_all(db, self.SQL, PredicatePullup)
        view = tree.from_items[0].subquery
        assert not view.where_conjuncts
        assert len(tree.where_conjuncts) == 1
        assert_equivalent(db, self.SQL, tree)

    def test_no_rownum_no_target(self, db):
        sql = (
            "SELECT v.emp_id FROM (SELECT e.emp_id, e.salary FROM employees e "
            "WHERE SLOWFN(e.salary) = 1 ORDER BY e.salary) v"
        )
        transformation = PredicatePullup(db.catalog)
        assert not transformation.find_targets(db.parse(sql))

    def test_no_blocking_operator_no_target(self, db):
        sql = (
            "SELECT v.emp_id FROM (SELECT e.emp_id, e.salary FROM employees e "
            "WHERE SLOWFN(e.salary) = 1) v WHERE rownum <= 5"
        )
        transformation = PredicatePullup(db.catalog)
        assert not transformation.find_targets(db.parse(sql))

    def test_cheap_predicate_not_pulled(self, db):
        sql = (
            "SELECT v.emp_id FROM (SELECT e.emp_id, e.salary FROM employees e "
            "WHERE e.salary > 10 ORDER BY e.salary) v WHERE rownum <= 5"
        )
        transformation = PredicatePullup(db.catalog)
        assert not transformation.find_targets(db.parse(sql))

    def test_two_predicates_two_targets(self, db):
        sql = (
            "SELECT v.emp_id FROM (SELECT e.emp_id FROM employees e "
            "WHERE SLOWFN(e.salary) = 1 AND SLOWFN(e.emp_id) = 0 "
            "ORDER BY e.emp_id) v WHERE rownum <= 5"
        )
        transformation = PredicatePullup(db.catalog)
        assert len(transformation.find_targets(db.parse(sql))) == 2


class TestSetOpIntoJoin:
    def test_minus_becomes_antijoin(self, tiny_db):
        sql = (
            "SELECT dept_id FROM employees MINUS "
            "SELECT dept_id FROM departments WHERE loc_id = 1"
        )
        tree = apply_all(tiny_db, sql, SetOpIntoJoin)
        assert isinstance(tree, QueryBlock)
        assert tree.distinct
        assert any(i.join_type == "ANTI" for i in tree.from_items)
        assert_equivalent(tiny_db, sql, tree)

    def test_intersect_becomes_semijoin(self, tiny_db):
        sql = (
            "SELECT dept_id FROM departments INTERSECT "
            "SELECT dept_id FROM employees WHERE salary > 40"
        )
        tree = apply_all(tiny_db, sql, SetOpIntoJoin)
        assert any(i.join_type == "SEMI" for i in tree.from_items)
        assert_equivalent(tiny_db, sql, tree)

    def test_nulls_match_in_setop_conversion(self, tiny_db):
        # employees.dept_id contains NULLs; MINUS must treat NULL = NULL
        sql = (
            "SELECT dept_id FROM employees MINUS "
            "SELECT mgr_id FROM employees WHERE mgr_id IS NULL"
        )
        tree = apply_all(tiny_db, sql, SetOpIntoJoin)
        assert_equivalent(tiny_db, sql, tree)

    def test_nested_setop_as_subquery_source(self, tiny_db):
        sql = (
            "SELECT v.dept_id FROM (SELECT dept_id FROM employees MINUS "
            "SELECT dept_id FROM departments) v"
        )
        tree = apply_all(tiny_db, sql, SetOpIntoJoin)
        assert isinstance(tree.from_items[0].subquery, QueryBlock)
        assert_equivalent(tiny_db, sql, tree)


class TestOrExpansion:
    SQL = (
        "SELECT e.emp_id FROM employees e, departments d "
        "WHERE e.dept_id = d.dept_id AND (d.loc_id = 1 OR e.salary > 80)"
    )

    def test_expansion_produces_disjoint_union_all(self, tiny_db):
        tree = apply_all(tiny_db, self.SQL, OrExpansion)
        assert isinstance(tree, SetOpBlock)
        assert tree.op == "UNION ALL"
        assert len(tree.branches) == 2
        # second branch carries the LNNVL guard
        second = tree.branches[1].to_sql()
        assert "LNNVL" in second
        assert_equivalent(tiny_db, self.SQL, tree)

    def test_three_way_disjunction(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE "
            "e.salary > 85 OR e.dept_id = 1 OR e.mgr_id = 2"
        )
        tree = apply_all(tiny_db, sql, OrExpansion)
        assert len(tree.branches) == 3
        assert_equivalent(tiny_db, sql, tree)

    def test_grouped_block_not_expanded(self, tiny_db):
        sql = (
            "SELECT dept_id, COUNT(*) FROM employees "
            "WHERE salary > 80 OR mgr_id = 2 GROUP BY dept_id"
        )
        transformation = OrExpansion(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))

    def test_subquery_disjunct_not_expanded(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.salary > 80 OR EXISTS "
            "(SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id)"
        )
        transformation = OrExpansion(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))

    def test_null_handling_no_duplicates(self, tiny_db):
        # rows satisfying both disjuncts must appear exactly once
        sql = (
            "SELECT e.emp_id FROM employees e "
            "WHERE e.salary > 10 OR e.salary > 20"
        )
        tree = apply_all(tiny_db, sql, OrExpansion)
        assert_equivalent(tiny_db, sql, tree)


class TestJoinFactorizationLateral:
    """§2.2.5's refinement: when branch join predicates differ, they stay
    inside the UNION ALL view, which becomes laterally correlated."""

    SQL = (
        "SELECT d.department_name, e.salary FROM departments d, employees e "
        "WHERE e.dept_id = d.dept_id AND d.loc_id = 2 AND e.salary > 50 "
        "UNION ALL "
        "SELECT d.department_name, j.start_date FROM departments d, "
        "job_history j WHERE j.dept_id < d.dept_id AND d.loc_id = 2 "
        "AND j.start_date > 90"
    )

    def test_mode_detected_as_lateral(self, tiny_db):
        from repro.transform.costbased.join_factorization import _factorable

        tree = tiny_db.parse(self.SQL)
        assert _factorable(tree, "d") == "lateral"

    def test_view_is_correlated(self, tiny_db):
        tree = apply_all(tiny_db, self.SQL, JoinFactorization)
        view_item = next(i for i in tree.from_items if i.is_derived)
        assert view_item.subquery.is_correlated
        # the shared local predicate moved to the outer block
        assert tree.where_conjuncts
        assert_equivalent(tiny_db, self.SQL, tree)

    def test_execution_matches(self, tiny_db):
        from collections import Counter as C

        expected = C(tiny_db.reference_execute(self.SQL))
        assert C(tiny_db.execute(self.SQL).rows) == expected

    def test_mixed_branch_with_subquery_on_common_table_refused(self, tiny_db):
        sql = (
            "SELECT d.department_name FROM departments d, employees e "
            "WHERE e.dept_id = d.dept_id "
            "UNION ALL "
            "SELECT d.department_name FROM departments d WHERE EXISTS "
            "(SELECT 1 FROM job_history j WHERE j.dept_id = d.dept_id)"
        )
        from repro.transform.costbased.join_factorization import _factorable

        tree = tiny_db.parse(sql)
        assert _factorable(tree, "d") is None
