"""Heuristic transformation tests: SPJ view merging, subquery merge
unnesting, join elimination, predicate move-around.

Each test checks both the *shape* of the transformed tree and (where
data-dependent) semantic equivalence against the reference evaluator.
"""

from collections import Counter

import pytest

from repro.errors import TransformError
from repro.qtree.blocks import QueryBlock
from repro.transform.base import apply_everywhere
from repro.transform.heuristic import (
    JoinElimination,
    PredicateMoveAround,
    SpjViewMerging,
    SubqueryMergeUnnesting,
)


def transformed(db, sql, transformation_cls):
    tree = db.parse(sql)
    transformation = transformation_cls(db.catalog)
    return apply_everywhere(transformation, tree), transformation


def assert_equivalent(db, sql, tree):
    expected = Counter(db.reference_execute(sql))
    from repro.engine.reference import ReferenceEvaluator

    evaluator = ReferenceEvaluator(db.storage, db.functions)
    assert Counter(evaluator.evaluate(tree)) == expected


class TestSpjViewMerging:
    SQL = (
        "SELECT v.emp_id, d.department_name FROM "
        "(SELECT e.emp_id, e.dept_id FROM employees e, job_history j "
        "WHERE e.emp_id = j.emp_id AND j.start_date > 50) v, departments d "
        "WHERE v.dept_id = d.dept_id"
    )

    def test_view_disappears(self, tiny_db):
        tree, _t = transformed(tiny_db, self.SQL, SpjViewMerging)
        assert all(item.is_base_table for item in tree.from_items)
        assert len(tree.from_items) == 3

    def test_semantics_preserved(self, tiny_db):
        tree, _t = transformed(tiny_db, self.SQL, SpjViewMerging)
        assert_equivalent(tiny_db, self.SQL, tree)

    def test_nested_views_merge_to_fixpoint(self, tiny_db):
        sql = (
            "SELECT v2.emp_id FROM (SELECT v1.emp_id FROM "
            "(SELECT e.emp_id FROM employees e WHERE e.salary > 10) v1) v2"
        )
        tree, _t = transformed(tiny_db, sql, SpjViewMerging)
        assert all(item.is_base_table for item in tree.from_items)

    def test_groupby_view_not_merged(self, tiny_db):
        sql = (
            "SELECT v.d FROM (SELECT dept_id AS d, COUNT(*) AS c "
            "FROM employees GROUP BY dept_id) v"
        )
        tree, transformation = transformed(tiny_db, sql, SpjViewMerging)
        assert tree.from_items[0].is_derived
        assert not transformation.find_targets(tree)

    def test_alias_collision_resolved(self, tiny_db):
        sql = (
            "SELECT e.emp_id, v.x FROM employees e, "
            "(SELECT e.salary AS x FROM employees e WHERE e.salary > 80) v "
            "WHERE e.emp_id = v.x"
        )
        tree, _t = transformed(tiny_db, sql, SpjViewMerging)
        aliases = [item.alias for item in tree.from_items]
        assert len(aliases) == len(set(aliases)) == 2
        assert_equivalent(tiny_db, sql, tree)

    def test_ordered_view_under_rownum_not_merged(self, tiny_db):
        sql = (
            "SELECT v.emp_id FROM (SELECT emp_id FROM employees "
            "ORDER BY salary DESC) v WHERE rownum <= 3"
        )
        tree, _t = transformed(tiny_db, sql, SpjViewMerging)
        assert tree.from_items[0].is_derived


class TestSubqueryMergeUnnesting:
    def test_exists_becomes_semijoin(self, tiny_db):
        sql = (
            "SELECT d.dept_id FROM departments d WHERE EXISTS "
            "(SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id "
            "AND e.salary > 50)"
        )
        tree, _t = transformed(tiny_db, sql, SubqueryMergeUnnesting)
        assert not tree.subquery_exprs()
        semi = [i for i in tree.from_items if i.join_type == "SEMI"]
        assert len(semi) == 1
        assert semi[0].required_predecessors() == {"d"}
        assert_equivalent(tiny_db, sql, tree)

    def test_not_exists_becomes_antijoin(self, tiny_db):
        sql = (
            "SELECT d.dept_id FROM departments d WHERE NOT EXISTS "
            "(SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id)"
        )
        tree, _t = transformed(tiny_db, sql, SubqueryMergeUnnesting)
        assert [i.join_type for i in tree.from_items] == ["INNER", "ANTI"]
        assert_equivalent(tiny_db, sql, tree)

    def test_in_on_nonnull_pk_becomes_semijoin(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.dept_id IN "
            "(SELECT d.dept_id FROM departments d WHERE d.loc_id = 2)"
        )
        tree, _t = transformed(tiny_db, sql, SubqueryMergeUnnesting)
        assert any(i.join_type == "SEMI" for i in tree.from_items)
        assert_equivalent(tiny_db, sql, tree)

    def test_not_in_on_pk_becomes_plain_antijoin(self, tiny_db):
        # both sides non-null (e.emp_id is PK, d.dept_id is PK): ANTI
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.emp_id NOT IN "
            "(SELECT d.dept_id FROM departments d)"
        )
        tree, _t = transformed(tiny_db, sql, SubqueryMergeUnnesting)
        assert any(i.join_type == "ANTI" for i in tree.from_items)
        assert_equivalent(tiny_db, sql, tree)

    def test_not_in_nullable_is_not_flat_merged(self, tiny_db):
        # e.dept_id is nullable: needs the null-aware view path instead
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.dept_id NOT IN "
            "(SELECT j.dept_id FROM job_history j)"
        )
        tree, transformation = transformed(
            tiny_db, sql, SubqueryMergeUnnesting
        )
        assert tree.subquery_exprs()  # untouched

    def test_multi_table_subquery_not_flat_merged(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.dept_id IN "
            "(SELECT d.dept_id FROM departments d, locations l "
            "WHERE d.loc_id = l.loc_id)"
        )
        tree, _t = transformed(tiny_db, sql, SubqueryMergeUnnesting)
        assert tree.subquery_exprs()

    def test_quantified_any_becomes_semijoin(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.salary < ANY "
            "(SELECT j.start_date FROM job_history j WHERE j.emp_id = e.emp_id)"
        )
        tree, _t = transformed(tiny_db, sql, SubqueryMergeUnnesting)
        assert any(i.join_type == "SEMI" for i in tree.from_items)
        assert_equivalent(tiny_db, sql, tree)

    def test_or_wrapped_subquery_not_unnested(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.salary > 80 OR EXISTS "
            "(SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id)"
        )
        tree, transformation = transformed(
            tiny_db, sql, SubqueryMergeUnnesting
        )
        assert not transformation.find_targets(tree)

    def test_apply_on_bad_target_raises(self, tiny_db):
        from repro.transform.base import TargetRef

        tree = tiny_db.parse("SELECT emp_id FROM employees WHERE salary > 1")
        transformation = SubqueryMergeUnnesting(tiny_db.catalog)
        with pytest.raises(TransformError):
            transformation.apply(
                tree, TargetRef(tree.name, "conjunct", 0)
            )


class TestJoinElimination:
    def test_pkfk_join_removed(self, hr_db):
        sql = (
            "SELECT e.employee_name, e.salary FROM employees e, departments d "
            "WHERE e.dept_id = d.dept_id"
        )
        tree, _t = transformed(hr_db, sql, JoinElimination)
        assert [i.alias for i in tree.from_items] == ["e"]
        # nullable FK: IS NOT NULL compensation added
        assert any(
            "IS NOT NULL" in c.__class__.__name__ or
            getattr(c, "negated", False) for c in tree.where_conjuncts
        )
        assert_equivalent(hr_db, sql, tree)

    def test_outer_join_on_unique_key_removed(self, hr_db):
        sql = (
            "SELECT e.employee_name FROM employees e LEFT OUTER JOIN "
            "departments d ON e.dept_id = d.dept_id"
        )
        tree, _t = transformed(hr_db, sql, JoinElimination)
        assert [i.alias for i in tree.from_items] == ["e"]
        assert not tree.where_conjuncts  # no compensation for outer join
        assert_equivalent(hr_db, sql, tree)

    def test_referenced_table_not_eliminated(self, hr_db):
        sql = (
            "SELECT e.employee_name, d.department_name FROM employees e, "
            "departments d WHERE e.dept_id = d.dept_id"
        )
        transformation = JoinElimination(hr_db.catalog)
        assert not transformation.find_targets(hr_db.parse(sql))

    def test_no_fk_no_elimination(self, tiny_db):
        # tiny_db declares no FK employees->departments
        sql = (
            "SELECT e.employee_name FROM employees e, departments d "
            "WHERE e.dept_id = d.dept_id"
        )
        transformation = JoinElimination(tiny_db.catalog)
        assert not transformation.find_targets(tiny_db.parse(sql))

    def test_outer_join_on_nonunique_not_eliminated(self, hr_db):
        sql = (
            "SELECT e.employee_name FROM employees e LEFT OUTER JOIN "
            "job_history j ON e.emp_id = j.emp_id"
        )
        transformation = JoinElimination(hr_db.catalog)
        assert not transformation.find_targets(hr_db.parse(sql))


class TestPredicateMoveAround:
    def test_transitive_filter_generated(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e, departments d "
            "WHERE e.dept_id = d.dept_id AND d.dept_id = 3"
        )
        tree, _t = transformed(tiny_db, sql, PredicateMoveAround)
        rendered = tree.to_sql()
        assert "e.dept_id = 3" in rendered
        assert_equivalent(tiny_db, sql, tree)

    def test_filter_pushed_into_view(self, tiny_db):
        sql = (
            "SELECT v.d FROM (SELECT dept_id AS d, COUNT(*) AS c "
            "FROM employees GROUP BY dept_id) v WHERE v.d = 2"
        )
        tree, _t = transformed(tiny_db, sql, PredicateMoveAround)
        assert not tree.where_conjuncts
        view = tree.from_items[0].subquery
        assert len(view.where_conjuncts) == 1
        assert_equivalent(tiny_db, sql, tree)

    def test_filter_pushed_into_union_all_branches(self, tiny_db):
        sql = (
            "SELECT v.k FROM (SELECT dept_id AS k FROM employees UNION ALL "
            "SELECT dept_id AS k FROM job_history) v WHERE v.k = 4"
        )
        tree, _t = transformed(tiny_db, sql, PredicateMoveAround)
        view = tree.from_items[0].subquery
        assert all(len(b.where_conjuncts) == 1 for b in view.branches)
        assert_equivalent(tiny_db, sql, tree)

    def test_aggregate_output_not_pushed(self, tiny_db):
        sql = (
            "SELECT v.c FROM (SELECT dept_id AS d, COUNT(*) AS c "
            "FROM employees GROUP BY dept_id) v WHERE v.c > 3"
        )
        tree, _t = transformed(tiny_db, sql, PredicateMoveAround)
        assert len(tree.where_conjuncts) == 1  # stayed outside

    def test_window_pby_pushdown(self, hr_db):
        sql = (
            "SELECT v.acct_id, v.ravg FROM "
            "(SELECT a.acct_id, a.time, AVG(a.balance) OVER "
            "(PARTITION BY a.acct_id ORDER BY a.time) AS ravg "
            "FROM accounts a) v WHERE v.acct_id = 7 AND v.time <= 12"
        )
        tree, _t = transformed(hr_db, sql, PredicateMoveAround)
        view = tree.from_items[0].subquery
        pushed = [c.to_sql() if hasattr(c, "to_sql") else str(c)
                  for c in view.where_conjuncts]
        # acct_id (PBY column) pushed; time (OBY column) stays outside
        assert len(view.where_conjuncts) == 1
        assert len(tree.where_conjuncts) == 1
        assert_equivalent(hr_db, sql, tree)
