"""Expression compiler tests: three-valued logic, functions, aggregates."""

import pytest

from repro.engine.expressions import (
    Accumulator,
    ExpressionCompiler,
    FunctionRegistry,
    is_true,
    sql_compare,
    sql_eq,
)
from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.qtree import exprutil


def compile_expr(text):
    """Parse, qualify bare columns with alias 't', and compile."""
    expr = parse_expression(text)

    def qualify(node):
        if isinstance(node, ast.ColumnRef) and node.qualifier is None:
            return ast.ColumnRef("t", node.name)
        return None

    expr = exprutil.map_expr(expr, qualify)
    compiler = ExpressionCompiler(FunctionRegistry())
    return compiler.compile(expr)


def run(text, **cols):
    row = {f"t.{k}": v for k, v in cols.items()}
    return compile_expr(text)(row)


class TestThreeValuedLogic:
    def test_comparison_with_null_is_null(self):
        assert run("a = 1", a=None) is None
        assert run("a < 1", a=None) is None

    def test_and_kleene(self):
        assert run("a = 1 AND b = 2", a=1, b=2) is True
        assert run("a = 1 AND b = 2", a=0, b=None) is False
        assert run("a = 1 AND b = 2", a=1, b=None) is None

    def test_or_kleene(self):
        assert run("a = 1 OR b = 2", a=0, b=None) is None
        assert run("a = 1 OR b = 2", a=1, b=None) is True
        assert run("a = 1 OR b = 2", a=0, b=0) is False

    def test_not_null_is_null(self):
        assert run("NOT (a = 1)", a=None) is None
        assert run("NOT (a = 1)", a=2) is True

    def test_is_null(self):
        assert run("a IS NULL", a=None) is True
        assert run("a IS NOT NULL", a=None) is False

    def test_in_list_with_null(self):
        assert run("a IN (1, 2)", a=1) is True
        assert run("a IN (1, 2)", a=3) is False
        assert run("a IN (1, NULL)", a=3) is None   # unknown
        assert run("a NOT IN (1, NULL)", a=3) is None
        assert run("a IN (1, NULL)", a=1) is True

    def test_between(self):
        assert run("a BETWEEN 1 AND 5", a=3) is True
        assert run("a BETWEEN 1 AND 5", a=9) is False
        assert run("a BETWEEN 1 AND 5", a=None) is None
        assert run("a NOT BETWEEN 1 AND 5", a=9) is True

    def test_arithmetic_null_propagation(self):
        assert run("a + 1", a=None) is None
        assert run("a * b", a=2, b=None) is None

    def test_where_semantics_null_rejects(self):
        assert not is_true(None)
        assert not is_true(False)
        assert is_true(True)


class TestOperators:
    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            run("a / 0", a=1)

    def test_null_divided_by_zero_is_null(self):
        assert run("a / 0", a=None) is None

    def test_concat(self):
        assert run("a || 'x'", a="y") == "yx"
        assert run("a || 'x'", a=None) is None

    def test_like(self):
        assert run("a LIKE 'ab%'", a="abc") is True
        assert run("a LIKE 'ab_'", a="abc") is True
        assert run("a LIKE 'ab_'", a="abcd") is False
        assert run("a LIKE '%'", a=None) is None

    def test_like_special_chars_escaped(self):
        assert run("a LIKE 'a.c'", a="abc") is False
        assert run("a LIKE 'a.c'", a="a.c") is True

    def test_case(self):
        text = "CASE WHEN a > 1 THEN 'big' WHEN a = 1 THEN 'one' ELSE 'small' END"
        assert run(text, a=5) == "big"
        assert run(text, a=1) == "one"
        assert run(text, a=0) == "small"
        assert run(text, a=None) == "small"

    def test_case_without_else(self):
        assert run("CASE WHEN a = 1 THEN 2 END", a=9) is None

    def test_mirror_comparison_helpers(self):
        assert sql_compare("<", 1, 2) is True
        assert sql_compare(">=", 1, 2) is False
        assert sql_compare("=", None, 1) is None
        assert sql_eq(None, None) is None

    def test_incompatible_types_raise(self):
        with pytest.raises(ExecutionError):
            run("a < b", a=1, b="x")


class TestFunctions:
    def test_builtins(self):
        assert run("UPPER(a)", a="abc") == "ABC"
        assert run("LENGTH(a)", a="abc") == 3
        assert run("ABS(a)", a=-4) == 4
        assert run("MOD(a, 3)", a=7) == 1
        assert run("SUBSTR(a, 2, 2)", a="hello") == "el"

    def test_null_safe_builtins(self):
        assert run("UPPER(a)", a=None) is None

    def test_nvl_and_coalesce(self):
        assert run("NVL(a, 5)", a=None) == 5
        assert run("NVL(a, 5)", a=2) == 2
        assert run("COALESCE(a, b, 7)", a=None, b=None) == 7

    def test_lnnvl(self):
        assert run("LNNVL(a = 1)", a=1) is False
        assert run("LNNVL(a = 1)", a=2) is True
        assert run("LNNVL(a = 1)", a=None) is True

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            run("NO_SUCH_FN(a)", a=1)

    def test_custom_function_registration(self):
        registry = FunctionRegistry()
        registry.register("twice", lambda x: x * 2)
        compiler = ExpressionCompiler(registry)
        expr = ast.FuncCall("TWICE", [ast.Literal(4)])
        assert compiler.compile(expr)({}) == 8


class TestAccumulator:
    def test_count_ignores_nulls(self):
        acc = Accumulator("COUNT", False)
        for v in [1, None, 2, None]:
            acc.add(v)
        assert acc.result() == 2

    def test_count_star(self):
        acc = Accumulator("COUNT", False)
        for _ in range(5):
            acc.add_star()
        assert acc.result() == 5

    def test_sum_avg_min_max(self):
        values = [3, 1, None, 2]
        for name, expected in [("SUM", 6), ("AVG", 2.0), ("MIN", 1), ("MAX", 3)]:
            acc = Accumulator(name, False)
            for v in values:
                acc.add(v)
            assert acc.result() == expected

    def test_empty_aggregates(self):
        assert Accumulator("COUNT", False).result() == 0
        assert Accumulator("SUM", False).result() is None
        assert Accumulator("AVG", False).result() is None

    def test_distinct(self):
        acc = Accumulator("COUNT", True)
        for v in [1, 1, 2, 2, 3]:
            acc.add(v)
        assert acc.result() == 3

    def test_sum_distinct(self):
        acc = Accumulator("SUM", True)
        for v in [5, 5, 3]:
            acc.add(v)
        assert acc.result() == 8
