"""Renderer tests: literal formatting and parse/render round trips."""

import pytest

from repro.sql import parse_query, render_statement
from repro.sql.render import render_expr, render_literal
from repro.sql.parser import parse_expression


class TestLiterals:
    def test_null(self):
        assert render_literal(None) == "NULL"

    def test_booleans(self):
        assert render_literal(True) == "TRUE"
        assert render_literal(False) == "FALSE"

    def test_string_escaping(self):
        assert render_literal("it's") == "'it''s'"

    def test_integral_float(self):
        assert render_literal(3.0) == "3.0"

    def test_int(self):
        assert render_literal(42) == "42"


ROUND_TRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS x FROM t u",
    "SELECT a FROM t WHERE a > 1 AND (b = 2 OR c < 3)",
    "SELECT a FROM t WHERE a IN (1, 2, 3)",
    "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.y)",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 5",
    "SELECT a FROM t WHERE name LIKE 'x%'",
    "SELECT a FROM t WHERE a IS NOT NULL",
    "SELECT a, COUNT(b) FROM t GROUP BY a HAVING COUNT(b) > 1 ORDER BY a DESC",
    "SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.y",
    "SELECT a FROM (SELECT b AS a FROM u) v",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT a FROM t MINUS SELECT b FROM u",
    "SELECT a FROM t WHERE x > ALL (SELECT y FROM u)",
    "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END FROM t",
    "SELECT AVG(x) OVER (PARTITION BY a ORDER BY b) FROM t",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
def test_round_trip_is_stable(sql):
    """render(parse(render(parse(sql)))) == render(parse(sql))."""
    once = render_statement(parse_query(sql))
    twice = render_statement(parse_query(once))
    assert once == twice


class TestExpressionRendering:
    def test_nested_parenthesisation(self):
        expr = parse_expression("(1 + 2) * 3")
        assert render_expr(expr) == "(1 + 2) * 3"

    def test_or_inside_and_is_parenthesised(self):
        expr = parse_expression("a = 1 AND (b = 2 OR c = 3)")
        text = render_expr(expr)
        assert "(" in text
        reparsed = parse_expression(text)
        assert render_expr(reparsed) == text

    def test_not_renders(self):
        expr = parse_expression("NOT (a = 1)")
        assert render_expr(expr).startswith("NOT")

    def test_window_frame_renders(self):
        expr = parse_expression(
            "SUM(x) OVER (ORDER BY y ROWS BETWEEN UNBOUNDED PRECEDING "
            "AND CURRENT ROW)"
        )
        text = render_expr(expr)
        assert "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW" in text
