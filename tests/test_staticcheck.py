"""Tests for :mod:`repro.staticcheck` — the project-aware static
analyzer wired into CI.

Each rule family gets a pair of fixture packages (one that must fire,
one that must stay silent), written to a temp directory and analyzed
with :func:`run_project`.  On top of that: suppression-comment
mechanics, baseline round-trips through the CLI (seeded violation →
exit 1, ``--write-baseline`` → exit 0, stale-entry warning), and the
meta-test that keeps the **committed** repo baseline honest — a fresh
run over ``src/repro`` must produce no new findings and no stale
fingerprints.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.staticcheck import Baseline, run_project
from repro.staticcheck.runner import RULE_FAMILIES, main


def write_pkg(tmp_path: Path, sources: dict[str, str]) -> Path:
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for name, source in sources.items():
        (pkg / name).write_text(textwrap.dedent(source))
    return pkg


def check(tmp_path: Path, sources: dict[str, str], families=None):
    pkg = write_pkg(tmp_path, sources)
    report = run_project(pkg, tmp_path, Baseline(), families=families)
    return report.findings


def rules_of(findings) -> list[str]:
    return [f.rule for f in findings]


# -- lock discipline ---------------------------------------------------------


LEDGER = """\
    import threading

    class Ledger:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def bump(self):
            with self._lock:
                self.count += 1

        def peek(self):
            return self.count
"""


class TestLockDiscipline:
    def test_unlocked_read_of_guarded_attr_fires(self, tmp_path):
        findings = check(tmp_path, {"ledger.py": LEDGER})
        assert rules_of(findings) == ["lock.discipline"]
        finding = findings[0]
        assert finding.scope == "Ledger.peek"
        assert "count" in finding.message
        assert finding.relpath.endswith("pkg/ledger.py")

    def test_locked_read_is_silent(self, tmp_path):
        fixed = LEDGER.replace(
            "def peek(self):\n            return self.count",
            "def peek(self):\n"
            "            with self._lock:\n"
            "                return self.count",
        )
        assert fixed != LEDGER
        assert check(tmp_path, {"ledger.py": fixed}) == []

    def test_cross_object_access_is_tracked_by_type(self, tmp_path):
        """The analyzer follows annotated attributes/params: mutating a
        *Ledger's* guarded attr from another module still fires."""
        other = """\
            from .ledger import Ledger

            class Keeper:
                def __init__(self, ledger: Ledger):
                    self.ledger = ledger

                def poke(self):
                    self.ledger.count = 0
        """
        findings = check(tmp_path, {"ledger.py": LEDGER, "keeper.py": other})
        scopes = {f.scope for f in findings}
        assert "Keeper.poke" in scopes
        assert all(f.rule == "lock.discipline" for f in findings)

    def test_suppression_comment_silences_one_rule(self, tmp_path):
        suppressed = LEDGER.replace(
            "        return self.count",
            "        return self.count"
            "  # staticcheck: ignore[lock.discipline] atomic int read",
        )
        assert check(tmp_path, {"ledger.py": suppressed}) == []

    def test_wrong_rule_suppression_does_not_silence(self, tmp_path):
        suppressed = LEDGER.replace(
            "        return self.count",
            "        return self.count"
            "  # staticcheck: ignore[cancel.poll] wrong rule",
        )
        assert rules_of(check(tmp_path, {"ledger.py": suppressed})) \
            == ["lock.discipline"]


# -- lock order --------------------------------------------------------------


class TestLockOrder:
    def test_inverted_acquisition_order_is_a_cycle(self, tmp_path):
        source = """\
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
        """
        findings = check(tmp_path, {"pair.py": source})
        assert "lock.order" in rules_of(findings)
        assert any("cycle" in f.message.lower() for f in findings)

    def test_consistent_order_is_silent(self, tmp_path):
        source = """\
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def also_forward(self):
                    with self._a:
                        with self._b:
                            pass
        """
        assert check(tmp_path, {"pair.py": source}) == []

    def test_plain_lock_self_reacquire_fires(self, tmp_path):
        source = """\
            import threading

            class Once:
                def __init__(self):
                    self._lock = threading.Lock()

                def deadlock(self):
                    with self._lock:
                        with self._lock:
                            pass
        """
        findings = check(tmp_path, {"once.py": source})
        assert "lock.order" in rules_of(findings)

    def test_rlock_self_reacquire_is_exempt(self, tmp_path):
        source = """\
            import threading

            class Reentrant:
                def __init__(self):
                    self._lock = threading.RLock()

                def nested(self):
                    with self._lock:
                        with self._lock:
                            pass
        """
        assert check(tmp_path, {"reentrant.py": source}) == []


# -- cancellation / fault-point coverage -------------------------------------


class TestCancelPoll:
    def test_materialised_loop_without_poll_fires(self, tmp_path):
        source = """\
            class Run:
                def _run_sort(self, rows):
                    out = []
                    for row in rows:
                        out.append(row)
                    return out
        """
        findings = check(tmp_path, {"run.py": source})
        assert rules_of(findings) == ["cancel.poll"]
        assert findings[0].scope == "Run._run_sort"

    def test_loop_with_poll_is_silent(self, tmp_path):
        source = """\
            class Run:
                def _run_sort(self, rows):
                    out = []
                    for row in rows:
                        self._token.check()
                        out.append(row)
                    return out
        """
        assert check(tmp_path, {"run.py": source}) == []

    def test_pipelined_and_metadata_loops_are_exempt(self, tmp_path):
        source = """\
            class Run:
                def _run_scan(self, child):
                    for row in self.rows(child):
                        yield row

                def _run_meta(self, plan):
                    for branch in plan.branches:
                        pass
                    for i in range(3):
                        pass
        """
        assert check(tmp_path, {"run.py": source}) == []


class TestFaultPoints:
    BAD = """\
        VECTOR_OPERATORS = frozenset({"Scan", "Filter"})
        BATCH_OPERATORS = ("Scan", "Old")

        class Vec:
            def _vec_scan(self, batch):
                return batch

            def _vec_extra(self, batch):
                return batch
    """

    def test_contract_drift_fires_every_direction(self, tmp_path):
        findings = check(tmp_path, {"vec.py": self.BAD})
        details = {f.detail for f in findings}
        assert details == {
            "missing-method:Filter",       # declared, not implemented
            "undeclared:_vec_extra",       # implemented, not declared
            "missing-fault-point:Filter",  # declared, no batch fault point
            "stale-fault-point:Old",       # batch entry matches nothing
            "no-batch-control-point",      # module never meters batches
        }
        assert all(f.rule == "fault.point" for f in findings)

    def test_closed_contract_is_silent(self, tmp_path):
        source = """\
            VECTOR_OPERATORS = frozenset({"Scan"})
            BATCH_OPERATORS = ("Scan",)
            POINT = "executor.batch.{}"

            class Vec:
                def _vec_scan(self, batch):
                    return batch
        """
        assert check(tmp_path, {"vec.py": source}) == []


# -- error taxonomy ----------------------------------------------------------


class TestErrorTaxonomy:
    def test_only_the_rogue_exception_fires(self, tmp_path):
        source = """\
            class ReproError(Exception):
                pass

            class GoodError(ReproError):
                pass

            class RogueError(Exception):
                pass

            class Internal(Exception):  # staticcheck: allow-raise
                pass

            def typed():
                raise GoodError("x")

            def stdlib():
                raise ValueError("x")

            def control_flow():
                raise Internal()

            def reraise_stored(saved):
                raise saved

            def rogue():
                raise RogueError("x")
        """
        findings = check(tmp_path, {"errs.py": source})
        assert [(f.rule, f.scope) for f in findings] \
            == [("error.taxonomy", "rogue")]
        assert "RogueError" in findings[0].message

    def test_swallow_rules(self, tmp_path):
        source = """\
            def bad(work):
                try:
                    work()
                except Exception:
                    return None

            def ok_reraise(work):
                try:
                    work()
                except Exception:
                    raise

            def ok_explicit(work, VerificationError):
                try:
                    work()
                except VerificationError:
                    raise
                except Exception:
                    return None

            def bad_base(work, VerificationError):
                try:
                    work()
                except VerificationError:
                    raise
                except BaseException:
                    pass
        """
        findings = check(tmp_path, {"swallow.py": source})
        assert [(f.rule, f.scope) for f in findings] == [
            ("error.swallow", "bad"),
            ("error.swallow", "bad_base"),
        ]
        # the BaseException form additionally demands KeyboardInterrupt
        assert "KeyboardInterrupt" in findings[1].message


# -- metrics / trace hygiene -------------------------------------------------


class TestHygiene:
    def test_registered_but_never_incremented_fires(self, tmp_path):
        source = """\
            class App:
                def setup(self, registry):
                    self.hits = registry.counter("app.hits")
                    registry.counter("app.misses")
                    registry.histogram("app.latency")
                    registry.counter("app.direct").inc()

                def use(self):
                    self.hits.inc()
        """
        findings = check(tmp_path, {"app.py": source})
        assert {f.detail for f in findings} \
            == {"counter:app.misses", "histogram:app.latency"}
        assert all(f.rule == "metrics.unused" for f in findings)

    def test_binding_used_in_another_method_counts(self, tmp_path):
        source = """\
            class App:
                def setup(self, registry):
                    self.lat = registry.histogram("app.latency")

                def observe(self, seconds):
                    self.lat.record(seconds)
        """
        assert check(tmp_path, {"app.py": source}) == []

    def test_undocumented_trace_kind_fires(self, tmp_path):
        source = '''\
            """Tracing.

            Event kinds: ``parse`` and ``optimize``.
            """

            class Tracer:
                def emit(self, kind, **data):
                    pass

            def usage(tracer):
                tracer.emit("parse")
                tracer.emit("rogue")
        '''
        findings = check(tmp_path, {"trace.py": source})
        assert [f.detail for f in findings] == ["kind:rogue"]
        assert findings[0].rule == "trace.undocumented"

    def test_no_tracer_class_means_rule_is_inactive(self, tmp_path):
        source = """\
            def usage(tracer):
                tracer.emit("anything")
        """
        assert check(tmp_path, {"trace.py": source}) == []


# -- family selection --------------------------------------------------------


class TestFamilies:
    def test_family_filter_runs_only_that_family(self, tmp_path):
        sources = {
            "ledger.py": LEDGER,
            "run.py": """\
                class Run:
                    def _run_x(self, rows):
                        for row in rows:
                            pass
            """,
        }
        assert rules_of(check(tmp_path, sources, families=["locks"])) \
            == ["lock.discipline"]
        assert rules_of(check(tmp_path, sources, families=["coverage"])) \
            == ["cancel.poll"]
        assert set(RULE_FAMILIES) == {
            "locks", "coverage", "taxonomy", "hygiene"
        }


# -- baseline & CLI ----------------------------------------------------------


class TestBaselineAndCli:
    def _cli(self, *argv) -> tuple[int, str]:
        lines: list[str] = []
        code = main(list(argv), echo=lines.append)
        return code, "\n".join(lines)

    def test_seeded_violation_fails_then_baseline_passes(self, tmp_path):
        pkg = write_pkg(tmp_path, {"ledger.py": LEDGER})
        baseline = tmp_path / "baseline.json"

        code, out = self._cli("--root", str(pkg), "--baseline", str(baseline))
        assert code == 1
        assert "lock.discipline" in out and "1 new" in out

        code, out = self._cli("--root", str(pkg), "--baseline", str(baseline),
                              "--write-baseline")
        assert code == 0
        data = json.loads(baseline.read_text())
        assert data["version"] == 1 and len(data["findings"]) == 1

        code, out = self._cli("--root", str(pkg), "--baseline", str(baseline))
        assert code == 0
        assert "0 new, 1 baselined" in out

    def test_baseline_reasons_survive_rewrite(self, tmp_path):
        pkg = write_pkg(tmp_path, {"ledger.py": LEDGER})
        baseline = tmp_path / "baseline.json"
        self._cli("--root", str(pkg), "--baseline", str(baseline),
                  "--write-baseline")
        data = json.loads(baseline.read_text())
        fingerprint = next(iter(data["findings"]))
        data["findings"][fingerprint] = "benign: documented reason"
        baseline.write_text(json.dumps(data))
        self._cli("--root", str(pkg), "--baseline", str(baseline),
                  "--write-baseline")
        data = json.loads(baseline.read_text())
        assert data["findings"][fingerprint] == "benign: documented reason"

    def test_stale_entry_warns_but_passes(self, tmp_path):
        pkg = write_pkg(tmp_path, {"ledger.py": LEDGER})
        baseline = tmp_path / "baseline.json"
        self._cli("--root", str(pkg), "--baseline", str(baseline),
                  "--write-baseline")
        fixed = LEDGER.replace(
            "def peek(self):\n            return self.count",
            "def peek(self):\n"
            "            with self._lock:\n"
            "                return self.count",
        )
        assert fixed != LEDGER
        write_pkg(tmp_path, {"ledger.py": fixed})
        code, out = self._cli("--root", str(pkg), "--baseline", str(baseline))
        assert code == 0
        assert "stale baseline entry" in out

    def test_fingerprints_are_line_number_independent(self, tmp_path):
        """Moving code (adding lines above) must not invalidate the
        baseline — fingerprints carry scope+detail, not line numbers."""
        pkg = write_pkg(tmp_path, {"ledger.py": LEDGER})
        baseline = tmp_path / "baseline.json"
        self._cli("--root", str(pkg), "--baseline", str(baseline),
                  "--write-baseline")
        write_pkg(tmp_path, {"ledger.py": "# shifted\n\n" + textwrap.dedent(LEDGER)})
        code, out = self._cli("--root", str(pkg), "--baseline", str(baseline))
        assert code == 0
        assert "0 new, 1 baselined, 0 stale" in out

    def test_json_output_is_machine_readable(self, tmp_path):
        pkg = write_pkg(tmp_path, {"ledger.py": LEDGER})
        code, out = self._cli("--root", str(pkg), "--json",
                              "--baseline", str(tmp_path / "b.json"))
        assert code == 1
        payload = json.loads(out)
        assert payload["ok"] is False
        assert payload["new"][0]["rule"] == "lock.discipline"

    def test_unknown_family_and_flag_exit_2(self, tmp_path):
        assert self._cli("--family", "bogus")[0] == 2
        assert self._cli("--wat")[0] == 2

    def test_help_exits_zero(self):
        code, out = self._cli("--help")
        assert code == 0 and "usage" in out


# -- the committed baseline meta-test ----------------------------------------


REPO_ROOT = Path(__file__).resolve().parents[1]


class TestCommittedBaseline:
    def test_repo_is_clean_against_committed_baseline(self):
        """The analyzer over the real ``src/repro`` must report no new
        findings and no stale fingerprints — the exact CI gate."""
        baseline = Baseline.load(REPO_ROOT / "staticcheck-baseline.json")
        report = run_project(
            REPO_ROOT / "src" / "repro", REPO_ROOT, baseline
        )
        assert report.new == [], report.format()
        assert report.stale == [], report.format()

    def test_every_baseline_entry_carries_a_reason(self):
        data = json.loads(
            (REPO_ROOT / "staticcheck-baseline.json").read_text()
        )
        assert data["version"] == 1
        for fingerprint, reason in data["findings"].items():
            assert reason and not reason.startswith("TODO"), fingerprint

    def test_cli_over_repo_exits_zero(self):
        code = main([], echo=lambda _: None)
        assert code == 0
