"""Statistics and histogram tests."""

import pytest

from repro.catalog.statistics import (
    Histogram,
    StatisticsRegistry,
    TableStats,
    collect_statistics,
    sample_statistics,
)


def rows_of(values, column="x"):
    return [{column: v} for v in values]


class TestCollectStatistics:
    def test_basic_counts(self):
        stats = collect_statistics(rows_of([1, 2, 2, None, 5]), ["x"])
        assert stats.row_count == 5
        col = stats.column("x")
        assert col.num_distinct == 3
        assert col.num_nulls == 1
        assert col.min_value == 1
        assert col.max_value == 5

    def test_empty_table(self):
        stats = collect_statistics([], ["x"])
        assert stats.row_count == 0
        assert stats.column("x").num_distinct == 0
        assert stats.column("x").min_value is None

    def test_all_null_column(self):
        stats = collect_statistics(rows_of([None, None]), ["x"])
        col = stats.column("x")
        assert col.num_nulls == 2
        assert col.histogram is None

    def test_null_fraction(self):
        stats = collect_statistics(rows_of([1, None, None, None]), ["x"])
        assert stats.column("x").null_fraction(4) == pytest.approx(0.75)


class TestHistogram:
    def test_frequency_mode_for_low_ndv(self):
        hist = Histogram([1, 1, 1, 2, 2, 3], buckets=8)
        assert hist.is_frequency
        assert hist.selectivity_eq(1, ndv=3) == pytest.approx(0.5)
        assert hist.selectivity_eq(99, ndv=3) == 0.0

    def test_equi_height_mode(self):
        values = list(range(1000))
        hist = Histogram(values, buckets=10)
        assert not hist.is_frequency
        # uniform data: selectivity of x <= 500 is about half
        sel = hist.selectivity_range(None, 500)
        assert 0.4 < sel < 0.6

    def test_range_out_of_bounds(self):
        hist = Histogram(list(range(100)), buckets=4)
        assert hist.selectivity_range(200, None) == pytest.approx(0.0)
        assert hist.selectivity_range(None, -5) == pytest.approx(0.0)
        assert hist.selectivity_range(None, None) == pytest.approx(1.0)

    def test_eq_out_of_range_is_zero(self):
        hist = Histogram(list(range(100)), buckets=4)
        assert hist.selectivity_eq(5000, ndv=100) == 0.0

    def test_frequency_range(self):
        hist = Histogram([1, 2, 2, 3, 3, 3], buckets=8)
        assert hist.selectivity_range(2, 3) == pytest.approx(5 / 6)
        assert hist.selectivity_range(2, 3, low_inclusive=False) == pytest.approx(0.5)

    def test_skewed_data_equi_height(self):
        values = [1] * 900 + list(range(2, 102))
        hist = Histogram(values, buckets=10)
        sel = hist.selectivity_range(None, 1)
        assert sel > 0.7  # most mass at 1


class TestSampling:
    def test_sample_scales_row_count(self):
        rows = rows_of(list(range(1000)))
        stats = sample_statistics(rows, ["x"], sample_fraction=0.1, seed=1)
        assert stats.row_count == 1000
        assert stats.sampled
        # NDV scaled up, bounded by row count
        assert 100 <= stats.column("x").num_distinct <= 1000

    def test_sample_deterministic(self):
        rows = rows_of(list(range(500)))
        a = sample_statistics(rows, ["x"], seed=9)
        b = sample_statistics(rows, ["x"], seed=9)
        assert a.column("x").num_distinct == b.column("x").num_distinct

    def test_sample_empty(self):
        stats = sample_statistics([], ["x"])
        assert stats.row_count == 0


class TestRegistry:
    def test_set_get_drop(self):
        registry = StatisticsRegistry()
        registry.set("T", TableStats(row_count=7))
        assert registry.get("t").row_count == 7
        registry.drop("T")
        assert registry.get("t") is None

    def test_clear(self):
        registry = StatisticsRegistry()
        registry.set("a", TableStats(row_count=1))
        registry.clear()
        assert registry.get("a") is None
