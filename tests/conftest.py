"""Shared fixtures.

``hr_db`` — the paper's HR demo schema with deterministic data, shared
module-wide (read-only: tests must not insert into it).

``tiny_db`` — a small 4-table schema with nullable columns and skew,
rebuilt per test, for tests that mutate data or need exact contents.
"""

from __future__ import annotations

import os
import random

# Paranoid mode for the whole suite: every transform application in every
# test runs under the sanitizer (repro.analysis); an invariant violation
# raises VerificationError instead of silently corrupting plans.
os.environ.setdefault("REPRO_DEBUG_CHECKS", "1")
# Strict mode: disable the degradation ladder so optimizer errors raise
# instead of falling back — the suite asserts on exact failure behaviour.
# Resilience tests opt back in with ResilienceConfig(fallback=True).
os.environ.setdefault("REPRO_FALLBACK", "0")

import pytest

from repro import Database, OptimizerConfig
from repro.workload import hr_database


@pytest.fixture(scope="session")
def hr_db() -> Database:
    return hr_database(scale=1, seed=42)


def build_tiny_db(seed: int = 3, rows: int = 80) -> Database:
    db = Database()
    db.execute_ddl(
        "CREATE TABLE employees (emp_id INT PRIMARY KEY, dept_id INT, "
        "salary INT, employee_name INT, mgr_id INT)"
    )
    db.execute_ddl(
        "CREATE TABLE departments (dept_id INT PRIMARY KEY, loc_id INT, "
        "department_name INT)"
    )
    db.execute_ddl(
        "CREATE TABLE locations (loc_id INT PRIMARY KEY, country_id INT, "
        "city INT)"
    )
    db.execute_ddl(
        "CREATE TABLE job_history (emp_id INT, job_title INT, "
        "start_date INT, dept_id INT)"
    )
    db.execute_ddl("CREATE INDEX tiny_emp_dept ON employees (dept_id)")
    db.execute_ddl("CREATE INDEX tiny_jh_emp ON job_history (emp_id)")

    rng = random.Random(seed)

    def maybe(value, p=0.12):
        return None if rng.random() < p else value

    db.insert("departments", [
        {"dept_id": i, "loc_id": rng.randint(1, 5), "department_name": i}
        for i in range(1, 11)
    ])
    db.insert("locations", [
        {"loc_id": i, "country_id": i % 3, "city": i} for i in range(1, 6)
    ])
    db.insert("employees", [
        {
            "emp_id": i,
            "dept_id": maybe(rng.randint(1, 10)),
            "salary": rng.randint(1, 90),
            "employee_name": i,
            "mgr_id": maybe(rng.randint(1, 40)),
        }
        for i in range(1, rows + 1)
    ])
    db.insert("job_history", [
        {
            "emp_id": rng.randint(1, rows),
            "job_title": maybe(rng.randint(1, 9)),
            "start_date": rng.randint(1, 100),
            "dept_id": rng.randint(1, 10),
        }
        for _ in range(rows * 3)
    ])
    db.analyze()
    return db


@pytest.fixture()
def tiny_db() -> Database:
    return build_tiny_db()


@pytest.fixture(scope="session")
def default_config() -> OptimizerConfig:
    return OptimizerConfig()
