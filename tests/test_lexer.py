"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def types(sql):
    return [t.type for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)][:-1]  # drop EOF


class TestBasicTokens:
    def test_keywords_are_upcased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:3])

    def test_identifiers_keep_spelling(self):
        token = tokenize("MyTable")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "MyTable"

    def test_identifier_with_special_chars(self):
        assert values("emp_id emp$x emp#1") == ["emp_id", "emp$x", "emp#1"]

    def test_eof_is_last(self):
        assert tokenize("x")[-1].type is TokenType.EOF

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF


class TestNumbers:
    def test_integer(self):
        token = tokenize("12345")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == "12345"

    def test_decimal(self):
        assert tokenize("3.14")[0].value == "3.14"

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == ".5"

    def test_exponent(self):
        assert tokenize("1e3")[0].value == "1e3"
        assert tokenize("2.5E-2")[0].value == "2.5E-2"

    def test_bad_exponent_raises(self):
        with pytest.raises(LexError):
            tokenize("1e")

    def test_double_dot_raises(self):
        with pytest.raises(LexError):
            tokenize("1.2.3")


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_doubled_quote_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""


class TestOperatorsAndPunctuation:
    def test_multi_char_operators(self):
        assert values("<= >= <> != ||") == ["<=", ">=", "<>", "!=", "||"]

    def test_single_char_operators(self):
        assert values("= < > + - /") == ["=", "<", ">", "+", "-", "/"]

    def test_star_token_type(self):
        assert tokenize("*")[0].type is TokenType.STAR

    def test_punctuation(self):
        tokens = tokenize("(a, b.c)")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.LPAREN, TokenType.IDENT, TokenType.COMMA,
            TokenType.IDENT, TokenType.DOT, TokenType.IDENT,
            TokenType.RPAREN,
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert values("a -- comment here\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* oops")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert tokens[1].line == 2

    def test_error_carries_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ab\n  @")
        assert excinfo.value.line == 2


class TestQuotedIdentifiers:
    def test_quoted_identifier(self):
        token = tokenize('"Weird Name"')[0]
        assert token.type is TokenType.IDENT
        assert token.value == "Weird Name"

    def test_quoted_keyword_stays_identifier(self):
        assert tokenize('"select"')[0].type is TokenType.IDENT

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(LexError):
            tokenize('"oops')
