"""Graceful-shutdown tests for the serving front end.

The shutdown contract: the draining flag refuses new statements with
503 semantics, in-flight work gets the grace window then a cooperative
cancel, the pool closes without hanging, and a durable database is
checkpointed so the next open recovers from the snapshot alone.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import Database, DurabilityConfig
from repro.errors import ServerShuttingDown, StatementCancelled
from repro.server import ReproServer, ServerConfig
from repro.server.http import _status_for, make_http_server

#: non-equi cross join sized to run for seconds unless cancelled
SLOW_ROWS = 900
SLOW_SQL = "SELECT COUNT(*) FROM big a, big b WHERE a.id + b.id < 0"


def _slow_db() -> Database:
    db = Database()
    db.execute_ddl("CREATE TABLE big (id INT PRIMARY KEY, v INT)")
    db.insert("big", [{"id": i, "v": i % 7} for i in range(SLOW_ROWS)])
    db.analyze()
    return db


class TestShutdownApp:
    def test_idle_shutdown_drains_immediately(self):
        app = ReproServer(database=_slow_db())
        sid = app.connect()["session_id"]
        app.execute(sid, sql="SELECT COUNT(*) FROM big")
        outcome = app.shutdown(grace=5.0)
        assert outcome == {
            "drained": True, "cancelled": 0, "checkpointed": False,
        }

    def test_draining_refuses_new_statements(self):
        app = ReproServer(database=_slow_db())
        sid = app.connect()["session_id"]
        app.shutdown(grace=0.0)
        with pytest.raises(ServerShuttingDown):
            app.execute(sid, sql="SELECT COUNT(*) FROM big")
        assert app.stats()["draining"] is True

    def test_expired_grace_cancels_in_flight_statement(self):
        app = ReproServer(database=_slow_db())
        sid = app.connect()["session_id"]
        errors: list[BaseException] = []

        def run_slow() -> None:
            try:
                app.execute(sid, sql=SLOW_SQL)
            except BaseException as exc:  # noqa: B036 - recorded for assert
                errors.append(exc)

        worker = threading.Thread(target=run_slow)
        worker.start()
        deadline = time.monotonic() + 10
        while app.admission.snapshot()["running"] == 0:
            assert time.monotonic() < deadline, "statement never started"
            time.sleep(0.01)
        started = time.monotonic()
        outcome = app.shutdown(grace=0.2)
        elapsed = time.monotonic() - started
        worker.join(timeout=10)
        assert not worker.is_alive()
        assert outcome["cancelled"] >= 1
        assert outcome["drained"] is False
        assert elapsed < 8, f"shutdown hung {elapsed:.1f}s on a slow statement"
        assert len(errors) == 1 and isinstance(errors[0], StatementCancelled)

    def test_shutdown_is_idempotent(self):
        app = ReproServer(database=_slow_db())
        first = app.shutdown(grace=0.0)
        second = app.shutdown(grace=0.0)
        assert second["cancelled"] == 0
        assert first["checkpointed"] is False

    def test_shutdown_checkpoints_durable_database(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = Database(
            data_dir=data_dir, durability=DurabilityConfig(fsync="off")
        )
        app = ReproServer(database=db)
        sid = app.connect()["session_id"]
        app.ddl(sid, "CREATE TABLE t (id INT PRIMARY KEY)")
        app.insert(sid, "t", [{"id": 1}, {"id": 2}])
        outcome = app.shutdown()
        assert outcome["checkpointed"] is True
        assert db.durability.closed
        assert os.path.exists(os.path.join(data_dir, "checkpoint.json"))
        # the next open recovers from the checkpoint alone
        db2 = Database(
            data_dir=data_dir, durability=DurabilityConfig(fsync="off")
        )
        assert db2.recovery.checkpoint_rows == 2
        assert db2.recovery.wal_records_total == 0
        db2.close()

    def test_status_maps_shutting_down_to_503(self):
        assert _status_for(ServerShuttingDown("draining")) == 503


class TestShutdownHttp:
    def test_draining_server_returns_503(self):
        app = ReproServer(database=_slow_db())
        server = make_http_server(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            request = urllib.request.Request(
                base + "/sessions", data=b"{}", method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                sid = json.loads(response.read())["session_id"]
            app.shutdown(grace=0.0)
            body = json.dumps({"sql": "SELECT COUNT(*) FROM big"}).encode()
            request = urllib.request.Request(
                f"{base}/sessions/{sid}/execute", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read())
            assert payload["error"]["type"] == "ServerShuttingDown"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestSignalDrivenShutdown:
    """End to end through ``python -m repro serve --data-dir``: SIGTERM
    must drain, checkpoint, and exit 0; the directory must then pass
    ``recover --verify``."""

    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_checkpoints_and_exits_clean(self, tmp_path, signum):
        data_dir = str(tmp_path / "data")
        script = tmp_path / "setup.sql"
        script.write_text("CREATE TABLE t (id INT PRIMARY KEY, v INT);\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in [
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH"),
        ] if p)
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
             "--data-dir", data_dir, "--grace", "3", str(script)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = None
            for line in proc.stdout:
                if "serving on" in line:
                    port = int(
                        line.split("http://")[1].split(" ")[0].rsplit(":", 1)[1]
                    )
                    break
            assert port is not None, "server never came up"
            body = json.dumps({}).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/sessions", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                sid = json.loads(response.read())["session_id"]
            body = json.dumps(
                {"table": "t", "rows": [{"id": 1, "v": 7}]}
            ).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/sessions/{sid}/insert", data=body,
                method="POST", headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert json.loads(response.read())["inserted"] == 1
            proc.send_signal(signum)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 0, f"serve exited {proc.returncode}: {out}"
        assert "checkpoint written" in out
        assert os.path.exists(os.path.join(data_dir, "checkpoint.json"))
        verify = subprocess.run(
            [sys.executable, "-m", "repro", "recover", "--data-dir", data_dir,
             "--verify"],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert verify.returncode == 0, verify.stdout + verify.stderr
        assert "verification ok" in verify.stdout
