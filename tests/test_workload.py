"""Workload substrate tests: schema generation, query generation,
runner, and top-N aggregation."""

import pytest

from repro import OptimizerConfig
from repro.workload import (
    AppsSchemaBuilder,
    MixWeights,
    QueryGenerator,
    apps_database,
    degradation_stats,
    optimization_time_increase_percent,
    register_workload_functions,
    run_workload,
    top_n_curve,
)
from repro.workload.runner import ConfigMeasurement, QueryOutcome
from repro.workload.querygen import GeneratedQuery


@pytest.fixture(scope="module")
def small_apps():
    db, schema = apps_database(
        seed=5,
        modules=("hr", "fin"),
        masters_per_module=1,
        details_per_module=2,
        histories_per_module=1,
        detail_rows=300,
        history_rows=600,
    )
    register_workload_functions(db)
    return db, schema


class TestSchemaGeneration:
    def test_deterministic(self):
        db1, s1 = apps_database(seed=9, modules=("hr",), detail_rows=100,
                                history_rows=100)
        db2, s2 = apps_database(seed=9, modules=("hr",), detail_rows=100,
                                history_rows=100)
        assert sorted(s1.tables) == sorted(s2.tables)
        table = next(iter(s1.tables))
        assert db1.storage.get(table).rows == db2.storage.get(table).rows

    def test_fk_edges_reference_existing_tables(self, small_apps):
        _db, schema = small_apps
        for info in schema.tables.values():
            for _col, parent, _pk in info.fk_edges:
                assert parent in schema.tables

    def test_sizes_follow_kind_ordering(self, small_apps):
        db, schema = small_apps
        masters = [db.storage.get(t.name).row_count
                   for t in schema.tables_of_kind("master")]
        histories = [db.storage.get(t.name).row_count
                     for t in schema.tables_of_kind("history")]
        assert max(masters) < min(histories)

    def test_statistics_collected(self, small_apps):
        db, schema = small_apps
        for name in schema.tables:
            assert db.statistics.get(name) is not None


class TestQueryGeneration:
    def test_mix_ratio_roughly_respected(self, small_apps):
        _db, schema = small_apps
        generator = QueryGenerator(schema, seed=1)
        queries = generator.generate(400)
        simple = sum(1 for q in queries if q.query_class == "spj")
        assert 0.85 <= simple / len(queries) <= 0.97

    def test_deterministic_generation(self, small_apps):
        _db, schema = small_apps
        a = QueryGenerator(schema, seed=4).generate(30)
        b = QueryGenerator(schema, seed=4).generate(30)
        assert [q.sql for q in a] == [q.sql for q in b]

    def test_all_classes_produce_runnable_sql(self, small_apps):
        db, schema = small_apps
        generator = QueryGenerator(schema, seed=2)
        for name, _weight in MixWeights().items():
            query = generator.generate_class(name)
            result = db.execute(query.sql)  # must not raise
            assert result.rows is not None

    def test_relevance_tags(self, small_apps):
        _db, schema = small_apps
        generator = QueryGenerator(schema, seed=3)
        agg = generator.generate_class("agg_subquery")
        assert "unnest_view" in agg.relevant
        spj = generator.generate_class("spj")
        assert not spj.relevant


class TestRunner:
    def test_runner_produces_outcomes(self, small_apps):
        db, schema = small_apps
        queries = QueryGenerator(schema, seed=6).generate(12)
        result = run_workload(
            db, queries, OptimizerConfig.heuristic_mode(), OptimizerConfig()
        )
        assert not result.errors
        assert len(result.outcomes) == 12

    def test_relevant_to_filter(self, small_apps):
        db, schema = small_apps
        generator = QueryGenerator(schema, seed=8)
        queries = [
            generator.generate_class("agg_subquery"),
            generator.generate_class("spj"),
        ]
        result = run_workload(db, queries, OptimizerConfig(), OptimizerConfig())
        assert len(result.relevant_to("unnest_view")) == 1


def make_outcome(name, base_time, treated_time, base_states=1,
                 treated_states=1):
    query = GeneratedQuery(name, "SELECT 1", "spj")

    def measurement(t, states):
        return ConfigMeasurement(
            exec_work=t, opt_states=states, opt_enumerations=states,
            opt_seconds=0.0, exec_seconds=0.0, plan_text=name + str(t),
            rows=0,
        )

    return QueryOutcome(
        query, measurement(base_time, base_states),
        measurement(treated_time, treated_states),
    )


class TestTopNAggregation:
    def test_curve_ranks_by_baseline(self):
        outcomes = [
            make_outcome("slow", 1000.0, 100.0),   # 10x better
            make_outcome("fast", 10.0, 10.0),      # unchanged
        ]
        curve = top_n_curve(outcomes, fractions=(0.5, 1.0))
        # top 50% = the slow query only: +900%
        assert curve[0].n_queries == 1
        assert curve[0].improvement_percent == pytest.approx(642.9, abs=5)
        assert curve[1].improvement_percent < curve[0].improvement_percent

    def test_degradation_stats(self):
        outcomes = [
            make_outcome("better", 100.0, 50.0),
            make_outcome("worse", 100.0, 150.0),
            make_outcome("same", 100.0, 100.0),
        ]
        stats = degradation_stats(outcomes)
        assert stats.n_degraded == 1
        assert stats.degraded_percent_of_queries == pytest.approx(100 / 3)
        assert stats.average_degradation_percent == pytest.approx(35.7, abs=1)

    def test_optimization_time_increase(self):
        outcomes = [
            make_outcome("a", 1.0, 1.0, base_states=2, treated_states=3),
            make_outcome("b", 1.0, 1.0, base_states=2, treated_states=3),
        ]
        assert optimization_time_increase_percent(outcomes) == pytest.approx(50.0)

    def test_memo_served_treated_shows_as_decrease(self):
        # a treated run whose join cores were all served from the subplan
        # memo paid zero fresh enumerations: the increase goes negative
        outcomes = [
            make_outcome("a", 1.0, 1.0, base_states=2, treated_states=0),
        ]
        assert optimization_time_increase_percent(outcomes) == pytest.approx(
            -100.0
        )

    def test_improvement_ratio(self):
        outcome = make_outcome("x", 200.0, 100.0)
        assert outcome.improvement_ratio == pytest.approx(
            (200.0 + 40.0) / (100.0 + 40.0)
        )
