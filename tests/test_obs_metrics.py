"""The unified metrics registry (repro.obs.metrics) and its surfaces:
``Database.snapshot()``, the ``.metrics`` shell command, the ``metrics``
CLI subcommand, and the unified explain-annotation helper (the
``-- governor:`` / ``-- degraded:`` lines now assembled in one place).
"""

from __future__ import annotations

import io
import json

import pytest

from repro import OptimizerConfig, QueryService, ResilienceConfig
from repro.cli import Shell, main
from repro.obs import Counter, Histogram, MetricsRegistry, annotation_lines

# crosses transform.unnest_view (the fault point the degradation tests
# inject into); same shape as the resilience suite's running example
DEGRADED_SQL = (
    "SELECT e.emp_id FROM employees e "
    "WHERE e.salary > (SELECT AVG(j.start_date) FROM job_history j "
    "WHERE j.emp_id = e.emp_id)"
)


class TestCounter:
    def test_inc_and_reset(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_snapshot_aggregates(self):
        histogram = Histogram("h")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.record(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["total"] == 10.0
        assert snap["mean"] == 2.5
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["p50"] == 2.0

    def test_percentiles_over_reservoir(self):
        histogram = Histogram("h", reservoir=100)
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.percentile(0.50) == 50.0
        assert histogram.percentile(0.90) == 90.0
        assert histogram.percentile(0.99) == 99.0

    def test_reservoir_bounds_memory(self):
        histogram = Histogram("h", reservoir=8)
        for value in range(1000):
            histogram.record(float(value))
        snap = histogram.snapshot()
        assert snap["count"] == 1000  # aggregates see everything
        assert snap["p50"] >= 992.0  # percentiles see the recent window

    def test_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0
        assert snap["p99"] == 0.0


class TestMetricsRegistry:
    def test_counter_create_on_first_use(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.histogram("lat").record(0.5)
        registry.register_collector("sub", lambda: {"x": 1})
        snap = registry.snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["sub"] == {"x": 1}

    def test_broken_collector_is_contained(self):
        registry = MetricsRegistry()

        def boom() -> dict:
            raise RuntimeError("nope")

        registry.register_collector("bad", boom)
        snap = registry.snapshot()
        assert "RuntimeError" in snap["bad"]["error"]

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        assert json.loads(registry.to_json())["counters"]["n"] == 1

    def test_format_table(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.histogram("h").record(1.0)
        text = registry.format_table()
        assert "counters" in text
        assert "histograms" in text

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.histogram("h").record(1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"]["n"] == 0
        assert snap["histograms"]["h"]["count"] == 0


class TestDatabaseSnapshot:
    def test_optimizer_and_executor_metrics_recorded(self, tiny_db):
        tiny_db.execute("SELECT e.emp_id FROM employees e")
        snap = tiny_db.snapshot()
        assert snap["counters"]["optimizer.statements"] >= 1
        assert snap["counters"]["executor.statements"] >= 1
        assert snap["histograms"]["optimizer.states"]["count"] >= 1
        assert snap["histograms"]["executor.work_units"]["total"] > 0

    def test_absorbs_quarantine_and_sampling(self, tiny_db):
        snap = tiny_db.snapshot()
        assert "quarantined_global" in snap["quarantine"]
        assert set(snap["dynamic_sampling"]) == {"hits", "misses", "entries"}

    def test_absorbs_plan_cache_via_service(self, tiny_db):
        service = QueryService(tiny_db)
        service.execute("SELECT e.emp_id FROM employees e")
        service.execute("SELECT e.emp_id FROM employees e")
        snap = tiny_db.snapshot()
        assert snap["plan_cache"]["hits"] == 1
        assert snap["plan_cache"]["misses"] == 1
        assert snap["plan_cache"]["capacity"] == service.cache.capacity

    def test_degradation_counted(self, tiny_db):
        from repro.resilience import FaultSpec, inject

        config = OptimizerConfig(resilience=ResilienceConfig(fallback=True))
        with inject(FaultSpec("transform.unnest_view", repeat=True)):
            tiny_db.execute(DEGRADED_SQL, config)
        counters = tiny_db.snapshot()["counters"]
        assert counters["optimizer.degradations"] >= 1
        assert any(
            name.startswith("optimizer.degraded.") for name in counters
        )

    def test_detached_metrics_cost_nothing(self, tiny_db):
        tiny_db.metrics = None
        tiny_db.execute("SELECT e.emp_id FROM employees e")
        assert tiny_db.snapshot() == {}


class TestAnnotationLines:
    def test_explain_and_shell_share_one_assembler(self, tiny_db):
        optimized = tiny_db.optimize(
            "SELECT e.emp_id FROM employees e WHERE e.salary > 10"
        )
        lines = annotation_lines(optimized.report)
        assert lines[0].startswith("-- transformed:")
        assert optimized.explain().splitlines()[: len(lines)] == lines

    def test_cache_line_comes_first(self, tiny_db):
        optimized = tiny_db.optimize("SELECT e.emp_id FROM employees e")
        lines = annotation_lines(optimized.report, cache_status="hit")
        assert lines[0] == "-- cache: hit"
        assert lines[1].startswith("-- transformed:")

    def test_degraded_line_rendered(self, tiny_db):
        from repro.resilience import FaultSpec, inject

        config = OptimizerConfig(resilience=ResilienceConfig(fallback=True))
        with inject(FaultSpec("transform.unnest_view", repeat=True)):
            optimized = tiny_db.optimize(DEGRADED_SQL, config)
        lines = annotation_lines(optimized.report)
        assert any(line.startswith("-- degraded:") for line in lines)


@pytest.fixture()
def shell():
    out = io.StringIO()
    return Shell(out=out)


def feed(shell, text: str) -> str:
    shell.run_script(text)
    return shell.out.getvalue()


SETUP = "CREATE TABLE t (id INT PRIMARY KEY, v INT);\n"


class TestCliSurfaces:
    def test_metrics_meta_command(self, shell):
        feed(shell, SETUP)
        feed(shell, "SELECT id FROM t;")
        text = feed(shell, ".metrics")
        assert "optimizer.statements" in text
        assert "plan_cache" in text

    def test_metrics_meta_json(self, shell):
        feed(shell, SETUP + "SELECT id FROM t;\n")
        shell.out.truncate(0)
        shell.out.seek(0)
        text = feed(shell, ".metrics json")
        snap = json.loads(text)
        assert snap["counters"]["executor.statements"] == 1

    def test_explain_analyze_verb(self, shell):
        feed(shell, SETUP)
        shell.db.insert("t", [{"id": i, "v": i % 3} for i in range(12)])
        feed(shell, ".analyze")
        text = feed(shell, "EXPLAIN ANALYZE SELECT id FROM t WHERE v = 1;")
        assert "actual=" in text
        assert "q=" in text
        assert "-- max q-error:" in text

    def test_explain_verb_does_not_execute(self, shell):
        feed(shell, SETUP)
        text = feed(shell, "EXPLAIN SELECT id FROM t;")
        assert "-- transformed:" in text
        assert "actual=" not in text

    def test_trace_meta_arm_and_show(self, shell):
        feed(shell, SETUP)
        shell.db.insert("t", [{"id": i, "v": i % 3} for i in range(12)])
        feed(shell, ".analyze")
        feed(shell, ".trace on")
        feed(
            shell,
            "SELECT a.id FROM t a WHERE a.v > "
            "(SELECT AVG(b.v) FROM t b WHERE b.id = a.id);",
        )
        text = feed(shell, ".trace show")
        assert "optimizer trace" in text
        feed(shell, ".trace off")
        assert shell.db.tracer is None

    def test_metrics_subcommand_json(self, tmp_path, capsys, monkeypatch):
        import sys

        script = tmp_path / "setup.sql"
        script.write_text(SETUP + "SELECT id FROM t;")
        monkeypatch.setattr(sys.stdin, "isatty", lambda: True, raising=False)
        assert main(["metrics", "--json", str(script)]) == 0
        out = capsys.readouterr().out
        # the setup script's own output precedes the snapshot
        snap = json.loads(out[out.index("{"):])
        assert snap["counters"]["executor.statements"] == 1

    def test_explain_analyze_subcommand(self, tmp_path, capsys, monkeypatch):
        import sys

        script = tmp_path / "setup.sql"
        script.write_text(SETUP)
        monkeypatch.setattr(sys.stdin, "isatty", lambda: True, raising=False)
        assert main(
            ["explain-analyze", "SELECT id FROM t", str(script)]
        ) == 0
        out = capsys.readouterr().out
        assert "-- max q-error:" in out

    def test_trace_subcommand(self, tmp_path, capsys, monkeypatch):
        import sys

        script = tmp_path / "setup.sql"
        script.write_text(SETUP)
        monkeypatch.setattr(sys.stdin, "isatty", lambda: True, raising=False)
        assert main(["trace", "SELECT id FROM t", str(script)]) == 0
        assert "optimizer trace" in capsys.readouterr().out
