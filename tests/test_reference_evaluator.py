"""Reference evaluator behaviour tests (the semantics oracle itself needs
pinning on the subtle SQL corners)."""

import pytest

from repro import Database


@pytest.fixture()
def db():
    database = Database()
    database.execute_ddl("CREATE TABLE a (id INT PRIMARY KEY, v INT, g INT)")
    database.execute_ddl("CREATE TABLE b (id INT PRIMARY KEY, a_id INT, w INT)")
    database.insert("a", [
        {"id": 1, "v": 10, "g": 1},
        {"id": 2, "v": None, "g": 1},
        {"id": 3, "v": 30, "g": None},
    ])
    database.insert("b", [
        {"id": 1, "a_id": 1, "w": 5},
        {"id": 2, "a_id": 1, "w": None},
        {"id": 3, "a_id": None, "w": 7},
    ])
    database.analyze()
    return database


class TestNullSemantics:
    def test_where_null_filters(self, db):
        rows = db.reference_execute("SELECT id FROM a WHERE v > 5")
        assert sorted(rows) == [(1,), (3,)]

    def test_group_by_null_forms_one_group(self, db):
        rows = db.reference_execute(
            "SELECT g, COUNT(*) FROM a GROUP BY g"
        )
        assert sorted(rows, key=str) == sorted(
            [(1, 2), (None, 1)], key=str
        )

    def test_distinct_treats_nulls_equal(self, db):
        db.insert("a", [{"id": 4, "v": 99, "g": None}])
        rows = db.reference_execute("SELECT DISTINCT g FROM a")
        assert len(rows) == 2

    def test_avg_ignores_nulls(self, db):
        rows = db.reference_execute("SELECT AVG(v) FROM a")
        assert rows == [(20.0,)]

    def test_count_star_vs_count_column(self, db):
        rows = db.reference_execute("SELECT COUNT(*), COUNT(v) FROM a")
        assert rows == [(3, 2)]

    def test_scalar_aggregate_on_empty_input(self, db):
        rows = db.reference_execute(
            "SELECT COUNT(v), SUM(v), MIN(v) FROM a WHERE v > 1000"
        )
        assert rows == [(0, None, None)]

    def test_group_by_on_empty_input_yields_nothing(self, db):
        rows = db.reference_execute(
            "SELECT g, COUNT(*) FROM a WHERE v > 1000 GROUP BY g"
        )
        assert rows == []


class TestOrdering:
    def test_nulls_last_ascending(self, db):
        rows = db.reference_execute("SELECT v FROM a ORDER BY v")
        assert rows == [(10,), (30,), (None,)]

    def test_nulls_first_descending(self, db):
        rows = db.reference_execute("SELECT v FROM a ORDER BY v DESC")
        assert rows == [(None,), (30,), (10,)]

    def test_multi_key_stability(self, db):
        rows = db.reference_execute(
            "SELECT g, id FROM a ORDER BY g DESC, id"
        )
        assert rows[0][0] is None  # DESC: nulls first
        tail = [r for r in rows if r[0] is not None]
        assert tail == sorted(tail)


class TestSubqueryEdges:
    def test_scalar_subquery_empty_is_null(self, db):
        rows = db.reference_execute(
            "SELECT a.id FROM a WHERE a.v = "
            "(SELECT b.w FROM b WHERE b.id = 99)"
        )
        assert rows == []

    def test_scalar_subquery_multirow_errors(self, db):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            db.reference_execute(
                "SELECT a.id FROM a WHERE a.v = (SELECT b.w FROM b)"
            )

    def test_not_in_with_null_in_subquery_is_empty(self, db):
        # b.w contains NULL -> x NOT IN (...) is never TRUE
        rows = db.reference_execute(
            "SELECT a.id FROM a WHERE a.v NOT IN (SELECT b.w FROM b)"
        )
        assert rows == []

    def test_not_in_empty_subquery_keeps_all(self, db):
        rows = db.reference_execute(
            "SELECT a.id FROM a WHERE a.v NOT IN "
            "(SELECT b.w FROM b WHERE b.id = 99)"
        )
        assert len(rows) == 3  # even the NULL-v row: NOT IN () is TRUE

    def test_exists_ignores_select_list(self, db):
        rows = db.reference_execute(
            "SELECT a.id FROM a WHERE EXISTS "
            "(SELECT 1 FROM b WHERE b.a_id = a.id)"
        )
        assert rows == [(1,)]

    def test_all_on_empty_subquery_is_true(self, db):
        rows = db.reference_execute(
            "SELECT a.id FROM a WHERE a.v > ALL "
            "(SELECT b.w FROM b WHERE b.id = 99)"
        )
        assert len(rows) == 3

    def test_any_with_null_never_leaks_unknown(self, db):
        rows = db.reference_execute(
            "SELECT a.id FROM a WHERE a.v > ANY (SELECT b.w FROM b)"
        )
        assert sorted(rows) == [(1,), (3,)]


class TestJoinEdges:
    def test_left_join_null_extension(self, db):
        rows = db.reference_execute(
            "SELECT a.id, b.id FROM a LEFT OUTER JOIN b ON b.a_id = a.id"
        )
        unmatched = [r for r in rows if r[1] is None]
        assert {r[0] for r in unmatched} == {2, 3}

    def test_join_on_null_never_matches(self, db):
        rows = db.reference_execute(
            "SELECT a.id FROM a, b WHERE a.g = b.a_id AND a.id = 3"
        )
        assert rows == []  # a.g is NULL for id 3

    def test_cross_join_cardinality(self, db):
        rows = db.reference_execute("SELECT a.id, b.id FROM a, b")
        assert len(rows) == 9


class TestRownum:
    def test_rownum_zero(self, db):
        assert db.reference_execute("SELECT id FROM a WHERE rownum < 1") == []

    def test_rownum_larger_than_table(self, db):
        rows = db.reference_execute("SELECT id FROM a WHERE rownum <= 99")
        assert len(rows) == 3

    def test_rownum_applies_before_order_by(self, db):
        # Oracle semantics: ROWNUM filters the unsorted stream
        rows = db.reference_execute(
            "SELECT id FROM a WHERE rownum <= 2 ORDER BY id DESC"
        )
        assert len(rows) == 2
        assert rows == sorted(rows, reverse=True)
