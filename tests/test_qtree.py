"""Query-tree builder, clone, and SQL-generation tests."""

import pytest

from repro.errors import ResolutionError, UnsupportedError
from repro.qtree import build_query_tree, signature
from repro.qtree.blocks import QueryBlock, SetOpBlock
from repro.sql import ast, parse_query


def build(db, sql):
    return db.parse(sql)


class TestResolution:
    def test_unqualified_columns_get_qualifier(self, tiny_db):
        tree = build(tiny_db, "SELECT salary FROM employees")
        expr = tree.select_items[0].expr
        assert expr.qualifier == "employees"

    def test_ambiguous_column_raises(self, tiny_db):
        with pytest.raises(ResolutionError):
            build(tiny_db, "SELECT dept_id FROM employees e, departments d")

    def test_unknown_column_raises(self, tiny_db):
        with pytest.raises(ResolutionError):
            build(tiny_db, "SELECT nope FROM employees")

    def test_unknown_alias_raises(self, tiny_db):
        with pytest.raises(ResolutionError):
            build(tiny_db, "SELECT zz.salary FROM employees e")

    def test_duplicate_alias_raises(self, tiny_db):
        with pytest.raises(ResolutionError):
            build(tiny_db, "SELECT 1 FROM employees e, departments e")

    def test_correlation_resolves_to_outer(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT e.emp_id FROM employees e WHERE EXISTS "
            "(SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id)"
        ))
        sub = tree.subquery_exprs()[0]
        assert sub.query.is_correlated
        refs = sub.query.correlation_refs()
        assert refs[0].qualifier == "e"

    def test_select_alias_usable_in_order_by(self, tiny_db):
        tree = build(tiny_db, "SELECT salary * 2 AS ss FROM employees ORDER BY ss")
        assert isinstance(tree.order_by[0].expr, ast.BinOp)

    def test_order_by_position(self, tiny_db):
        tree = build(tiny_db, "SELECT emp_id, salary FROM employees ORDER BY 2")
        assert tree.order_by[0].expr.name == "salary"

    def test_order_by_position_out_of_range(self, tiny_db):
        with pytest.raises(ResolutionError):
            build(tiny_db, "SELECT emp_id FROM employees ORDER BY 4")

    def test_star_expansion(self, tiny_db):
        tree = build(tiny_db, "SELECT * FROM departments")
        assert tree.output_columns() == ["dept_id", "loc_id", "department_name"]

    def test_star_does_not_expose_rowid(self, tiny_db):
        tree = build(tiny_db, "SELECT * FROM departments")
        assert "rowid" not in tree.output_columns()

    def test_explicit_rowid_resolves(self, tiny_db):
        tree = build(tiny_db, "SELECT d.rowid FROM departments d")
        assert tree.select_items[0].expr.name == "rowid"

    def test_duplicate_output_names_uniquified(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT e.dept_id, d.dept_id FROM employees e, departments d"
        ))
        columns = tree.output_columns()
        assert len(columns) == len(set(columns))

    def test_subquery_arity_mismatch(self, tiny_db):
        with pytest.raises(ResolutionError):
            build(tiny_db, (
                "SELECT 1 FROM employees e WHERE e.emp_id IN "
                "(SELECT j.emp_id, j.dept_id FROM job_history j)"
            ))

    def test_scalar_subquery_arity(self, tiny_db):
        with pytest.raises(ResolutionError):
            build(tiny_db, (
                "SELECT 1 FROM employees e WHERE e.salary > "
                "(SELECT j.emp_id, j.dept_id FROM job_history j)"
            ))


class TestJoins:
    def test_inner_join_condition_becomes_where_conjunct(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT e.emp_id FROM employees e JOIN departments d "
            "ON e.dept_id = d.dept_id"
        ))
        assert len(tree.where_conjuncts) == 1
        assert all(item.is_inner for item in tree.from_items)

    def test_left_join_annotates_right_item(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT e.emp_id FROM employees e LEFT OUTER JOIN departments d "
            "ON e.dept_id = d.dept_id"
        ))
        d = tree.from_item("d")
        assert d.join_type == "LEFT"
        assert d.required_predecessors() == {"e"}

    def test_right_join_mirrors_to_left(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT e.emp_id FROM departments d RIGHT JOIN employees e "
            "ON e.dept_id = d.dept_id"
        ))
        assert tree.from_item("d").join_type == "LEFT"
        assert tree.from_item("e").join_type == "INNER"

    def test_full_join_unsupported(self, tiny_db):
        with pytest.raises(UnsupportedError):
            build(tiny_db, (
                "SELECT 1 FROM employees e FULL OUTER JOIN departments d "
                "ON e.dept_id = d.dept_id"
            ))


class TestRownum:
    def test_rownum_less_than(self, tiny_db):
        tree = build(tiny_db, "SELECT emp_id FROM employees WHERE rownum < 20")
        assert tree.rownum_limit == 19

    def test_rownum_lte(self, tiny_db):
        tree = build(tiny_db, "SELECT emp_id FROM employees WHERE rownum <= 20")
        assert tree.rownum_limit == 20

    def test_rownum_reversed_literal(self, tiny_db):
        tree = build(tiny_db, "SELECT emp_id FROM employees WHERE 10 > rownum")
        assert tree.rownum_limit == 9

    def test_multiple_rownum_takes_min(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT emp_id FROM employees WHERE rownum < 20 AND rownum <= 5"
        ))
        assert tree.rownum_limit == 5

    def test_rownum_in_select_unsupported(self, tiny_db):
        with pytest.raises(UnsupportedError):
            build(tiny_db, "SELECT emp_id FROM employees WHERE rownum > 3")


class TestCloneAndSignature:
    def test_clone_is_deep(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT e.emp_id FROM employees e WHERE e.salary > "
            "(SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)"
        ))
        copy = tree.clone()
        copy.where_conjuncts.clear()
        assert len(tree.where_conjuncts) == 1

    def test_clone_preserves_signature(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT e.emp_id FROM employees e, departments d "
            "WHERE e.dept_id = d.dept_id AND d.loc_id = 2"
        ))
        assert signature(tree) == signature(tree.clone())

    def test_different_queries_different_signatures(self, tiny_db):
        a = build(tiny_db, "SELECT emp_id FROM employees WHERE salary > 1")
        b = build(tiny_db, "SELECT emp_id FROM employees WHERE salary > 2")
        assert signature(a) != signature(b)

    def test_setop_clone(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT dept_id FROM departments UNION ALL "
            "SELECT dept_id FROM job_history"
        ))
        assert isinstance(tree, SetOpBlock)
        copy = tree.clone()
        assert signature(copy) == signature(tree)
        assert copy.branches[0] is not tree.branches[0]


class TestStructure:
    def test_union_all_flattens(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT dept_id FROM departments UNION ALL "
            "SELECT dept_id FROM job_history UNION ALL "
            "SELECT emp_id FROM employees"
        ))
        assert isinstance(tree, SetOpBlock)
        assert len(tree.branches) == 3

    def test_mixed_setops_stay_binary(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT dept_id FROM departments MINUS "
            "SELECT dept_id FROM job_history"
        ))
        assert len(tree.branches) == 2

    def test_iter_blocks_covers_subqueries(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT e.emp_id FROM employees e, "
            "(SELECT j.emp_id AS x FROM job_history j) v "
            "WHERE e.emp_id = v.x AND EXISTS "
            "(SELECT 1 FROM departments d WHERE d.dept_id = e.dept_id)"
        ))
        blocks = list(tree.iter_blocks())
        assert len(blocks) == 3

    def test_is_spj(self, tiny_db):
        spj = build(tiny_db, "SELECT emp_id FROM employees WHERE salary > 1")
        grouped = build(tiny_db, (
            "SELECT dept_id, COUNT(emp_id) FROM employees GROUP BY dept_id"
        ))
        distinct = build(tiny_db, "SELECT DISTINCT dept_id FROM employees")
        assert spj.is_spj
        assert not grouped.is_spj
        assert not distinct.is_spj

    def test_quantifier_normalisation(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT emp_id FROM employees e WHERE e.dept_id = ANY "
            "(SELECT d.dept_id FROM departments d)"
        ))
        sub = tree.subquery_exprs()[0]
        assert sub.kind == "IN"

    def test_neq_all_normalises_to_not_in(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT emp_id FROM employees e WHERE e.dept_id <> ALL "
            "(SELECT d.dept_id FROM departments d)"
        ))
        sub = tree.subquery_exprs()[0]
        assert sub.kind == "IN" and sub.negated

    def test_not_exists_normalises(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT emp_id FROM employees e WHERE NOT EXISTS "
            "(SELECT 1 FROM departments d WHERE d.dept_id = e.dept_id)"
        ))
        sub = tree.subquery_exprs()[0]
        assert sub.kind == "EXISTS" and sub.negated

    def test_to_sql_reparses_for_plain_blocks(self, tiny_db):
        tree = build(tiny_db, (
            "SELECT e.emp_id FROM employees e, departments d "
            "WHERE e.dept_id = d.dept_id AND d.loc_id > 2 "
            "GROUP BY e.emp_id ORDER BY e.emp_id"
        ))
        reparsed = build(tiny_db, tree.to_sql())
        assert signature(reparsed) == signature(tree)
