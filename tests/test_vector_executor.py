"""Vectorized batch executor: batches, kernels, control-point parity.

The batch engine must be *observationally identical* to the row engine:
same rows, same chosen plans, same deterministic work units, same
EXPLAIN ANALYZE actuals, same typed failure behaviour under injected
faults and cancellation.  These tests pin each of those contracts
directly; `test_executor_equivalence` / `test_differential_random`
cover the broad query battery.
"""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro import Database, OptimizerConfig, ResilienceConfig
from repro.engine.vector import BATCH_SIZE, Batch, VECTOR_OPERATORS
from repro.engine.vector.batch import chunk_rows, concat
from repro.errors import (
    ExecutionError,
    FaultInjected,
    StatementCancelled,
)
from repro.resilience import FaultSpec, inject
from repro.resilience.cancel import CancelToken
from repro.resilience.faults import BATCH_OPERATORS, injection_points

from .conftest import build_tiny_db

EXECUTORS = ("row", "vector", "parallel")

RESILIENT = OptimizerConfig(resilience=ResilienceConfig(fallback=True))


# -- Batch layout ------------------------------------------------------------


class TestBatch:
    def test_row_batch_roundtrip(self):
        rows = [
            {"e.a": 1, "e.b": None, "#width": 2},
            {"e.a": None, "e.b": "x", "#width": 2},
            {"e.a": 3, "e.b": "y", "#width": 2},
        ]
        batch = Batch.from_rows(rows)
        assert batch.length == 3
        assert batch.width == 2
        assert list(batch.to_rows()) == rows

    def test_gather_and_concat(self):
        a = Batch.from_rows([{"k": i} for i in range(4)])
        b = Batch.from_rows([{"k": 10, "extra": 1}])
        picked = a.gather([3, 1])
        assert list(picked.to_rows()) == [{"k": 3}, {"k": 1}]
        merged = concat([a, b])
        # key union: missing columns are NULL-filled
        assert merged.length == 5
        assert merged.columns["extra"] == [None] * 4 + [1]

    def test_chunk_rows(self):
        rows = [{"k": i} for i in range(BATCH_SIZE + 5)]
        chunks = list(chunk_rows(rows, BATCH_SIZE))
        assert [c.length for c in chunks] == [BATCH_SIZE, 5]

    def test_output_tuples_requires_width(self):
        batch = Batch.from_rows([{"k": 1}])
        with pytest.raises(ExecutionError):
            batch.output_tuples()


# -- end-to-end equivalence on adversarial inputs ----------------------------


def _null_heavy_db() -> Database:
    db = Database()
    db.execute_ddl("CREATE TABLE n (a INT, b INT, c VARCHAR)")
    rows = []
    for i in range(60):
        rows.append(
            {
                "a": None if i % 3 == 0 else i,
                "b": None if i % 4 == 0 else i % 5,
                "c": None if i % 5 == 0 else f"s{i % 4}",
            }
        )
    db.insert("n", rows)
    db.execute_ddl("CREATE TABLE m (b INT, d INT)")
    db.insert(
        "m",
        [{"b": None if i % 6 == 0 else i % 5, "d": i} for i in range(30)],
    )
    db.analyze()
    return db


NULL_QUERIES = [
    # 3VL through compiled kernels: IN, NOT IN, BETWEEN, CASE, LIKE, NOT
    "SELECT a FROM n WHERE b IN (1, 2)",
    "SELECT a FROM n WHERE b NOT IN (1, 2)",
    "SELECT a FROM n WHERE a BETWEEN 10 AND 40",
    "SELECT a FROM n WHERE NOT (a BETWEEN 10 AND 40)",
    "SELECT a, CASE WHEN b IS NULL THEN -1 WHEN b > 2 THEN b ELSE 0 END "
    "FROM n",
    "SELECT a FROM n WHERE c LIKE 's1%'",
    "SELECT a FROM n WHERE b = 2 OR c = 's3'",
    "SELECT a, b + a, a * 2 FROM n WHERE a IS NOT NULL",
    # NULL join keys never match; NULL groups do group together
    "SELECT n.a, m.d FROM n, m WHERE n.b = m.b",
    "SELECT b, COUNT(*), COUNT(a), SUM(a), MIN(c) FROM n GROUP BY b",
    "SELECT DISTINCT b, c FROM n",
    # NULL-aware anti join through the hash ANTI_NA path
    "SELECT a FROM n WHERE b NOT IN (SELECT m.b FROM m WHERE m.d > 25)",
]


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("sql", NULL_QUERIES, ids=range(len(NULL_QUERIES)))
def test_null_heavy_equivalence(sql, executor):
    db = _null_heavy_db()
    expected = Counter(db.reference_execute(sql))
    got = db.execute(sql, executor=executor)
    assert Counter(got.rows) == expected
    assert got.exec_stats.executor_mode == executor


@pytest.mark.parametrize("executor", EXECUTORS)
def test_empty_input_batches(executor):
    db = Database()
    db.execute_ddl("CREATE TABLE e (a INT, b INT)")
    db.analyze()
    for sql, expected in [
        ("SELECT a FROM e WHERE b > 1", []),
        ("SELECT b, COUNT(*) FROM e GROUP BY b", []),
        # scalar aggregate over zero rows still emits one row
        ("SELECT COUNT(*), SUM(a), MIN(a) FROM e", [(0, None, None)]),
        ("SELECT DISTINCT a FROM e", []),
    ]:
        got = db.execute(sql, executor=executor)
        assert got.rows == expected, sql


def test_work_unit_parity_null_heavy():
    db = _null_heavy_db()
    for sql in NULL_QUERIES:
        units = {
            mode: db.execute(sql, executor=mode).exec_stats.work_units
            for mode in EXECUTORS
        }
        assert math.isclose(units["row"], units["vector"], rel_tol=1e-9)
        assert math.isclose(units["row"], units["parallel"], rel_tol=1e-9)


def test_work_unit_parity_early_stop_consumers(tiny_db):
    """Early-terminating row-engine consumers (COUNT STOPKEY, semi/anti
    nested-loop probes over lateral views) stop pulling mid-stream; the
    subtrees they consume must charge identical work units, not a whole
    eager batch (regression guard for the lateral semijoin drift)."""
    for sql in [
        # distinct-view semijoin: candidate for NLJ SEMI + lateral view
        "SELECT e.emp_id FROM employees e, (SELECT DISTINCT j.emp_id AS k "
        "FROM job_history j WHERE j.job_title > 5) v WHERE v.k = e.emp_id",
        "SELECT e.emp_id FROM employees e WHERE NOT EXISTS "
        "(SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id "
        "AND j.job_title = 2)",
        # ROWNUM view: COUNT STOPKEY over a sorted subtree
        "SELECT v.emp_id FROM (SELECT emp_id FROM employees "
        "ORDER BY salary DESC) v WHERE rownum <= 7",
    ]:
        units = {
            mode: tiny_db.execute(sql, executor=mode).exec_stats.work_units
            for mode in EXECUTORS
        }
        assert math.isclose(
            units["row"], units["vector"], rel_tol=1e-9
        ), (sql, units)
        assert math.isclose(
            units["row"], units["parallel"], rel_tol=1e-9
        ), (sql, units)


# -- morsel parallelism beyond one batch -------------------------------------


def test_parallel_multi_morsel_scan_join_aggregate():
    db = Database()
    db.execute_ddl("CREATE TABLE big (k INT, v INT)")
    db.insert(
        "big",
        [
            {"k": i % 97, "v": None if i % 11 == 0 else i % 13}
            for i in range(3 * BATCH_SIZE + 17)
        ],
    )
    db.execute_ddl("CREATE TABLE dim (k INT, name INT)")
    db.insert("dim", [{"k": i, "name": i * 10} for i in range(97)])
    db.analyze()
    for sql in [
        "SELECT k FROM big WHERE v > 7",
        "SELECT k, COUNT(*), SUM(v) FROM big GROUP BY k",
        "SELECT b.k, d.name FROM big b, dim d WHERE b.k = d.k AND b.v = 3",
    ]:
        expected = Counter(db.reference_execute(sql))
        seq = db.execute(sql, executor="vector")
        par = db.execute(sql, executor="parallel")
        assert Counter(seq.rows) == expected, sql
        assert Counter(par.rows) == expected, sql
        assert par.rows == seq.rows, f"{sql}: morsel order leaked"
        assert math.isclose(
            seq.exec_stats.work_units,
            par.exec_stats.work_units,
            rel_tol=1e-9,
        )


# -- EXPLAIN ANALYZE golden parity (actual rows, not batch counts) -----------


def test_explain_analyze_reports_rows_not_batches(tiny_db):
    sql = (
        "SELECT e.dept_id, COUNT(*) FROM employees e, departments d "
        "WHERE e.dept_id = d.dept_id AND e.salary > 30 GROUP BY e.dept_id"
    )
    # optimize once so generated view names match, then run the *same*
    # plan through each engine
    optimized = tiny_db.optimize(sql)
    renders = {}
    for mode in EXECUTORS:
        result = tiny_db.execute_plan(optimized, analyze=True, executor=mode)
        renders[mode] = result.explain_analyze(timing=False)
    # golden contract: deterministic EXPLAIN ANALYZE output (actual rows,
    # invocations, Q-error) is identical whichever engine ran the plan
    assert renders["vector"] == renders["row"]
    assert renders["parallel"] == renders["row"]
    assert "actual" in renders["vector"]


def test_explain_analyze_actual_rows_match_row_engine(tiny_db):
    sql = "SELECT emp_id FROM employees WHERE salary > 50"
    per_mode = {}
    for mode in EXECUTORS:
        result = tiny_db.execute(sql, analyze=True, executor=mode)
        stats = result.exec_stats
        per_mode[mode] = {
            "rows": dict(stats.node_rows),
            "invocations": dict(stats.node_invocations),
        }
    # node ids differ between runs, so compare the sorted profiles
    row = per_mode["row"]
    for mode in ("vector", "parallel"):
        assert sorted(per_mode[mode]["rows"].values()) == sorted(
            row["rows"].values()
        )
        assert sorted(per_mode[mode]["invocations"].values()) == sorted(
            row["invocations"].values()
        )


# -- chaos: executor.batch.* fault points ------------------------------------


def test_batch_points_registered():
    points = injection_points()
    for name in BATCH_OPERATORS:
        assert f"executor.batch.{name}" in points
    assert set(BATCH_OPERATORS) == set(VECTOR_OPERATORS)


def _chaos_sql() -> str:
    return (
        "SELECT e.dept_id, COUNT(*) FROM employees e, departments d "
        "WHERE e.dept_id = d.dept_id AND e.salary > 20 "
        "GROUP BY e.dept_id"
    )


#: the HAVING query carries an explicit FILTER node above the GROUP BY
_HAVING_SQL = (
    "SELECT dept_id, SUM(salary) FROM employees GROUP BY dept_id "
    "HAVING SUM(salary) > 200"
)


@pytest.mark.parametrize(
    ("point", "sql"),
    [
        ("executor.batch.TableScan", _chaos_sql()),
        ("executor.batch.Filter", _HAVING_SQL),
        ("executor.batch.HashJoin", _chaos_sql()),
        ("executor.batch.GroupBy", _chaos_sql()),
    ],
)
def test_batch_fault_with_fallback_recovers(point, sql):
    """A fault mid-statement inside the batch engine degrades to the row
    engine and still produces exactly the right rows — never a partial
    batch."""
    db = build_tiny_db()
    expected = Counter(db.reference_execute(sql))
    with inject(FaultSpec(point, at=1, repeat=True)) as injector:
        result = db.execute(sql, RESILIENT, executor="vector")
    assert injector.fired, f"{point} never fired"
    assert Counter(result.rows) == expected
    assert result.exec_stats.executor_mode == "row"
    snap = db.metrics.snapshot()
    assert snap["counters"]["executor.vector_fallbacks"] >= 1


def test_batch_fault_without_fallback_is_typed(tiny_db):
    """Strict mode: the same fault surfaces as the typed error, not a
    partial result or an untyped crash."""
    sql = _chaos_sql()
    with inject(
        FaultSpec("executor.batch.HashJoin", at=1, repeat=True)
    ) as injector:
        with pytest.raises(FaultInjected):
            tiny_db.execute(sql, executor="vector")
    assert injector.fired


def test_mid_stream_batch_fault_no_partial_rows():
    """Arm the fault on the *second* batch of a multi-batch scan: the
    statement must still come back complete via fallback, not truncated."""
    db = Database()
    db.execute_ddl("CREATE TABLE big (k INT, v INT)")
    db.insert(
        "big", [{"k": i, "v": i % 7} for i in range(2 * BATCH_SIZE + 50)]
    )
    db.analyze()
    sql = "SELECT k FROM big WHERE v < 5"
    expected = Counter(db.reference_execute(sql))
    with inject(
        FaultSpec("executor.batch.TableScan", at=2, repeat=True)
    ) as injector:
        result = db.execute(sql, RESILIENT, executor="vector")
    assert injector.fired
    assert Counter(result.rows) == expected
    assert len(result.rows) == sum(expected.values())


def test_cancellation_checked_at_batch_boundaries(tiny_db):
    token = CancelToken()
    token.cancel()
    with pytest.raises(StatementCancelled):
        tiny_db.execute(_chaos_sql(), token=token, executor="vector")


# -- executor selection ------------------------------------------------------


def test_repro_exec_env_selects_mode(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC", "row")
    assert Database().executor_mode == "row"
    monkeypatch.setenv("REPRO_EXEC", "parallel")
    assert Database().executor_mode == "parallel"
    monkeypatch.delenv("REPRO_EXEC")
    assert Database().executor_mode == "vector"
    monkeypatch.setenv("REPRO_EXEC", "turbo")
    with pytest.raises(ExecutionError):
        Database()


def test_unknown_statement_executor_rejected(tiny_db):
    with pytest.raises(ExecutionError):
        tiny_db.execute("SELECT emp_id FROM employees", executor="turbo")
