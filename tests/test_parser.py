"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_ddl, parse_expression, parse_query


class TestSelectBasics:
    def test_minimal_select(self):
        stmt = parse_query("SELECT a FROM t")
        assert isinstance(stmt, ast.SelectStmt)
        assert len(stmt.select_items) == 1
        assert isinstance(stmt.from_items[0], ast.TableName)

    def test_star(self):
        stmt = parse_query("SELECT * FROM t")
        assert isinstance(stmt.select_items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_query("SELECT t.* FROM t")
        star = stmt.select_items[0].expr
        assert isinstance(star, ast.Star)
        assert star.qualifier == "t"

    def test_aliases(self):
        stmt = parse_query("SELECT a AS x, b y FROM t")
        assert stmt.select_items[0].alias == "x"
        assert stmt.select_items[1].alias == "y"

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM t").distinct

    def test_table_alias(self):
        stmt = parse_query("SELECT a FROM employees e1")
        assert stmt.from_items[0].alias == "e1"

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM t extra stuff ,")

    def test_missing_from_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a")


class TestWhereClauses:
    def test_comparison_chain(self):
        stmt = parse_query("SELECT a FROM t WHERE a > 1 AND b <= 2 OR c = 3")
        assert isinstance(stmt.where, ast.Or)

    def test_and_precedence_over_or(self):
        where = parse_query("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").where
        assert isinstance(where, ast.Or)
        assert isinstance(where.operands[1], ast.And)

    def test_not(self):
        where = parse_query("SELECT a FROM t WHERE NOT a = 1").where
        assert isinstance(where, ast.Not)

    def test_between(self):
        where = parse_query("SELECT a FROM t WHERE a BETWEEN 1 AND 5").where
        assert isinstance(where, ast.Between)

    def test_not_between(self):
        where = parse_query("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5").where
        assert isinstance(where, ast.Between)
        assert where.negated

    def test_like(self):
        where = parse_query("SELECT a FROM t WHERE name LIKE 'ab%'").where
        assert isinstance(where, ast.Like)

    def test_is_null_and_is_not_null(self):
        w1 = parse_query("SELECT a FROM t WHERE a IS NULL").where
        w2 = parse_query("SELECT a FROM t WHERE a IS NOT NULL").where
        assert isinstance(w1, ast.IsNull) and not w1.negated
        assert isinstance(w2, ast.IsNull) and w2.negated

    def test_in_list(self):
        where = parse_query("SELECT a FROM t WHERE a IN (1, 2, 3)").where
        assert isinstance(where, ast.InList)
        assert len(where.items) == 3

    def test_not_in_list(self):
        where = parse_query("SELECT a FROM t WHERE a NOT IN (1)").where
        assert where.negated


class TestSubqueries:
    def test_exists(self):
        where = parse_query(
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)"
        ).where
        assert isinstance(where, ast.SubqueryExpr)
        assert where.kind == "EXISTS"

    def test_in_subquery(self):
        where = parse_query(
            "SELECT a FROM t WHERE a IN (SELECT b FROM u)"
        ).where
        assert where.kind == "IN"

    def test_row_in_subquery(self):
        where = parse_query(
            "SELECT a FROM t WHERE (a, b) IN (SELECT c, d FROM u)"
        ).where
        assert isinstance(where.left, ast.RowExpr)

    def test_quantified_any(self):
        where = parse_query(
            "SELECT a FROM t WHERE a > ANY (SELECT b FROM u)"
        ).where
        assert where.kind == "QUANTIFIED"
        assert where.quantifier == "ANY"

    def test_some_is_any(self):
        where = parse_query(
            "SELECT a FROM t WHERE a = SOME (SELECT b FROM u)"
        ).where
        assert where.quantifier == "ANY"

    def test_quantified_all(self):
        where = parse_query(
            "SELECT a FROM t WHERE a <= ALL (SELECT b FROM u)"
        ).where
        assert where.quantifier == "ALL"

    def test_scalar_subquery(self):
        where = parse_query(
            "SELECT a FROM t WHERE a > (SELECT AVG(b) FROM u)"
        ).where
        assert isinstance(where, ast.BinOp)
        assert isinstance(where.right, ast.SubqueryExpr)
        assert where.right.kind == "SCALAR"


class TestJoins:
    def test_comma_join(self):
        stmt = parse_query("SELECT a FROM t, u, v")
        assert len(stmt.from_items) == 3

    def test_inner_join(self):
        stmt = parse_query("SELECT a FROM t JOIN u ON t.x = u.y")
        join = stmt.from_items[0]
        assert isinstance(join, ast.JoinExpr)
        assert join.kind == "INNER"

    def test_left_outer_join(self):
        stmt = parse_query("SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.y")
        assert stmt.from_items[0].kind == "LEFT"

    def test_left_join_without_outer(self):
        stmt = parse_query("SELECT a FROM t LEFT JOIN u ON t.x = u.y")
        assert stmt.from_items[0].kind == "LEFT"

    def test_right_join(self):
        stmt = parse_query("SELECT a FROM t RIGHT JOIN u ON t.x = u.y")
        assert stmt.from_items[0].kind == "RIGHT"

    def test_join_chain(self):
        stmt = parse_query(
            "SELECT a FROM t JOIN u ON t.x = u.y JOIN v ON u.z = v.w"
        )
        outer = stmt.from_items[0]
        assert isinstance(outer.left, ast.JoinExpr)

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM t JOIN u")

    def test_cross_join(self):
        stmt = parse_query("SELECT a FROM t CROSS JOIN u")
        assert stmt.from_items[0].kind == "CROSS"

    def test_derived_table(self):
        stmt = parse_query("SELECT a FROM (SELECT b FROM u) v")
        derived = stmt.from_items[0]
        assert isinstance(derived, ast.DerivedTable)
        assert derived.alias == "v"


class TestGroupingAndOrdering:
    def test_group_by_and_having(self):
        stmt = parse_query(
            "SELECT a, COUNT(b) FROM t GROUP BY a HAVING COUNT(b) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_desc(self):
        stmt = parse_query("SELECT a FROM t ORDER BY a DESC, b")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_count_star(self):
        stmt = parse_query("SELECT COUNT(*) FROM t")
        call = stmt.select_items[0].expr
        assert isinstance(call.args[0], ast.Star)

    def test_count_distinct(self):
        stmt = parse_query("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.select_items[0].expr.distinct


class TestSetOperations:
    def test_union_all(self):
        stmt = parse_query("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert isinstance(stmt, ast.SetOpStmt)
        assert stmt.op == "UNION ALL"

    def test_union_distinct(self):
        stmt = parse_query("SELECT a FROM t UNION SELECT b FROM u")
        assert stmt.op == "UNION"

    def test_minus_and_except(self):
        assert parse_query("SELECT a FROM t MINUS SELECT b FROM u").op == "MINUS"
        assert parse_query("SELECT a FROM t EXCEPT SELECT b FROM u").op == "MINUS"

    def test_intersect(self):
        stmt = parse_query("SELECT a FROM t INTERSECT SELECT b FROM u")
        assert stmt.op == "INTERSECT"

    def test_left_associativity(self):
        stmt = parse_query(
            "SELECT a FROM t UNION SELECT b FROM u MINUS SELECT c FROM v"
        )
        assert stmt.op == "MINUS"
        assert stmt.left.op == "UNION"

    def test_set_op_order_by(self):
        stmt = parse_query(
            "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 DESC"
        )
        assert stmt.order_by[0].descending

    def test_parenthesised_branch(self):
        stmt = parse_query("(SELECT a FROM t) UNION ALL SELECT b FROM u")
        assert stmt.op == "UNION ALL"


class TestExpressions:
    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus_folds_literal(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.Literal)
        assert expr.value == -5

    def test_case_expression(self):
        expr = parse_expression("CASE WHEN a > 1 THEN 2 ELSE 3 END")
        assert isinstance(expr, ast.Case)
        assert expr.default is not None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_concat(self):
        expr = parse_expression("a || b")
        assert expr.op == "||"

    def test_window_function(self):
        expr = parse_expression(
            "AVG(x) OVER (PARTITION BY a ORDER BY b "
            "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW)"
        )
        assert isinstance(expr, ast.WindowFunc)
        assert expr.frame.kind == "ROWS"

    def test_window_without_frame(self):
        expr = parse_expression("SUM(x) OVER (PARTITION BY a)")
        assert expr.frame is None

    def test_null_true_false_literals(self):
        assert parse_expression("NULL").value is None
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False


class TestDdl:
    def test_create_table_with_constraints(self):
        stmt = parse_ddl(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20) NOT NULL, "
            "d_id INT REFERENCES d(id), UNIQUE (name))"
        )
        assert stmt.name == "t"
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].references == ("d", "id")
        assert stmt.constraints[0].kind == "UNIQUE"

    def test_composite_primary_key(self):
        stmt = parse_ddl("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert stmt.constraints[0].columns == ["a", "b"]

    def test_foreign_key_constraint(self):
        stmt = parse_ddl(
            "CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES p (id))"
        )
        fk = stmt.constraints[0]
        assert fk.kind == "FOREIGN KEY"
        assert fk.ref_table == "p"

    def test_create_index(self):
        stmt = parse_ddl("CREATE UNIQUE INDEX ix ON t (a, b)")
        assert stmt.unique
        assert stmt.columns == ["a", "b"]

    def test_number_precision(self):
        stmt = parse_ddl("CREATE TABLE t (x NUMBER(10, 2))")
        assert stmt.columns[0].type_name == "NUMBER"

    def test_unknown_type_raises(self):
        with pytest.raises(ParseError):
            parse_ddl("CREATE TABLE t (x BLOB)")
