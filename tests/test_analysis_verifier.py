"""The optimizer sanitizer (repro.analysis).

Three layers of coverage:

* clean artifacts verify clean — representative queries across every
  construct pass both verifiers before and after optimization;
* every invariant class actually fires — each test corrupts a real tree
  or plan in one specific way and asserts the matching rule reports it;
* the auditor attributes violations to the transformation (and CBQT
  state bitvector) that produced the corrupted artifact, raising
  VerificationError in paranoid mode and only reporting via
  ``Database.check`` / the ``check`` CLI subcommand.
"""

from __future__ import annotations

import pytest

from repro import (
    Database,
    OptimizerConfig,
    PlanVerifier,
    QTreeVerifier,
    TransformationAuditor,
    VerificationError,
)
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, attributed
from repro.optimizer.plans import (
    Filter,
    HashJoin,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Project,
    SetOp,
    TableScan,
)
from repro.qtree.blocks import FromItem
from repro.sql import ast
from repro.transform import pipeline
from repro.transform.base import Transformation

from tests.conftest import build_tiny_db

JOIN_SQL = (
    "SELECT e.employee_name, d.department_name FROM employees e, "
    "departments d WHERE e.dept_id = d.dept_id AND e.salary > 10"
)
AGG_SQL = (
    "SELECT d.department_name, COUNT(*) FROM employees e, departments d "
    "WHERE e.dept_id = d.dept_id GROUP BY d.department_name "
    "HAVING COUNT(*) > 1"
)
SUBQ_SQL = (
    "SELECT e.employee_name FROM employees e WHERE e.salary > "
    "(SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)"
)


@pytest.fixture(scope="module")
def db():
    return build_tiny_db()


def tree_of(db, sql):
    return db.parse(sql)


def errors_of(diagnostics, rule=None):
    return [
        d for d in diagnostics
        if d.is_error and (rule is None or d.rule == rule)
    ]


class TestCleanArtifacts:
    CLEAN_QUERIES = [
        JOIN_SQL,
        AGG_SQL,
        SUBQ_SQL,
        "SELECT e.employee_name FROM employees e WHERE e.dept_id IN "
        "(SELECT d.dept_id FROM departments d WHERE d.loc_id = 1)",
        "SELECT e.employee_name FROM employees e WHERE e.dept_id NOT IN "
        "(SELECT d.dept_id FROM departments d)",
        "SELECT * FROM employees e WHERE NOT EXISTS "
        "(SELECT 1 FROM departments d WHERE d.dept_id = e.dept_id)",
        "SELECT e.employee_name FROM employees e UNION "
        "SELECT d.department_name FROM departments d",
        "SELECT e.employee_name FROM employees e WHERE ROWNUM <= 5",
        "SELECT l.city, COUNT(*) FROM employees e, departments d, "
        "locations l WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id "
        "GROUP BY ROLLUP(l.city)",
    ]

    @pytest.mark.parametrize("sql", CLEAN_QUERIES)
    def test_tree_verifies_before_and_after_optimization(self, db, sql):
        verifier = QTreeVerifier(db.catalog)
        assert errors_of(verifier.verify(tree_of(db, sql))) == []
        optimized = db.optimize_tree(tree_of(db, sql))
        assert errors_of(verifier.verify(optimized.tree)) == []

    @pytest.mark.parametrize("sql", CLEAN_QUERIES)
    def test_plan_verifies(self, db, sql):
        optimized = db.optimize_tree(tree_of(db, sql))
        assert errors_of(PlanVerifier().verify(optimized.plan)) == []


class TestQTreeInvariants:
    def check(self, tree, rule, catalog=None):
        diagnostics = QTreeVerifier(catalog).verify(tree)
        found = errors_of(diagnostics, rule)
        assert found, (
            f"expected {rule} to fire, got "
            f"{[d.format() for d in diagnostics]}"
        )
        return found

    def test_unresolvable_qualifier(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.where_conjuncts.append(
            ast.BinOp("=", ast.ColumnRef("ghost", "x"), ast.Literal(1))
        )
        self.check(tree, "qtree.column-resolution")

    def test_unknown_column_on_resolved_alias(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.select_items[0].expr = ast.ColumnRef("e", "no_such_column")
        self.check(tree, "qtree.column-resolution")

    def test_unqualified_reference(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.where_conjuncts.append(
            ast.BinOp(">", ast.ColumnRef(None, "mystery"), ast.Literal(1))
        )
        self.check(tree, "qtree.column-resolution")

    def test_broken_correlation_after_fake_merge(self, db):
        # simulates a bad view merge: the subquery's correlation names an
        # alias that no enclosing block provides any more
        tree = tree_of(db, SUBQ_SQL)
        tree.from_items[0].alias = "renamed"
        self.check(tree, "qtree.column-resolution")

    def test_base_table_without_definition(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.from_items[0].table = None
        self.check(tree, "qtree.from-item")

    def test_dangling_parser_statement_in_from(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.from_items[1] = FromItem("d", "departments")
        tree.from_items[1].source = object()  # not str, not QueryNode
        self.check(tree, "qtree.from-item")

    def test_duplicate_aliases(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.from_items[1].alias = "e"
        self.check(tree, "qtree.alias-unique")

    def test_duplicate_block_names(self, db):
        tree = tree_of(db, SUBQ_SQL)
        inner = next(s.query for s in tree.subquery_exprs())
        inner.name = tree.name
        self.check(tree, "qtree.block-names")

    def test_unknown_join_type(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.from_items[1].join_type = "FULL"  # bypasses the constructor
        self.check(tree, "qtree.join-type")

    def test_inner_item_with_on_conjuncts(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.from_items[1].join_conjuncts.append(
            ast.BinOp("=", ast.ColumnRef("e", "dept_id"),
                      ast.ColumnRef("d", "dept_id"))
        )
        self.check(tree, "qtree.join-type")

    def test_join_endpoint_missing(self, db):
        tree = tree_of(db, JOIN_SQL)
        item = tree.from_items[1]
        item.join_type = "SEMI"
        item.join_conjuncts = [
            ast.BinOp("=", ast.ColumnRef("d", "dept_id"),
                      ast.ColumnRef("gone", "dept_id"))
        ]
        self.check(tree, "qtree.join-endpoints")

    def test_disconnected_join_graph_warns(self, db):
        tree = tree_of(
            db, "SELECT e.emp_id FROM employees e, departments d "
            "WHERE e.salary > 5"
        )
        diagnostics = QTreeVerifier().verify(tree)
        assert any(
            d.rule == "qtree.join-connected" and d.severity == "warning"
            for d in diagnostics
        )
        assert errors_of(diagnostics) == []  # cross joins stay legal

    def test_ungrouped_select_column(self, db):
        tree = tree_of(db, AGG_SQL)
        tree.select_items[0].expr = ast.ColumnRef("e", "salary")
        self.check(tree, "qtree.group-consistency")

    def test_ungrouped_having_column(self, db):
        tree = tree_of(db, AGG_SQL)
        tree.having_conjuncts.append(
            ast.BinOp(">", ast.ColumnRef("e", "salary"), ast.Literal(1))
        )
        self.check(tree, "qtree.group-consistency")

    def test_rowid_grouping_determines_columns(self, db):
        # Oracle's rowid group-by unnesting: grouping e.rowid lets the
        # select list use any e column — must NOT fire
        tree = tree_of(db, AGG_SQL)
        tree.group_by.append(ast.ColumnRef("e", "rowid"))
        tree.select_items[0].expr = ast.ColumnRef("e", "salary")
        diagnostics = QTreeVerifier().verify(tree)
        assert errors_of(diagnostics, "qtree.group-consistency") == []

    def test_grouping_set_index_out_of_range(self, db):
        tree = tree_of(db, AGG_SQL)
        tree.grouping_sets = [[0], [7]]
        self.check(tree, "qtree.grouping-sets")

    def test_dangling_subquery_statement(self, db):
        tree = tree_of(db, SUBQ_SQL)
        subquery = next(iter(tree.subquery_exprs()))
        subquery.query = object()  # parser statement left unbuilt
        self.check(tree, "qtree.dangling-subquery")

    def test_setop_branch_arity_mismatch(self, db):
        tree = tree_of(
            db, "SELECT e.emp_id FROM employees e UNION ALL "
            "SELECT d.dept_id FROM departments d"
        )
        tree.branches[1].select_items.append(
            ast.SelectItem(ast.ColumnRef("d", "loc_id"), "extra")
        )
        self.check(tree, "qtree.setop-shape")

    def test_setop_unknown_operator(self, db):
        tree = tree_of(
            db, "SELECT e.emp_id FROM employees e UNION "
            "SELECT d.dept_id FROM departments d"
        )
        tree.op = "EXCEPT ALL"
        self.check(tree, "qtree.setop-shape")

    def test_empty_select_list(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.select_items = []
        self.check(tree, "qtree.select-shape")

    def test_negative_rownum_limit(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.rownum_limit = -3
        self.check(tree, "qtree.select-shape")


class TestPlanInvariants:
    def plan_of(self, db, sql):
        # these tests corrupt the chosen plan in place; the subplan memo
        # shares plan objects across statements, so a test that mutates
        # one must opt out of sharing or it would poison the memo
        return db.optimize_tree(
            tree_of(db, sql), config=OptimizerConfig(plan_memo=False)
        ).plan

    def check(self, plan, rule):
        diagnostics = PlanVerifier().verify(plan)
        found = errors_of(diagnostics, rule)
        assert found, (
            f"expected {rule} to fire, got "
            f"{[d.format() for d in diagnostics]}"
        )
        return found

    def find(self, plan, cls):
        if isinstance(plan, cls):
            return plan
        for child in plan.children():
            found = self.find(child, cls)
            if found is not None:
                return found
        return None

    def test_alias_set_lies(self, db):
        plan = self.plan_of(db, JOIN_SQL)
        scan = self.find(plan, TableScan)
        scan.aliases = frozenset(["impostor"])
        self.check(plan, "plan.alias-consistency")

    def test_unknown_join_type(self, db):
        plan = self.plan_of(db, JOIN_SQL)
        join = self.find(plan, HashJoin) or self.find(plan, NestedLoopJoin) \
            or self.find(plan, MergeJoin)
        assert join is not None
        join.join_type = "FULL"
        self.check(plan, "plan.shape")

    def test_merge_join_cannot_do_anti_na(self, db):
        left = TableScan("a", "employees", [], 10.0, 10.0)
        right = TableScan("b", "departments", [], 10.0, 10.0)
        plan = MergeJoin(
            left, right, "ANTI_NA",
            [ast.ColumnRef("a", "dept_id")], [ast.ColumnRef("b", "dept_id")],
            [], 30.0, 5.0,
        )
        self.check(plan, "plan.join-method")

    def test_hash_anti_na_with_residual(self, db):
        left = TableScan("a", "employees", [], 10.0, 10.0)
        right = TableScan("b", "departments", [], 10.0, 10.0)
        plan = HashJoin(
            left, right, "ANTI_NA",
            [ast.ColumnRef("a", "dept_id")], [ast.ColumnRef("b", "dept_id")],
            [ast.BinOp(">", ast.ColumnRef("a", "salary"), ast.Literal(1))],
            30.0, 5.0,
        )
        self.check(plan, "plan.join-method")

    def test_hash_join_key_side_swapped(self, db):
        left = TableScan("a", "employees", [], 10.0, 10.0)
        right = TableScan("b", "departments", [], 10.0, 10.0)
        plan = HashJoin(
            left, right, "INNER",
            [ast.ColumnRef("b", "dept_id")],  # right-side column as left key
            [ast.ColumnRef("a", "dept_id")],
            [], 30.0, 5.0,
        )
        self.check(plan, "plan.join-keys")

    def test_hash_join_key_count_mismatch(self, db):
        left = TableScan("a", "employees", [], 10.0, 10.0)
        right = TableScan("b", "departments", [], 10.0, 10.0)
        plan = HashJoin(
            left, right, "INNER",
            [ast.ColumnRef("a", "dept_id"), ast.ColumnRef("a", "emp_id")],
            [ast.ColumnRef("b", "dept_id")],
            [], 30.0, 5.0,
        )
        self.check(plan, "plan.join-keys")

    def test_hash_right_side_parameterised_on_left(self, db):
        left = TableScan("a", "employees", [], 10.0, 10.0)
        right = TableScan(
            "b", "departments",
            [ast.BinOp("=", ast.ColumnRef("b", "dept_id"),
                       ast.ColumnRef("a", "dept_id"))],
            10.0, 10.0,
        )
        plan = HashJoin(
            left, right, "INNER",
            [ast.ColumnRef("a", "dept_id")], [ast.ColumnRef("b", "dept_id")],
            [], 30.0, 5.0,
        )
        self.check(plan, "plan.join-method")

    def test_sibling_branch_reference(self, db):
        left = TableScan("a", "employees", [], 10.0, 10.0)
        # b's scan filter references sibling a: only legal via nested-loop
        # binds or declared lateral correlation, neither of which holds
        right = TableScan(
            "b", "departments",
            [ast.BinOp("=", ast.ColumnRef("b", "dept_id"),
                       ast.ColumnRef("a", "dept_id"))],
            10.0, 10.0,
        )
        plan = HashJoin(
            left, right, "INNER",
            [ast.ColumnRef("a", "dept_id")], [ast.ColumnRef("b", "dept_id")],
            [], 30.0, 5.0,
        )
        self.check(plan, "plan.cross-branch")

    def test_conjunct_applied_twice(self, db):
        conjunct = ast.BinOp(">", ast.ColumnRef("a", "salary"), ast.Literal(1))
        scan = TableScan("a", "employees", [conjunct], 10.0, 10.0)
        plan = Filter(scan, [conjunct], 12.0, 5.0)
        self.check(plan, "plan.conjunct-placement")

    def test_covered_conjunct_reapplied_as_post_filter(self, db):
        plan = self.plan_of(
            db, "SELECT e.emp_id FROM employees e, departments d "
            "WHERE e.dept_id = d.dept_id"
        )
        from repro.optimizer.plans import IndexScan

        scan = self.find(plan, IndexScan)
        if scan is None or not scan.covered_conjuncts:
            pytest.skip("plan has no covered index probe")
        scan.post_conjuncts = scan.post_conjuncts + [
            scan.covered_conjuncts[0]
        ]
        self.check(plan, "plan.conjunct-placement")

    def test_setop_width_mismatch(self, db):
        one = Project(
            TableScan("a", "employees", [], 10.0, 10.0),
            [ast.SelectItem(ast.ColumnRef("a", "emp_id"), "c1")],
            11.0, 10.0,
        )
        two = Project(
            TableScan("b", "departments", [], 10.0, 10.0),
            [ast.SelectItem(ast.ColumnRef("b", "dept_id"), "c1"),
             ast.SelectItem(ast.ColumnRef("b", "loc_id"), "c2")],
            11.0, 10.0,
        )
        plan = SetOp("UNION ALL", [one, two], 25.0, 20.0)
        self.check(plan, "plan.arity")

    def test_view_width_mismatch(self, db):
        from repro.optimizer.plans import ViewScan

        body = Project(
            TableScan("a", "employees", [], 10.0, 10.0),
            [ast.SelectItem(ast.ColumnRef("a", "emp_id"), "c")],
            11.0, 10.0,
        )
        view = ViewScan("v", body, ["c", "phantom"], set(), [], 12.0, 10.0)
        self.check(view, "plan.arity")

    def test_index_eq_binds_must_prefix_index(self, db):
        plan = self.plan_of(
            db, "SELECT e.emp_id FROM employees e, departments d "
            "WHERE e.dept_id = d.dept_id"
        )
        from repro.optimizer.plans import IndexScan

        scan = self.find(plan, IndexScan)
        if scan is None or not scan.eq_binds:
            pytest.skip("plan has no index probe")
        scan.eq_binds = [("salary", scan.eq_binds[0][1])]
        self.check(plan, "plan.shape")

    def test_negative_stopkey(self, db):
        scan = TableScan("a", "employees", [], 10.0, 10.0)
        plan = Limit(scan, -1, 10.0, 0.0)
        self.check(plan, "plan.shape")

    def test_non_finite_cost(self, db):
        plan = self.plan_of(db, JOIN_SQL)
        plan.cost = float("inf")
        self.check(plan, "plan.cost-sanity")

    def test_negative_cardinality(self, db):
        plan = self.plan_of(db, JOIN_SQL)
        plan.cardinality = -4.0
        self.check(plan, "plan.cost-sanity")

    def test_limit_may_cost_less_than_child(self, db):
        scan = TableScan("a", "employees", [], 100.0, 1000.0)
        plan = Limit(scan, 10, 5.0, 10.0)  # stopkey scales the cost down
        assert errors_of(PlanVerifier().verify(plan)) == []


class _CorruptingTransformation(Transformation):
    """A fake heuristic rule that breaks every tree it touches."""

    name = "evil_rewrite"
    cost_based = False

    def __init__(self, catalog=None):
        pass

    def find_targets(self, root):
        from repro.transform.base import TargetRef

        poisoned = any(
            ref.qualifier == "ghost"
            for conjunct in root.where_conjuncts
            for ref in ast.column_refs_in(conjunct)
        )
        return [] if poisoned else [TargetRef(root.name, "block", 0)]

    def apply(self, root, target):
        root = root.clone()
        root.where_conjuncts.append(
            ast.BinOp("=", ast.ColumnRef("ghost", "x"), ast.Literal(1))
        )
        return root


class TestAuditor:
    def test_attribution_stamps_transformation_and_state(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.select_items[0].expr = ast.ColumnRef("e", "bogus")
        auditor = TransformationAuditor(db.catalog, raise_on_error=False)
        found = auditor.audit_tree(tree, "jppd(v@qb$1)", (0, 1, 0))
        assert found and found[0].transformation == "jppd(v@qb$1)"
        assert found[0].state == (0, 1, 0)
        assert "jppd" in found[0].format() and "010" in found[0].format()

    def test_paranoid_mode_raises(self, db):
        tree = tree_of(db, JOIN_SQL)
        tree.select_items[0].expr = ast.ColumnRef("e", "bogus")
        auditor = TransformationAuditor(db.catalog)
        with pytest.raises(VerificationError) as excinfo:
            auditor.audit_tree(tree, "spj_merge")
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostics[0].transformation == "spj_merge"

    def test_report_mode_accumulates(self, db):
        auditor = TransformationAuditor(db.catalog, raise_on_error=False)
        good = tree_of(db, JOIN_SQL)
        bad = tree_of(db, JOIN_SQL)
        bad.select_items[0].expr = ast.ColumnRef("e", "bogus")
        auditor.audit_tree(good, "step1")
        auditor.audit_tree(bad, "step2")
        assert not auditor.report.ok
        assert all(d.transformation == "step2"
                   for d in auditor.report.errors)

    def test_heuristic_pipeline_blames_the_rewrite(self, db, monkeypatch):
        monkeypatch.setattr(
            pipeline, "build_heuristic_transformations",
            lambda catalog: [_CorruptingTransformation()],
        )
        auditor = TransformationAuditor(db.catalog)
        tree = tree_of(db, JOIN_SQL)
        with pytest.raises(VerificationError) as excinfo:
            pipeline.apply_heuristic_phase(
                tree, db.catalog, auditor=auditor
            )
        assert excinfo.value.diagnostics[0].transformation == "evil_rewrite"

    def test_cbqt_search_blames_alternative_and_state(self, monkeypatch):
        from repro.transform.costbased import UnnestSubqueryToView

        db = build_tiny_db()
        original = UnnestSubqueryToView.apply

        def corrupting(self, root, target):
            root = original(self, root, target)
            for block in root.iter_blocks():
                for item in block.from_items:
                    if item.is_derived:
                        block.where_conjuncts.append(ast.BinOp(
                            "=", ast.ColumnRef("ghost", "x"), ast.Literal(1)
                        ))
                        return root
            return root

        monkeypatch.setattr(UnnestSubqueryToView, "apply", corrupting)
        config = OptimizerConfig()
        from dataclasses import replace

        config = replace(
            config, cbqt=replace(config.cbqt, debug_checks=True)
        )
        with pytest.raises(VerificationError) as excinfo:
            db.optimize_tree(db.parse(SUBQ_SQL), config=config)
        blamed = excinfo.value.diagnostics[0]
        assert blamed.transformation and "unnest_view" in blamed.transformation
        assert blamed.state is not None and any(blamed.state)


class TestCheckApi:
    def test_clean_query_reports_ok(self, db):
        report = db.check(JOIN_SQL)
        assert report.ok
        assert "ok" in report.format()

    def test_check_collects_instead_of_raising(self, monkeypatch):
        from repro.transform.costbased import UnnestSubqueryToView

        db = build_tiny_db()
        original = UnnestSubqueryToView.apply

        def corrupting(self, root, target):
            root = original(self, root, target)
            next(root.iter_blocks()).where_conjuncts.append(ast.BinOp(
                "=", ast.ColumnRef("ghost", "x"), ast.Literal(1)
            ))
            return root

        monkeypatch.setattr(UnnestSubqueryToView, "apply", corrupting)
        report = db.check(SUBQ_SQL)
        assert not report.ok
        assert any("ghost" in d.message for d in report.errors)
        assert any(d.transformation for d in report.errors)

    def test_explain_surfaces_warnings(self, db):
        # cross-join query: the connectivity warning must reach explain
        text = db.explain(
            "SELECT e.emp_id FROM employees e, departments d "
            "WHERE e.salary > 1000"
        )
        assert "qtree.join-connected" in text


class TestDiagnosticPlumbing:
    def test_report_format_counts(self):
        report = DiagnosticReport(context="unit")
        report.extend([
            Diagnostic("r.a", "error", "broken"),
            Diagnostic("r.b", "warning", "odd"),
        ])
        text = report.format()
        assert "1 error(s)" in text and "1 warning(s)" in text
        assert not report.ok

    def test_attributed_preserves_existing_blame(self):
        already = Diagnostic("r", "error", "m", transformation="first")
        fresh = Diagnostic("r", "error", "m")
        out = attributed([already, fresh], "second", (1,))
        assert out[0].transformation == "first"
        assert out[1].transformation == "second" and out[1].state == (1,)


class TestCliCheck:
    def make_shell(self):
        import io

        from repro.cli import Shell

        out = io.StringIO()
        shell = Shell(out=out)
        return shell, out

    def seed(self, shell):
        shell.db.execute_ddl(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT)"
        )
        shell.db.insert("t", [{"id": i, "v": i % 3} for i in range(20)])
        shell.db.analyze()

    def test_check_subcommand_ok(self):
        from repro.cli import _cmd_check

        shell, out = self.make_shell()
        self.seed(shell)
        status = _cmd_check(["SELECT t.id FROM t WHERE t.v = 1"], shell)
        assert status == 0
        assert "ok" in out.getvalue()

    def test_check_subcommand_usage(self):
        from repro.cli import _cmd_check

        shell, out = self.make_shell()
        assert _cmd_check([], shell) == 2

    def test_checks_meta_toggle(self):
        shell, out = self.make_shell()
        shell.run_line(".checks on")
        assert shell.db.config.cbqt.debug_checks is True
        shell.run_line(".checks off")
        assert shell.db.config.cbqt.debug_checks is False
        assert "debug checks" in out.getvalue()
