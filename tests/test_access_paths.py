"""Access-path generation unit tests."""

import pytest

from repro.catalog import Catalog, Column, DataType, Index, TableDef
from repro.catalog.statistics import ColumnStats, TableStats
from repro.optimizer.access_paths import base_table_paths
from repro.optimizer.costmodel import DEFAULT_COST_MODEL
from repro.optimizer.plans import IndexScan, TableScan
from repro.sql import ast


def make_table():
    catalog = Catalog()
    table = catalog.add_table(TableDef(
        "t",
        [Column("id", DataType.INT, True), Column("a", DataType.INT),
         Column("b", DataType.INT), Column("c", DataType.INT)],
        primary_key=("id",),
    ))
    catalog.add_index(Index("t_ab", "t", ("a", "b")))
    return catalog, table


class FakeStats:
    def __init__(self, rows=1000):
        self.rows = rows

    def column_stats(self, alias, column):
        return ColumnStats(num_distinct=50)

    def table_stats(self, alias):
        return TableStats(row_count=self.rows)


def eq(col, value):
    return ast.BinOp("=", ast.ColumnRef("t", col), ast.Literal(value))


def lt(col, value):
    return ast.BinOp("<", ast.ColumnRef("t", col), ast.Literal(value))


def paths_for(conjuncts, local_aliases={"t"}):
    catalog, table = make_table()
    stats = FakeStats()
    table_stats = TableStats(row_count=1000)
    return base_table_paths(
        "t", table, table_stats, conjuncts, set(local_aliases), stats,
        DEFAULT_COST_MODEL,
    )


class TestFullScan:
    def test_scan_always_present(self):
        paths = paths_for([])
        assert any(isinstance(p, TableScan) for p in paths)

    def test_scan_embeds_local_conjuncts(self):
        paths = paths_for([eq("c", 5)])
        scan = next(p for p in paths if isinstance(p, TableScan))
        assert len(scan.conjuncts) == 1
        assert scan.cardinality < 1000

    def test_scan_excludes_sibling_join_conjuncts(self):
        join = ast.BinOp(
            "=", ast.ColumnRef("t", "a"), ast.ColumnRef("u", "x")
        )
        paths = paths_for([join], local_aliases={"t", "u"})
        scan = next(p for p in paths if isinstance(p, TableScan))
        assert scan.conjuncts == []


class TestIndexPaths:
    def test_pk_equality_gives_unique_probe(self):
        paths = paths_for([eq("id", 7)])
        index_paths = [p for p in paths if isinstance(p, IndexScan)]
        assert any(p.index.name == "t_pk" for p in index_paths)
        probe = next(p for p in index_paths if p.index.name == "t_pk")
        assert probe.cardinality < 50

    def test_composite_prefix_plus_range(self):
        paths = paths_for([eq("a", 1), lt("b", 9)])
        composite = next(
            p for p in paths
            if isinstance(p, IndexScan) and p.index.name == "t_ab"
        )
        assert [c for c, _e in composite.eq_binds] == ["a"]
        assert composite.range_bind[0] == "b"

    def test_range_only_on_leading_column(self):
        paths = paths_for([lt("a", 3)])
        assert any(
            isinstance(p, IndexScan) and p.index.name == "t_ab"
            and p.range_bind is not None
            for p in paths
        )

    def test_no_index_on_non_leading_column(self):
        paths = paths_for([eq("b", 3)])
        assert not any(
            isinstance(p, IndexScan) and p.index.name == "t_ab"
            for p in paths
        )

    def test_parameterised_probe_from_sibling(self):
        join = ast.BinOp(
            "=", ast.ColumnRef("t", "a"), ast.ColumnRef("u", "x")
        )
        paths = paths_for([join], local_aliases={"t", "u"})
        probe = next(
            (p for p in paths
             if isinstance(p, IndexScan) and p.index.name == "t_ab"),
            None,
        )
        assert probe is not None
        assert probe.outer_aliases() == {"u"}
        assert join in probe.covered_conjuncts

    def test_correlation_parameter_probe(self):
        # reference to an alias outside the block: a runtime bind
        corr = ast.BinOp(
            "=", ast.ColumnRef("t", "a"), ast.ColumnRef("outer", "k")
        )
        paths = paths_for([corr], local_aliases={"t"})
        probe = next(
            (p for p in paths
             if isinstance(p, IndexScan) and p.index.name == "t_ab"),
            None,
        )
        assert probe is not None
        assert probe.outer_aliases() == {"outer"}

    def test_residual_conjuncts_post_filtered(self):
        paths = paths_for([eq("a", 1), eq("c", 2)])
        composite = next(
            p for p in paths
            if isinstance(p, IndexScan) and p.index.name == "t_ab"
        )
        assert len(composite.post_conjuncts) == 1

    def test_subquery_conjuncts_never_bind(self):
        sub = ast.SubqueryExpr("SCALAR", query=None)
        conjunct = ast.BinOp("=", ast.ColumnRef("t", "a"), sub)
        paths = paths_for([conjunct])
        assert not any(isinstance(p, IndexScan) for p in paths)
