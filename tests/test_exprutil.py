"""Expression-rewriting utility tests."""

import pytest

from repro.qtree import exprutil
from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.sql.render import render_expr


def qualified(text):
    """Parse and qualify bare columns with alias 't'."""
    expr = parse_expression(text)

    def fix(node):
        if isinstance(node, ast.ColumnRef) and node.qualifier is None:
            return ast.ColumnRef("t", node.name)
        return None

    return exprutil.map_expr(expr, fix)


class TestMapExpr:
    def test_identity_rebuild_is_deep_copy(self):
        expr = qualified("a + b * 2")
        copy = exprutil.map_expr(expr, lambda _n: None)
        assert render_expr(copy) == render_expr(expr)
        assert copy is not expr
        assert copy.left is not expr.left

    def test_replacement_applies_bottom_up(self):
        expr = qualified("a + a")

        def double(node):
            if isinstance(node, ast.ColumnRef):
                return ast.Literal(5)
            return None

        replaced = exprutil.map_expr(expr, double)
        assert render_expr(replaced) == "5 + 5"

    def test_subquery_left_side_rewritten(self):
        sub = ast.SubqueryExpr(
            "IN", query=None, left=qualified("a"), negated=False
        )

        def rename(node):
            if isinstance(node, ast.ColumnRef):
                return ast.ColumnRef("x", node.name)
            return None

        rewritten = exprutil.map_expr(sub, rename)
        assert rewritten.left.qualifier == "x"


class TestSubstituteColumns:
    def test_simple_substitution(self):
        expr = qualified("a + b")
        mapping = {("t", "a"): ast.Literal(9)}
        result = exprutil.substitute_columns(expr, mapping)
        assert render_expr(result) == "9 + t.b"

    def test_substitution_clones_replacement(self):
        replacement = qualified("c * 2")
        mapping = {("t", "a"): replacement}
        one = exprutil.substitute_columns(qualified("a"), mapping)
        two = exprutil.substitute_columns(qualified("a"), mapping)
        assert one is not two
        assert render_expr(one) == render_expr(two) == "t.c * 2"

    def test_unmapped_columns_untouched(self):
        result = exprutil.substitute_columns(
            qualified("a"), {("u", "a"): ast.Literal(1)}
        )
        assert render_expr(result) == "t.a"


class TestRenameQualifiers:
    def test_rename(self):
        expr = qualified("a = b")
        renamed = exprutil.rename_qualifiers(expr, {"t": "u"})
        assert render_expr(renamed) == "u.a = u.b"

    def test_partial_rename(self):
        expr = ast.BinOp("=", ast.ColumnRef("t", "a"), ast.ColumnRef("s", "b"))
        renamed = exprutil.rename_qualifiers(expr, {"s": "z"})
        assert render_expr(renamed) == "t.a = z.b"


class TestAliasesReferenced:
    def test_plain(self):
        expr = ast.BinOp("=", ast.ColumnRef("a", "x"), ast.ColumnRef("b", "y"))
        assert exprutil.aliases_referenced(expr) == {"a", "b"}

    def test_literals_have_no_refs(self):
        assert exprutil.aliases_referenced(ast.Literal(3)) == set()

    def test_equality_columns_matcher(self):
        expr = ast.BinOp("=", ast.ColumnRef("a", "x"), ast.ColumnRef("b", "y"))
        pair = exprutil.equality_columns(expr)
        assert pair is not None
        assert pair[0].qualifier == "a"

    def test_equality_columns_rejects_same_alias(self):
        expr = ast.BinOp("=", ast.ColumnRef("a", "x"), ast.ColumnRef("a", "y"))
        assert exprutil.equality_columns(expr) is None

    def test_equality_columns_rejects_non_eq(self):
        expr = ast.BinOp("<", ast.ColumnRef("a", "x"), ast.ColumnRef("b", "y"))
        assert exprutil.equality_columns(expr) is None


class TestNormalizePredicate:
    def check(self, before, after):
        normalized = exprutil.normalize_predicate(qualified(before))
        assert render_expr(normalized) == after

    def test_not_comparison(self):
        self.check("NOT (a = 1)", "t.a <> 1")
        self.check("NOT (a < 1)", "t.a >= 1")

    def test_double_negation(self):
        self.check("NOT (NOT (a = 1))", "t.a = 1")

    def test_de_morgan(self):
        self.check("NOT (a = 1 AND b = 2)", "t.a <> 1 OR t.b <> 2")
        self.check("NOT (a = 1 OR b = 2)", "t.a <> 1 AND t.b <> 2")

    def test_not_in_list(self):
        normalized = exprutil.normalize_predicate(qualified("NOT (a IN (1, 2))"))
        assert isinstance(normalized, ast.InList)
        assert normalized.negated

    def test_not_is_null(self):
        normalized = exprutil.normalize_predicate(qualified("NOT (a IS NULL)"))
        assert isinstance(normalized, ast.IsNull)
        assert normalized.negated

    def test_nested_and_flattened(self):
        expr = ast.And([
            ast.And([qualified("a = 1"), qualified("b = 2")]),
            qualified("c = 3"),
        ])
        normalized = exprutil.normalize_predicate(expr)
        assert isinstance(normalized, ast.And)
        assert len(normalized.operands) == 3

    def test_quantified_normalisation(self):
        sub = ast.SubqueryExpr(
            "QUANTIFIED", query=None, left=qualified("a"),
            op="=", quantifier="ANY",
        )
        normalized = exprutil.normalize_predicate(sub)
        assert normalized.kind == "IN"
        assert not normalized.negated

    def test_not_any_becomes_all(self):
        sub = ast.Not(ast.SubqueryExpr(
            "QUANTIFIED", query=None, left=qualified("a"),
            op="<", quantifier="ANY",
        ))
        normalized = exprutil.normalize_predicate(sub)
        assert normalized.kind == "QUANTIFIED"
        assert normalized.op == ">="
        assert normalized.quantifier == "ALL"


class TestConjunctHelpers:
    def test_conjuncts_of_none(self):
        assert ast.conjuncts_of(None) == []

    def test_conjuncts_of_flattens(self):
        expr = ast.And([
            qualified("a = 1"),
            ast.And([qualified("b = 2"), qualified("c = 3")]),
        ])
        assert len(ast.conjuncts_of(expr)) == 3

    def test_make_conjunction_roundtrip(self):
        conjuncts = [qualified("a = 1"), qualified("b = 2")]
        combined = ast.make_conjunction(conjuncts)
        assert ast.conjuncts_of(combined) == conjuncts

    def test_make_conjunction_single(self):
        single = [qualified("a = 1")]
        assert ast.make_conjunction(single) is single[0]

    def test_make_conjunction_empty(self):
        assert ast.make_conjunction([]) is None

    def test_disjuncts_of(self):
        expr = ast.Or([qualified("a = 1"), qualified("b = 2")])
        assert len(ast.disjuncts_of(expr)) == 2
