"""Concurrency regression tests for the shared serving substrate:
registry thread-safety (metrics, quarantine), single-flight hard
parsing, invalidation racing lookup, and copy-on-write storage
atomicity — the invariants the multi-session server leans on.
"""

from __future__ import annotations

import threading
import time

from repro import Database, QueryService
from repro.obs import MetricsRegistry
from repro.resilience import QuarantineRegistry


def _run_threads(n: int, target, *args) -> list[threading.Thread]:
    barrier = threading.Barrier(n)

    def wrapped(*thread_args):
        barrier.wait()
        target(*thread_args)

    threads = [
        threading.Thread(target=wrapped, args=(i, *args)) for i in range(n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    return threads


# -- satellite: registry lock-contention smoke tests -------------------------


def test_metrics_registry_contention():
    """N threads hammering one counter/histogram must lose no updates
    (and concurrent snapshots must not crash or deadlock)."""
    registry = MetricsRegistry()
    threads, per_thread = 8, 2000
    errors: list[BaseException] = []

    def worker(i: int):
        try:
            for k in range(per_thread):
                registry.counter("hot").inc()
                registry.histogram("lat").record(float(k))
                if k % 500 == 0:
                    registry.snapshot()
        except BaseException as exc:  # noqa: B036 - surface to the assert
            errors.append(exc)

    _run_threads(threads, worker)
    assert not errors
    assert registry.counter("hot").value == threads * per_thread
    snap = registry.histogram("lat").snapshot()
    assert snap["count"] == threads * per_thread


def test_quarantine_registry_contention():
    """Concurrent failure recording loses no counts; concurrent resets
    interleaved with reads neither crash nor corrupt the ledger."""
    registry = QuarantineRegistry(statement_threshold=3, global_threshold=10 ** 9)
    threads, per_thread = 8, 500
    errors: list[BaseException] = []

    def record(i: int):
        try:
            for k in range(per_thread):
                registry.record_failure("jppd", f"stmt-{k % 7}")
                registry.is_quarantined("jppd", f"stmt-{k % 7}")
        except BaseException as exc:  # noqa: B036
            errors.append(exc)

    _run_threads(threads, record)
    assert not errors
    assert registry.failures("jppd") == threads * per_thread

    def churn(i: int):
        try:
            for k in range(200):
                if i % 2:
                    registry.record_failure("unnest_view", f"s{k}")
                    registry.snapshot()
                else:
                    registry.reset("unnest_view")
        except BaseException as exc:  # noqa: B036
            errors.append(exc)

    epoch_before = registry.epoch
    _run_threads(4, churn)
    assert not errors
    assert registry.epoch == epoch_before + 2 * 200
    registry.snapshot()  # still consistent


# -- satellite: plan-cache races ---------------------------------------------


def _served_db() -> tuple[Database, QueryService]:
    db = Database()
    db.execute_ddl("CREATE TABLE r (id INT PRIMARY KEY, grp INT)")
    db.insert("r", [{"id": i, "grp": i % 4} for i in range(120)])
    db.analyze()
    return db, QueryService(db)


def test_concurrent_hard_parse_single_flight():
    """N threads missing on the same statement elect one leader: the
    statement is optimized exactly once and everyone shares the stored
    entry (no thundering herd)."""
    db, service = _served_db()
    sql = "SELECT grp, COUNT(*) FROM r GROUP BY grp ORDER BY grp"
    expected = db.reference_execute(sql)
    threads = 8
    results: list = [None] * threads

    def worker(i: int):
        results[i] = service.execute(sql)

    _run_threads(threads, worker)
    assert all(list(r.rows) == expected for r in results)
    # exactly one optimization ran across all 8 concurrent callers
    assert db.metrics.counter("optimizer.statements").value == 1
    assert len(service.cache) == 1
    snap = service.metrics.snapshot()
    assert snap["misses"] == 1
    # everyone else either waited on the leader's gate or arrived after
    # the store; in both cases they were served the shared entry
    assert snap["hits"] == threads - 1
    assert snap["single_flight_waits"] <= threads - 1


def test_single_flight_distinct_statements_do_not_serialize():
    """The gate is per cache key: different statements parsed
    concurrently each hard parse once, independently."""
    db, service = _served_db()
    statements = [
        f"SELECT COUNT(*) FROM r WHERE grp = {g}" for g in range(4)
    ]

    def worker(i: int):
        service.execute(statements[i % len(statements)])

    _run_threads(8, worker)
    assert db.metrics.counter("optimizer.statements").value == len(statements)
    assert len(service.cache) == len(statements)


def test_invalidation_racing_lookup_stays_correct():
    """Readers soft/hard parsing while ANALYZE and inserts bump the
    dependency versions: every result stays correct, no lookup crashes,
    and the cache converges to a valid entry afterwards."""
    db, service = _served_db()
    sql = "SELECT COUNT(*) FROM r WHERE grp = 1"
    errors: list[BaseException] = []
    stop = threading.Event()

    def reader(i: int):
        try:
            while not stop.is_set():
                result = service.execute(sql)
                count = result.rows[0][0]
                # rows only grow, in batches of 4 with one grp=1 each
                if count < 30 or count != int(count):
                    errors.append(AssertionError(f"bad count {count}"))
                    return
        except BaseException as exc:  # noqa: B036
            errors.append(exc)

    def mutator():
        try:
            for n in range(15):
                base = 120 + n * 4
                db.insert("r", [
                    {"id": base + j, "grp": j} for j in range(4)
                ])
                db.analyze("r")
                time.sleep(0.005)
        except BaseException as exc:  # noqa: B036
            errors.append(exc)
        finally:
            stop.set()

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
    writer = threading.Thread(target=mutator)
    for thread in threads:
        thread.start()
    writer.start()
    writer.join(timeout=60)
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors[0]
    # versions settled: one more execute must land a hit on a valid entry
    assert service.execute(sql).rows[0][0] == 30 + 15
    assert service.execute(sql).cache_status == "hit"
    assert service.metrics.snapshot()["invalidations"] >= 1


# -- copy-on-write storage atomicity -----------------------------------------


def test_cow_storage_batch_is_all_or_nothing_under_readers():
    """Direct storage-level check beneath the server tests: snapshots
    pinned during a batched insert see only whole batches."""
    db = Database()
    db.execute_ddl("CREATE TABLE w (id INT PRIMARY KEY, b INT)")
    batch, rounds = 5, 50
    errors: list[str] = []
    done = threading.Event()

    def writer():
        for n in range(rounds):
            db.insert("w", [
                {"id": n * batch + j, "b": n} for j in range(batch)
            ])
        done.set()

    def reader():
        while not done.is_set():
            snap = db.read_snapshot()
            count = snap.storage.get("w").row_count
            if count % batch != 0:
                errors.append(f"torn snapshot: {count} rows")
                return

    threads = [threading.Thread(target=reader) for _ in range(3)]
    writer_thread = threading.Thread(target=writer)
    for thread in threads:
        thread.start()
    writer_thread.start()
    writer_thread.join(timeout=60)
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors[0]
    assert db.storage.get("w").row_count == batch * rounds
