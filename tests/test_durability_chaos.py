"""Crash-fault chaos: kill -9 a real process mid-commit, recover, and
check the acknowledged history against a differential oracle.

The child process runs a deterministic committed-batch workload with
``fsync="always"`` and prints one ``ACK <batch>`` line (flushed) after
each commit returns.  The parent kills it with SIGKILL at a
seed-randomized moment, reopens the data directory, and asserts the
durability contract:

* **no acked loss** — every batch acknowledged before the kill is fully
  present after recovery;
* **no partial batch** — a batch is present completely or not at all
  (the kill may land between WAL append and the ACK write, so *one*
  unacked batch may legitimately survive — but never a fraction);
* **recovery never errors** — a torn final record is truncated, and
  ``verify_recovery`` (the ``recover --verify`` path) passes.

Seeds are driven by ``REPRO_CHAOS_SEED`` so the CI matrix explores
different kill timings; the default sweeps three seeds.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro import Database, DurabilityConfig
from repro.durability import (
    CHECKPOINT_FILENAME,
    WAL_FILENAME,
    verify_recovery,
)

#: rows per committed batch; the oracle checks divisibility against it
BATCH_ROWS = 5
#: batches the child attempts per run (it is normally killed first)
MAX_BATCHES = 400

#: the workload the child runs — kept in one place so the parent-side
#: oracle and the child cannot drift apart
CHILD_SOURCE = """
import sys
from repro import Database, DurabilityConfig

data_dir, start_batch = sys.argv[1], int(sys.argv[2])
db = Database(data_dir=data_dir, durability=DurabilityConfig(fsync="always"))
if not db.catalog.has_table("chaos"):
    db.execute_ddl(
        "CREATE TABLE chaos (id INT PRIMARY KEY, batch INT, v INT)"
    )
    print("ACK ddl", flush=True)
for batch in range(start_batch, start_batch + {max_batches}):
    rows = [
        {{"id": batch * {batch_rows} + i, "batch": batch, "v": i}}
        for i in range({batch_rows})
    ]
    db.insert("chaos", rows)
    print(f"ACK {{batch}}", flush=True)
""".format(max_batches=MAX_BATCHES, batch_rows=BATCH_ROWS)


def _spawn_child(data_dir: str, start_batch: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH"),
        ] if p
    )
    return subprocess.Popen(
        [sys.executable, "-u", "-c", CHILD_SOURCE, data_dir, str(start_batch)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _run_until_killed(
    data_dir: str, start_batch: int, rng: random.Random
) -> list[int]:
    """Run the child, SIGKILL it after a random number of ACKs, and
    return the batches acknowledged before death."""
    child = _spawn_child(data_dir, start_batch)
    kill_after = rng.randint(2, 25)
    lines: list[str] = []
    try:
        for line in child.stdout:
            lines.append(line)
            if len(lines) >= kill_after:
                # land the kill at an uncontrolled point inside a later
                # commit: a short random sleep races the child, which
                # keeps committing into the pipe buffer meanwhile
                time.sleep(rng.random() * 0.01)
                child.kill()
                break
        # drain ACKs buffered between our last read and the kill — the
        # child printed them after its commit returned, so they count
        rest, _ = child.communicate(timeout=30)
        lines.extend(rest.splitlines())
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL, (
        f"child exited {child.returncode}, expected SIGKILL"
    )
    acked: list[int] = []
    for line in lines:
        line = line.strip()
        if line.startswith("ACK ") and line != "ACK ddl":
            acked.append(int(line.split()[1]))
    return acked


def _check_recovered(data_dir: str, acked: list[int], kills: int) -> int:
    """Assert the durability contract over the recovered state; returns
    the highest batch present (the restart point for the next round).

    *kills* bounds the permissible unacked survivors: each SIGKILL can
    land between the WAL append and the ACK write, stranding at most
    one durable-but-unacknowledged batch per crash."""
    db = Database(
        data_dir=data_dir, durability=DurabilityConfig(fsync="always")
    )
    try:
        assert db.catalog.has_table("chaos"), "DDL lost"
        per_batch: dict[int, int] = {}
        for row in db.storage.get("chaos").rows:
            per_batch[row["batch"]] = per_batch.get(row["batch"], 0) + 1
        present = sorted(per_batch)
        # no partial batch — all-or-nothing at the WAL record boundary
        partial = {b: n for b, n in per_batch.items() if n != BATCH_ROWS}
        assert not partial, f"partial batches after recovery: {partial}"
        # no acked loss — everything acknowledged pre-kill survived
        lost = [b for b in acked if b not in per_batch]
        assert not lost, f"acked batches lost: {lost}"
        # at most one in-flight unacked batch may surface per crash
        extra = [b for b in present if b not in acked]
        assert len(extra) <= kills, f"impossible extra batches: {extra}"
        return (present[-1] + 1) if present else 0
    finally:
        db.close()


def _chaos_seed_matrix() -> list[int]:
    env = os.environ.get("REPRO_CHAOS_SEED")
    if env:
        return [int(env)]
    return [101, 211, 307]


@pytest.mark.parametrize("seed", _chaos_seed_matrix())
def test_kill9_mid_commit_recovers_every_acked_batch(tmp_path, seed):
    """Three kill/recover/restart rounds per seed, with a checkpoint
    between rounds two and three so both the WAL-only and the
    checkpoint+tail recovery paths face a real SIGKILL."""
    data_dir = str(tmp_path / "chaos")
    rng = random.Random(seed)
    acked_all: list[int] = []
    start_batch = 0
    for round_no in range(3):
        acked = _run_until_killed(data_dir, start_batch, rng)
        acked_all.extend(acked)
        start_batch = _check_recovered(data_dir, acked_all, round_no + 1)
        if round_no == 1:
            db = Database(
                data_dir=data_dir,
                durability=DurabilityConfig(fsync="always"),
            )
            db.checkpoint()
            db.close()
    report = verify_recovery(
        data_dir,
        os.path.join(data_dir, WAL_FILENAME),
        os.path.join(data_dir, CHECKPOINT_FILENAME),
    )
    assert report.last_lsn >= len(acked_all)
