"""Regression tests for the concurrency defects surfaced by
``python -m repro staticcheck`` (PR 8) and fixed in the same change:

* executor row loops over **materialized** inputs (Sort, GroupBy,
  WindowCompute, SetOp) now poll the statement's
  :class:`~repro.resilience.CancelToken` per output row, so a cancel or
  deadline lands mid-loop instead of only between operators;
* ``Counter.value`` reads under the counter's lock (a torn read could
  miss a concurrent increment on implementations without atomic ints);
* ``SessionRegistry.get``/``remove``/``reap_idle`` keep the session's
  ``closed`` flag under ``session.lock``, so a racing lookup never
  resurrects a half-removed session;
* ``MetricsRegistry.snapshot`` re-raises :class:`VerificationError`
  from collectors instead of folding it into the broken-collector
  error entry;
* the HTTP transport maps :class:`VerificationError` to **500** (an
  engine invariant broke — a server bug), never the generic 400;
* ``QuarantineRegistry.epoch`` is read under the registry lock, and
  ``reset()`` racing ``record_failure``/``is_quarantined`` keeps the
  ledger consistent (the dedicated stress test below).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import Database
from repro.errors import (
    SessionNotFound,
    StatementCancelled,
    VerificationError,
)
from repro.obs import MetricsRegistry
from repro.resilience import CancelToken, QuarantineRegistry
from repro.server import ReproServer, ServerConfig
from repro.server.http import _status_for, make_http_server
from repro.server.sessions import ServerSession, SessionRegistry

N_ROWS = 240


class TripwireToken(CancelToken):
    """Cancels itself after a fixed number of ``check()`` polls — turns
    "a cancel arrives mid-loop" into a deterministic event."""

    def __init__(self, trip_after: int):
        super().__init__()
        self.trip_after = trip_after

    def check(self) -> None:
        if self.checks + 1 >= self.trip_after:
            self.cancel()
        super().check()


@pytest.fixture(scope="module")
def db() -> Database:
    database = Database()
    database.execute_ddl(
        "CREATE TABLE t (id INT PRIMARY KEY, grp INT, v INT)"
    )
    database.insert("t", [
        {"id": i, "grp": i % 5, "v": (i * 37) % N_ROWS}
        for i in range(N_ROWS)
    ])
    database.analyze()
    return database


MATERIALIZED_LOOP_QUERIES = [
    pytest.param("SELECT id, v FROM t ORDER BY v, id", id="sort"),
    pytest.param(
        "SELECT grp, COUNT(*), SUM(v) FROM t GROUP BY grp", id="groupby"
    ),
    pytest.param(
        "SELECT id, SUM(v) OVER (PARTITION BY grp ORDER BY id) FROM t",
        id="window",
    ),
    pytest.param("SELECT id FROM t UNION ALL SELECT v FROM t", id="union-all"),
    pytest.param("SELECT grp FROM t UNION SELECT v FROM t", id="union"),
    pytest.param(
        "SELECT id FROM t INTERSECT SELECT v FROM t", id="intersect"
    ),
]


class TestMaterializedLoopCancellation:
    @pytest.mark.parametrize("sql", MATERIALIZED_LOOP_QUERIES)
    def test_loops_poll_once_per_row(self, db, sql):
        """The fixed operators poll the token at least once per input
        row — the coverage the ``cancel.poll`` rule now enforces."""
        token = CancelToken()
        result = db.execute(sql, token=token, executor="row")
        assert result.rows  # sanity: the query actually ran
        assert token.checks >= N_ROWS

    @pytest.mark.parametrize("sql", MATERIALIZED_LOOP_QUERIES)
    def test_cancel_lands_mid_loop(self, db, sql):
        """A token tripping halfway through the row budget aborts the
        statement with the typed error, not after the loop finishes."""
        baseline = CancelToken()
        db.execute(sql, token=baseline, executor="row")
        token = TripwireToken(trip_after=baseline.checks // 2)
        with pytest.raises(StatementCancelled):
            db.execute(sql, token=token, executor="row")
        # the loop stopped polling (and working) once the trip fired:
        # well before the uncancelled run's total
        assert token.checks < baseline.checks


class TestCounterValueRead:
    def test_value_reads_are_locked_and_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hardening.test")
        stop = threading.Event()
        seen: list[int] = []

        def reader():
            while not stop.is_set():
                seen.append(counter.value)

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(20_000):
            counter.inc()
        stop.set()
        thread.join(timeout=30)
        assert counter.value == 20_000
        assert seen == sorted(seen)  # monotone: no torn/stale regressions


class TestSessionClosedFlagRace:
    def _registry(self) -> tuple[SessionRegistry, ServerSession]:
        registry = SessionRegistry(idle_timeout=3600.0)
        session = ServerSession(session=None)
        registry.add(session)
        return registry, session

    def test_get_after_remove_raises(self):
        registry, session = self._registry()
        assert registry.get(session.id) is session
        registry.remove(session.id)
        assert session.closed
        with pytest.raises(SessionNotFound):
            registry.get(session.id)

    def test_lookup_racing_remove_never_resurrects(self):
        """N getters racing one remove: every get() either returns the
        live session or raises SessionNotFound — nothing else."""
        for _ in range(40):
            registry, session = self._registry()
            barrier = threading.Barrier(5)
            outcomes: list[object] = []

            def lookup():
                barrier.wait()
                try:
                    outcomes.append(registry.get(session.id))
                except SessionNotFound:
                    outcomes.append("gone")

            def remove():
                barrier.wait()
                registry.remove(session.id)

            threads = [threading.Thread(target=lookup) for _ in range(4)]
            threads.append(threading.Thread(target=remove))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert all(o is session or o == "gone" for o in outcomes)
            # after the dust settles the session is definitively gone
            with pytest.raises(SessionNotFound):
                registry.get(session.id)

    def test_reap_bumps_total_under_lock(self):
        registry, session = self._registry()
        session.last_used = -10_000.0
        assert registry.reap_idle(now=0.0) == [session.id]
        assert registry.reaped_total == 1
        assert session.closed


class TestSnapshotErrorTaxonomy:
    def test_broken_collector_is_contained(self):
        registry = MetricsRegistry()
        registry.register_collector(
            "bad", lambda: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        snap = registry.snapshot()
        assert "boom" in str(snap["bad"]["error"])

    def test_verification_error_propagates(self):
        """An invariant violation must never be reduced to a metrics
        footnote — snapshot() re-raises it."""
        registry = MetricsRegistry()

        def collector() -> dict:
            raise VerificationError("invariant broke")

        registry.register_collector("paranoid", collector)
        with pytest.raises(VerificationError):
            registry.snapshot()


class TestVerificationErrorOverHttp:
    def test_status_mapping(self):
        assert _status_for(VerificationError("broke")) == 500

    def test_verification_error_is_500_not_400(self):
        database = Database()
        app = ReproServer(database=database, config=ServerConfig())
        server = make_http_server(app, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            def broken(session_id, sql, binds=None):
                raise VerificationError("plan invariant violated")

            app.explain = broken
            request = urllib.request.Request(
                f"http://{host}:{port}/sessions",
                data=b"{}", method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                session_id = json.loads(response.read())["session_id"]
            request = urllib.request.Request(
                f"http://{host}:{port}/sessions/{session_id}/explain",
                data=json.dumps({"sql": "SELECT 1"}).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=60)
            assert excinfo.value.code == 500
            payload = json.loads(excinfo.value.read())
            assert payload["error"]["type"] == "VerificationError"
        finally:
            server.shutdown()
            server.server_close()
            app.close()


class TestQuarantineResetStress:
    """Satellite: ``reset()`` racing ``record_failure``/``is_quarantined``
    (the epoch-read race is exactly what the analyzer flagged in the
    service's stale-plan re-attempt check)."""

    def test_reset_races_recording(self):
        registry = QuarantineRegistry(
            statement_threshold=2, global_threshold=10**9
        )
        names = [f"tf{i}" for i in range(4)]
        resets = 200
        errors: list[BaseException] = []
        barrier = threading.Barrier(6)
        done = threading.Event()

        def record(worker: int):
            barrier.wait()
            try:
                k = 0
                while not done.is_set():
                    name = names[k % len(names)]
                    registry.record_failure(name, f"stmt-{worker}")
                    registry.is_quarantined(name, f"stmt-{worker}")
                    registry.dirty()
                    k += 1
            except BaseException as exc:  # noqa: B036 - re-raised via list
                errors.append(exc)

        def reset():
            barrier.wait()
            try:
                for k in range(resets):
                    epoch_before = registry.epoch
                    if k % 3 == 0:
                        registry.reset()
                    else:
                        registry.reset(names[k % len(names)])
                    assert registry.epoch > epoch_before
                    registry.snapshot()
            except BaseException as exc:  # noqa: B036 - re-raised via list
                errors.append(exc)
            finally:
                done.set()

        threads = [
            threading.Thread(target=record, args=(i,)) for i in range(5)
        ]
        threads.append(threading.Thread(target=reset))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        # every reset bumped the epoch exactly once, none were lost
        assert registry.epoch == resets
        snap = registry.snapshot()
        assert snap["epoch"] == resets
        # ledger still internally consistent: a full reset drains it
        registry.reset()
        assert registry.epoch == resets + 1
        assert not registry.snapshot()["failures"]
        for name in names:
            assert registry.failures(name) == 0
