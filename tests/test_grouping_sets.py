"""ROLLUP / CUBE / GROUPING SETS and the group pruning transformation
(§2.1.4)."""

import random
from collections import Counter

import pytest

from repro import Database
from repro.errors import UnsupportedError
from repro.transform.base import apply_everywhere
from repro.transform.heuristic import GroupPruning


@pytest.fixture(scope="module")
def sales_db():
    db = Database()
    db.execute_ddl(
        "CREATE TABLE sales (country INT, state INT, city INT, amount INT)"
    )
    rng = random.Random(5)
    db.insert("sales", [
        {
            "country": rng.randint(1, 3),
            "state": rng.randint(1, 5),
            "city": None if rng.random() < 0.1 else rng.randint(1, 9),
            "amount": rng.randint(1, 100),
        }
        for _ in range(300)
    ])
    db.analyze()
    return db


ROLLUP_SQL = (
    "SELECT s.country, s.state, SUM(s.amount) FROM sales s "
    "GROUP BY ROLLUP (s.country, s.state)"
)


class TestRollupSemantics:
    def test_rollup_produces_all_levels(self, sales_db):
        rows = sales_db.execute(ROLLUP_SQL).rows
        # detail rows, per-country subtotals, grand total
        assert any(r[0] is not None and r[1] is not None for r in rows)
        subtotals = [r for r in rows if r[0] is not None and r[1] is None]
        assert len(subtotals) == 3
        grand = [r for r in rows if r[0] is None and r[1] is None]
        assert len(grand) == 1

    def test_grand_total_equals_sum(self, sales_db):
        rows = sales_db.execute(ROLLUP_SQL).rows
        grand = next(r for r in rows if r[0] is None and r[1] is None)
        total = sum(
            row["amount"] for row in sales_db.storage.get("sales").rows
        )
        assert grand[2] == total

    def test_rollup_matches_reference(self, sales_db):
        assert Counter(sales_db.execute(ROLLUP_SQL).rows) == Counter(
            sales_db.reference_execute(ROLLUP_SQL)
        )

    def test_cube_set_count(self, sales_db):
        sql = (
            "SELECT s.country, s.state, COUNT(*) FROM sales s "
            "GROUP BY CUBE (s.country, s.state)"
        )
        tree = sales_db.parse(sql)
        assert len(tree.grouping_sets) == 4
        assert Counter(sales_db.execute(sql).rows) == Counter(
            sales_db.reference_execute(sql)
        )

    def test_grouping_sets_explicit(self, sales_db):
        sql = (
            "SELECT s.country, s.state, SUM(s.amount) FROM sales s "
            "GROUP BY GROUPING SETS ((s.country), (s.state), ())"
        )
        tree = sales_db.parse(sql)
        assert len(tree.grouping_sets) == 3
        assert Counter(sales_db.execute(sql).rows) == Counter(
            sales_db.reference_execute(sql)
        )

    def test_grouping_function(self, sales_db):
        sql = (
            "SELECT s.country, GROUPING(s.country), GROUPING(s.state), "
            "SUM(s.amount) FROM sales s GROUP BY ROLLUP (s.country, s.state)"
        )
        rows = sales_db.execute(sql).rows
        for row in rows:
            country, g_country, g_state, _total = row
            assert g_country == (1 if country is None else 0)
        assert Counter(rows) == Counter(sales_db.reference_execute(sql))

    def test_null_data_vs_rollup_null_distinguished_by_grouping(self, sales_db):
        # city contains real NULLs; GROUPING() separates them from rollup
        sql = (
            "SELECT s.city, GROUPING(s.city), COUNT(*) FROM sales s "
            "GROUP BY ROLLUP (s.city)"
        )
        rows = sales_db.execute(sql).rows
        data_null = [r for r in rows if r[0] is None and r[1] == 0]
        rolled_up = [r for r in rows if r[0] is None and r[1] == 1]
        assert len(data_null) == 1       # the real-NULL city group
        assert len(rolled_up) == 1       # the grand total

    def test_expression_grouping_unsupported(self, sales_db):
        with pytest.raises(UnsupportedError):
            sales_db.parse(
                "SELECT SUM(s.amount) FROM sales s "
                "GROUP BY ROLLUP (s.country + 1)"
            )

    def test_having_applies_per_output_row(self, sales_db):
        sql = (
            "SELECT s.country, SUM(s.amount) FROM sales s "
            "GROUP BY ROLLUP (s.country) HAVING SUM(s.amount) > 1000"
        )
        assert Counter(sales_db.execute(sql).rows) == Counter(
            sales_db.reference_execute(sql)
        )


VIEW_SQL = (
    "SELECT v.country, v.state, v.total FROM "
    "(SELECT s.country, s.state, SUM(s.amount) AS total FROM sales s "
    "GROUP BY ROLLUP (s.country, s.state)) v "
)


class TestGroupPruning:
    def test_null_rejecting_filter_prunes_sets(self, sales_db):
        sql = VIEW_SQL + "WHERE v.state = 2"
        tree = sales_db.parse(sql)
        pruner = GroupPruning(sales_db.catalog)
        targets = pruner.find_targets(tree)
        assert len(targets) == 1
        tree = pruner.apply(tree, targets[0])
        view = tree.from_items[0].subquery
        # only the full (country, state) set survives -> plain GROUP BY
        assert view.grouping_sets is None
        assert Counter(sales_db.execute(sql).rows) == Counter(
            sales_db.reference_execute(sql)
        )

    def test_filter_on_outer_column_prunes_partially(self, sales_db):
        sql = VIEW_SQL + "WHERE v.country = 1"
        tree = sales_db.parse(sql)
        pruner = GroupPruning(sales_db.catalog)
        tree = pruner.apply(tree, pruner.find_targets(tree)[0])
        view = tree.from_items[0].subquery
        # sets (country) and (country, state) survive; () is pruned
        assert view.grouping_sets is not None
        assert len(view.grouping_sets) == 2
        assert Counter(sales_db.execute(sql).rows) == Counter(
            sales_db.reference_execute(sql)
        )

    def test_is_null_filter_does_not_prune(self, sales_db):
        sql = VIEW_SQL + "WHERE v.state IS NULL"
        pruner = GroupPruning(sales_db.catalog)
        assert not pruner.find_targets(sales_db.parse(sql))
        assert Counter(sales_db.execute(sql).rows) == Counter(
            sales_db.reference_execute(sql)
        )

    def test_grouping_indicator_predicate_prunes(self, sales_db):
        sql = (
            "SELECT v.country, v.total FROM "
            "(SELECT s.country, s.state, SUM(s.amount) AS total, "
            "GROUPING(s.state) AS gs FROM sales s "
            "GROUP BY ROLLUP (s.country, s.state)) v WHERE v.gs = 1"
        )
        tree = sales_db.parse(sql)
        pruner = GroupPruning(sales_db.catalog)
        targets = pruner.find_targets(tree)
        assert targets
        tree = pruner.apply(tree, targets[0])
        view = tree.from_items[0].subquery
        # only sets rolling up state survive: (country) and ()
        assert all(1 not in s for s in view.grouping_sets)
        assert Counter(sales_db.execute(sql).rows) == Counter(
            sales_db.reference_execute(sql)
        )

    def test_contradictory_filters_empty_the_view(self, sales_db):
        # demanding both grouped and rolled-up state prunes every set
        sql = (
            "SELECT v.country, v.total FROM "
            "(SELECT s.country, s.state, SUM(s.amount) AS total, "
            "GROUPING(s.state) AS gs FROM sales s "
            "GROUP BY ROLLUP (s.country, s.state)) v "
            "WHERE v.gs = 1 AND v.state = 3"
        )
        assert sales_db.execute(sql).rows == []
        assert sales_db.reference_execute(sql) == []

    def test_pruning_in_full_pipeline(self, sales_db):
        sql = VIEW_SQL + "WHERE v.state = 2 AND v.country = 1"
        optimized = sales_db.optimize(sql)
        # after pruning + pushdown + merging, no grouping sets remain
        assert "GROUPING SETS" not in optimized.transformed_sql
        assert Counter(sales_db.execute(sql).rows) == Counter(
            sales_db.reference_execute(sql)
        )

    def test_ordered_rollup_query(self, sales_db):
        sql = ROLLUP_SQL + " ORDER BY 3 DESC"
        rows = sales_db.execute(sql).rows
        totals = [r[2] for r in rows]
        assert totals == sorted(totals, reverse=True)
