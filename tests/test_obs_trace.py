"""The 10053-style optimizer trace (repro.obs.trace).

Covers the acceptance criteria of the observability layer: a CBQT trace
for the paper's Fig. 2 running example records at least one cost-cutoff
prune and at least one annotation-cache reuse event, the ring buffer
bounds memory, the JSONL sink streams every event, and — the zero-cost
contract — a disarmed engine constructs no trace events at all.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import TraceEvent, Tracer

from .paper_queries import Q1, Q12


class TestTracer:
    def test_emit_buffers_and_sequences(self):
        tracer = Tracer()
        tracer.emit("a", x=1)
        tracer.emit("b", y=2)
        events = tracer.events()
        assert [e.seq for e in events] == [0, 1]
        assert [e.kind for e in events] == ["a", "b"]
        assert tracer.events("a")[0].data == {"x": 1}
        assert tracer.count("b") == 1
        assert len(tracer) == 2

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.emit("k", i=i)
        assert len(tracer) == 3
        assert tracer.emitted == 10
        assert [e.data["i"] for e in tracer.events()] == [7, 8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_jsonl_sink_streams_every_event(self):
        sink = io.StringIO()
        tracer = Tracer(capacity=2, sink=sink)
        for i in range(5):
            tracer.emit("k", i=i, state=(1, 0))
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 5  # sink keeps what the ring dropped
        first = json.loads(lines[0])
        assert first["kind"] == "k"
        assert first["i"] == 0
        assert first["state"] == [1, 0]

    def test_format_table_renders_events(self):
        tracer = Tracer()
        tracer.emit("cbqt.state", state=(1,), cost=12.5, prune=None)
        text = tracer.format_table()
        assert "cbqt.state" in text
        assert "cost=12.50" in text
        assert "1 buffered" in text

    def test_clear(self):
        tracer = Tracer()
        tracer.emit("k")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 1


class TestCbqtTrace:
    def test_fig2_query_records_cutoff_and_annotation_reuse(self, hr_db):
        with hr_db.tracing() as tracer:
            hr_db.optimize(Q1)
        states = tracer.events("cbqt.state")
        assert states, "CBQT search emitted no per-state events"
        cutoffs = [e for e in states if e.data["prune"] == "cost-cutoff"]
        assert cutoffs, "no state was pruned by the cost cut-off (§3.4.1)"
        reused = sum(e.data["annotation_hits"] for e in states)
        assert reused >= 1, "no annotation-cache reuse recorded (§3.4.2)"

    def test_search_event_lists_alternatives(self, hr_db):
        with hr_db.tracing() as tracer:
            hr_db.optimize(Q1)
        searches = tracer.events("cbqt.search")
        assert searches
        for event in searches:
            assert event.data["strategy"]
            assert len(event.data["alternatives"]) == event.data["objects"]
            # alternative 0 is always "none" (the untransformed choice)
            assert all(
                alts[0] == "none" for alts in event.data["alternatives"]
            )

    def test_interleaving_appears_in_alternatives(self, hr_db):
        with hr_db.tracing() as tracer:
            hr_db.optimize(Q1)
        labels = [
            label
            for event in tracer.events("cbqt.search")
            for alts in event.data["alternatives"]
            for label in alts
        ]
        assert any("unnest_view+groupby_merge" in label for label in labels)

    def test_decision_event_matches_report(self, hr_db):
        with hr_db.tracing() as tracer:
            optimized = hr_db.optimize(Q12)
        decisions = tracer.events("cbqt.decision")
        by_name = {e.data["transformation"]: e.data for e in decisions}
        for decision in optimized.report.decisions:
            if decision.strategy == "heuristic":
                continue
            event = by_name[decision.transformation]
            assert tuple(event["best_state"]) == decision.best_state
            assert event["states_evaluated"] == decision.states_evaluated
            assert len(event["order"]) == decision.states_evaluated

    def test_heuristic_rule_events_carry_signatures(self, hr_db):
        sql = """
        SELECT e.employee_name
        FROM employees e
        WHERE EXISTS (SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id)
        """
        with hr_db.tracing() as tracer:
            hr_db.optimize(sql)
        rules = tracer.events("heuristic.rule")
        assert rules
        for event in rules:
            assert event.data["rule"]
            assert event.data["before"] != event.data["after"]

    def test_nested_tracing_restores_previous(self, hr_db):
        assert hr_db.tracer is None
        with hr_db.tracing() as outer:
            with hr_db.tracing() as inner:
                assert hr_db.tracer is inner
            assert hr_db.tracer is outer
        assert hr_db.tracer is None


class TestZeroCostWhenOff:
    def test_no_trace_events_constructed_when_disarmed(self, hr_db):
        assert hr_db.tracer is None
        before = TraceEvent.created
        hr_db.execute(Q1)
        assert TraceEvent.created == before
