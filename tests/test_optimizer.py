"""Physical optimizer tests: selectivity, access paths, join ordering,
plan shapes, cost cut-off, annotation reuse."""

import pytest

from repro import OptimizerConfig
from repro.optimizer.physical import CostBudgetExceeded, PhysicalOptimizer
from repro.optimizer.annotations import AnnotationStore
from repro.optimizer.plans import (
    Filter,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Plan,
    Sort,
    TableScan,
)


def plan_for(db, sql, **kwargs):
    optimizer = PhysicalOptimizer(db.catalog, db.statistics, **kwargs)
    return optimizer.optimize(db.parse(sql)), optimizer


def find_nodes(plan: Plan, node_type) -> list[Plan]:
    found = []

    def walk(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children():
            walk(child)

    walk(plan)
    return found


class TestAccessPathChoice:
    def test_selective_equality_uses_index(self, tiny_db):
        plan, _ = plan_for(
            tiny_db, "SELECT emp_id FROM employees WHERE emp_id = 7"
        )
        assert find_nodes(plan, IndexScan)

    def test_unselective_filter_uses_scan(self, tiny_db):
        plan, _ = plan_for(
            tiny_db, "SELECT emp_id FROM employees WHERE salary > 1"
        )
        assert find_nodes(plan, TableScan)
        assert not find_nodes(plan, IndexScan)

    def test_index_nl_join_on_fk(self, tiny_db):
        # departments (10 rows) driving an indexed probe into employees.
        plan, _ = plan_for(tiny_db, (
            "SELECT e.emp_id FROM employees e, departments d "
            "WHERE e.dept_id = d.dept_id AND d.loc_id = 9"
        ))
        index_scans = find_nodes(plan, IndexScan)
        nl_joins = find_nodes(plan, NestedLoopJoin)
        # with the d filter being empty-selective, NL + index probe wins
        assert index_scans or find_nodes(plan, HashJoin)
        assert nl_joins or find_nodes(plan, HashJoin)


class TestJoinOrdering:
    def test_three_way_join_produces_valid_left_deep(self, tiny_db):
        plan, _ = plan_for(tiny_db, (
            "SELECT e.emp_id FROM employees e, departments d, locations l "
            "WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id"
        ))
        joins = find_nodes(plan, (NestedLoopJoin, HashJoin, MergeJoin))
        assert len(joins) == 2

    def test_semijoin_partial_order_respected(self, tiny_db):
        # semijoin right side must not lead
        tree = tiny_db.parse(
            "SELECT d.dept_id FROM departments d WHERE EXISTS "
            "(SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id)"
        )
        from repro.transform import apply_heuristic_phase

        tree = apply_heuristic_phase(tree, tiny_db.catalog)
        optimizer = PhysicalOptimizer(tiny_db.catalog, tiny_db.statistics)
        plan = optimizer.optimize(tree)
        joins = find_nodes(plan, (NestedLoopJoin, HashJoin, MergeJoin))
        assert joins
        assert joins[0].join_type == "SEMI"
        # left side of the semijoin contains departments
        assert "d" in joins[0].left.aliases

    def test_greedy_handles_many_tables(self, tiny_db):
        sql = (
            "SELECT a.emp_id FROM employees a, employees b, employees c, "
            "employees d2, departments d, locations l "
            "WHERE a.mgr_id = b.emp_id AND b.mgr_id = c.emp_id "
            "AND c.mgr_id = d2.emp_id AND a.dept_id = d.dept_id "
            "AND d.loc_id = l.loc_id"
        )
        plan, _ = plan_for(tiny_db, sql, dp_threshold=3)  # force greedy
        joins = find_nodes(plan, (NestedLoopJoin, HashJoin, MergeJoin))
        assert len(joins) == 5


class TestPlanShapes:
    def test_rownum_limit_node(self, tiny_db):
        plan, _ = plan_for(
            tiny_db, "SELECT emp_id FROM employees WHERE rownum <= 5"
        )
        limits = find_nodes(plan, Limit)
        assert limits and limits[0].count == 5

    def test_order_by_adds_sort(self, tiny_db):
        plan, _ = plan_for(
            tiny_db, "SELECT emp_id FROM employees ORDER BY salary"
        )
        assert find_nodes(plan, Sort)

    def test_stopkey_cost_includes_blocking_sort(self, tiny_db):
        cheap, _ = plan_for(
            tiny_db, "SELECT v.emp_id FROM (SELECT emp_id FROM employees) v "
            "WHERE rownum <= 3"
        )
        sorted_plan, _ = plan_for(
            tiny_db, "SELECT v.emp_id FROM (SELECT emp_id FROM employees "
            "ORDER BY salary) v WHERE rownum <= 3"
        )
        assert sorted_plan.cost > cheap.cost

    def test_tis_filter_for_unmergeable_subquery(self, tiny_db):
        plan, _ = plan_for(tiny_db, (
            "SELECT e.emp_id FROM employees e WHERE e.salary > "
            "(SELECT AVG(e2.salary) FROM employees e2 "
            "WHERE e2.dept_id = e.dept_id)"
        ))
        filters = find_nodes(plan, Filter)
        assert filters  # subquery evaluated as a TIS filter


class TestCostBudget:
    def test_budget_exceeded_raises(self, tiny_db):
        optimizer = PhysicalOptimizer(tiny_db.catalog, tiny_db.statistics)
        tree = tiny_db.parse(
            "SELECT e.emp_id FROM employees e, job_history j "
            "WHERE e.emp_id = j.emp_id"
        )
        with pytest.raises(CostBudgetExceeded):
            optimizer.optimize(tree, budget=1.0)

    def test_generous_budget_succeeds(self, tiny_db):
        optimizer = PhysicalOptimizer(tiny_db.catalog, tiny_db.statistics)
        tree = tiny_db.parse("SELECT emp_id FROM employees")
        plan = optimizer.optimize(tree, budget=1e9)
        assert plan.cost < 1e9


class TestAnnotationReuse:
    def test_identical_subtree_reuses_plan(self, tiny_db):
        store = AnnotationStore()
        optimizer = PhysicalOptimizer(
            tiny_db.catalog, tiny_db.statistics, annotations=store
        )
        tree = tiny_db.parse(
            "SELECT e.emp_id FROM employees e WHERE e.dept_id IN "
            "(SELECT d.dept_id FROM departments d WHERE d.loc_id = 1)"
        )
        optimizer.optimize(tree)
        first = optimizer.counters.blocks_optimized
        optimizer.optimize(tree.clone())
        # the second optimization is answered from the annotation store
        assert optimizer.counters.blocks_optimized == first
        assert store.stats.hits >= 1

    def test_disabled_store_always_misses(self, tiny_db):
        store = AnnotationStore(enabled=False)
        optimizer = PhysicalOptimizer(
            tiny_db.catalog, tiny_db.statistics, annotations=store
        )
        tree = tiny_db.parse("SELECT emp_id FROM employees")
        optimizer.optimize(tree)
        optimizer.optimize(tree.clone())
        assert optimizer.counters.blocks_optimized == 2
        assert store.stats.hits == 0


class TestCardinalityEstimates:
    def test_equality_on_key_estimates_one_row(self, tiny_db):
        plan, _ = plan_for(
            tiny_db, "SELECT emp_id FROM employees WHERE emp_id = 3"
        )
        assert plan.cardinality == pytest.approx(1.0, abs=0.8)

    def test_join_cardinality_reasonable(self, tiny_db):
        # FK join: |employees ⋈ departments| <= |employees|
        plan, _ = plan_for(tiny_db, (
            "SELECT e.emp_id FROM employees e, departments d "
            "WHERE e.dept_id = d.dept_id"
        ))
        n_employees = tiny_db.storage.get("employees").row_count
        assert 0.3 * n_employees <= plan.cardinality <= 1.5 * n_employees

    def test_group_by_cardinality_bounded_by_ndv(self, tiny_db):
        plan, _ = plan_for(tiny_db, (
            "SELECT dept_id, COUNT(*) FROM employees GROUP BY dept_id"
        ))
        assert plan.cardinality <= 11  # 10 departments + NULL group


class TestDynamicSampling:
    def test_sampler_used_when_no_statistics(self, tiny_db):
        from repro.cbqt.caching import DynamicSamplingCache

        tiny_db.statistics.clear()
        cache = DynamicSamplingCache(tiny_db.storage, tiny_db.catalog)
        optimizer = PhysicalOptimizer(
            tiny_db.catalog, tiny_db.statistics, stats_sampler=cache
        )
        optimizer.optimize(tiny_db.parse(
            "SELECT emp_id FROM employees WHERE salary > 50"
        ))
        assert cache.stats.misses >= 1
        optimizer.annotations.clear()
        optimizer.optimize(tiny_db.parse(
            "SELECT emp_id FROM employees WHERE salary > 60"
        ))
        assert cache.stats.hits >= 1
