"""Plan executor vs reference evaluator on a battery of query shapes.

Every query is optimized (heuristic + cost-based transformations all on),
executed through each engine (row-at-a-time, vectorized, morsel-parallel),
and compared against the reference evaluator as an unordered multiset
(ordered where the query has a top-level ORDER BY).
"""

from collections import Counter

import pytest

from repro import OptimizerConfig

EXECUTORS = ("row", "vector", "parallel")

QUERIES = [
    # scans and filters
    "SELECT emp_id FROM employees WHERE salary > 50",
    "SELECT emp_id FROM employees WHERE dept_id IS NULL",
    "SELECT emp_id FROM employees WHERE salary BETWEEN 20 AND 40",
    "SELECT emp_id FROM employees WHERE dept_id IN (1, 3, 5)",
    "SELECT emp_id, salary + 10 FROM employees WHERE MOD(salary, 2) = 0",
    # joins
    "SELECT e.emp_id, d.department_name FROM employees e, departments d "
    "WHERE e.dept_id = d.dept_id",
    "SELECT e.emp_id FROM employees e, departments d, locations l "
    "WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id AND l.country_id = 1",
    "SELECT e.emp_id, j.job_title FROM employees e JOIN job_history j "
    "ON e.emp_id = j.emp_id AND j.start_date > 60",
    "SELECT e.emp_id, d.dept_id FROM employees e LEFT OUTER JOIN departments d "
    "ON e.dept_id = d.dept_id",
    "SELECT e.emp_id FROM employees e LEFT OUTER JOIN departments d "
    "ON e.dept_id = d.dept_id WHERE d.dept_id IS NULL",
    # self join
    "SELECT a.emp_id, b.emp_id FROM employees a, employees b "
    "WHERE a.mgr_id = b.emp_id AND b.salary > 70",
    # aggregation
    "SELECT dept_id, COUNT(emp_id), AVG(salary) FROM employees GROUP BY dept_id",
    "SELECT COUNT(*) FROM employees WHERE salary > 1000",
    "SELECT dept_id, SUM(salary) FROM employees GROUP BY dept_id "
    "HAVING SUM(salary) > 200",
    "SELECT d.loc_id, COUNT(e.emp_id) FROM departments d, employees e "
    "WHERE e.dept_id = d.dept_id GROUP BY d.loc_id",
    "SELECT MIN(salary), MAX(salary) FROM employees",
    "SELECT COUNT(DISTINCT dept_id) FROM employees",
    # distinct
    "SELECT DISTINCT dept_id FROM employees",
    "SELECT DISTINCT e.dept_id, j.job_title FROM employees e, job_history j "
    "WHERE e.emp_id = j.emp_id",
    # subqueries kept or unnested
    "SELECT e.emp_id FROM employees e WHERE EXISTS "
    "(SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id)",
    "SELECT e.emp_id FROM employees e WHERE NOT EXISTS "
    "(SELECT 1 FROM job_history j WHERE j.emp_id = e.emp_id AND j.job_title = 2)",
    "SELECT e.emp_id FROM employees e WHERE e.dept_id IN "
    "(SELECT d.dept_id FROM departments d WHERE d.loc_id = 2)",
    "SELECT e.emp_id FROM employees e WHERE e.dept_id NOT IN "
    "(SELECT d.dept_id FROM departments d WHERE d.loc_id = 2)",
    "SELECT e.emp_id FROM employees e WHERE e.mgr_id NOT IN "
    "(SELECT j.job_title FROM job_history j WHERE j.emp_id = e.emp_id)",
    "SELECT e.emp_id FROM employees e WHERE e.salary > "
    "(SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)",
    "SELECT e.emp_id FROM employees e WHERE e.salary > ALL "
    "(SELECT j.job_title FROM job_history j WHERE j.emp_id = e.emp_id)",
    "SELECT e.emp_id FROM employees e WHERE e.salary < ANY "
    "(SELECT j.start_date FROM job_history j WHERE j.emp_id = e.emp_id)",
    "SELECT e.emp_id, (SELECT COUNT(*) FROM job_history j "
    "WHERE j.emp_id = e.emp_id) FROM employees e WHERE e.salary > 80",
    # views
    "SELECT v.d, v.c FROM (SELECT dept_id AS d, COUNT(emp_id) AS c "
    "FROM employees GROUP BY dept_id) v WHERE v.c > 5",
    "SELECT e.emp_id, v.c FROM employees e, "
    "(SELECT dept_id AS d, COUNT(emp_id) AS c FROM employees "
    "GROUP BY dept_id) v WHERE e.dept_id = v.d AND e.salary > 60",
    "SELECT m.dept_id FROM departments m, (SELECT DISTINCT j.dept_id AS k "
    "FROM job_history j WHERE j.job_title > 5) v WHERE v.k = m.dept_id",
    # set operations
    "SELECT dept_id FROM employees UNION SELECT dept_id FROM departments",
    "SELECT dept_id FROM employees UNION ALL SELECT dept_id FROM job_history",
    "SELECT dept_id FROM employees MINUS SELECT dept_id FROM departments "
    "WHERE loc_id = 1",
    "SELECT dept_id FROM departments INTERSECT SELECT dept_id FROM employees "
    "WHERE salary > 50",
    # disjunction
    "SELECT e.emp_id FROM employees e, departments d WHERE "
    "e.dept_id = d.dept_id AND (d.loc_id = 1 OR e.salary > 80)",
    # order by / rownum
    "SELECT emp_id, salary FROM employees ORDER BY salary DESC, emp_id",
    "SELECT v.emp_id FROM (SELECT emp_id FROM employees "
    "ORDER BY salary DESC) v WHERE rownum <= 7",
    # windows
    "SELECT emp_id, AVG(salary) OVER (PARTITION BY dept_id) FROM employees",
    "SELECT emp_id, SUM(salary) OVER (PARTITION BY dept_id ORDER BY emp_id "
    "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM employees",
    "SELECT emp_id, ROW_NUMBER() OVER (PARTITION BY dept_id ORDER BY salary) "
    "FROM employees",
    # case and expressions in grouping
    "SELECT CASE WHEN salary > 50 THEN 1 ELSE 0 END, COUNT(*) FROM employees "
    "GROUP BY CASE WHEN salary > 50 THEN 1 ELSE 0 END",
]


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
def test_plan_matches_reference(tiny_db, sql, executor):
    expected = tiny_db.reference_execute(sql)
    result = tiny_db.execute(sql, OptimizerConfig(), executor=executor)
    assert result.exec_stats.executor_mode == executor
    if "ORDER BY" in sql and "(" not in sql.split("ORDER BY")[0][-20:]:
        assert result.rows == expected
    else:
        assert Counter(result.rows) == Counter(expected)


@pytest.mark.parametrize("sql", QUERIES[:24], ids=range(24))
def test_heuristic_mode_matches_reference(tiny_db, sql):
    expected = Counter(tiny_db.reference_execute(sql))
    result = tiny_db.execute(sql, OptimizerConfig.heuristic_mode())
    assert Counter(result.rows) == expected


def test_rownum_view_returns_top_rows(tiny_db):
    result = tiny_db.execute(
        "SELECT v.salary FROM (SELECT salary FROM employees "
        "ORDER BY salary DESC) v WHERE rownum <= 3"
    )
    top3 = sorted(
        (r["salary"] for r in tiny_db.storage.get("employees").rows),
        reverse=True,
    )[:3]
    assert sorted((r[0] for r in result.rows), reverse=True) == top3


def test_work_units_track_estimates(tiny_db):
    """Estimated cost and measured work should be within an order of
    magnitude for a plain join (same currency)."""
    result = tiny_db.execute(
        "SELECT e.emp_id FROM employees e, departments d "
        "WHERE e.dept_id = d.dept_id"
    )
    estimate = result.plan.cost
    measured = result.exec_stats.work_units
    assert measured > 0
    assert 0.1 < estimate / measured < 10.0


def test_multi_item_not_in_null_aware(tiny_db):
    """(a, b) NOT IN (...) with NULLs on both sides: a FALSE component
    must beat an UNKNOWN one (regression for hash ANTI_NA keys)."""
    from collections import Counter

    sql = (
        "SELECT e.emp_id FROM employees e WHERE (e.dept_id, e.mgr_id) "
        "NOT IN (SELECT j.dept_id, j.job_title FROM job_history j)"
    )
    expected = Counter(tiny_db.reference_execute(sql))
    got = Counter(tiny_db.execute(sql).rows)
    assert got == expected


def test_multi_item_in_semijoin(tiny_db):
    from collections import Counter

    sql = (
        "SELECT e.emp_id FROM employees e WHERE (e.dept_id, e.mgr_id) "
        "IN (SELECT j.dept_id, j.job_title FROM job_history j)"
    )
    expected = Counter(tiny_db.reference_execute(sql))
    got = Counter(tiny_db.execute(sql).rows)
    assert got == expected


EXTRA_QUERIES = [
    # LEFT-joined derived views (JPPD may make them lateral)
    "SELECT e.emp_id, v.c FROM employees e LEFT OUTER JOIN "
    "(SELECT j.emp_id AS k, COUNT(*) AS c FROM job_history j "
    "GROUP BY j.emp_id) v ON v.k = e.emp_id",
    "SELECT e.emp_id FROM employees e LEFT OUTER JOIN "
    "(SELECT DISTINCT j.dept_id AS k FROM job_history j "
    "WHERE j.job_title > 4) v ON v.k = e.dept_id WHERE v.k IS NULL",
    # UNION (dedup) view joined to a table
    "SELECT e.emp_id FROM employees e, "
    "(SELECT dept_id AS k FROM departments UNION "
    "SELECT dept_id AS k FROM job_history) v WHERE e.dept_id = v.k "
    "AND e.salary > 75",
    # nested set operations
    "SELECT dept_id FROM employees INTERSECT "
    "(SELECT dept_id FROM departments MINUS "
    "SELECT dept_id FROM job_history WHERE job_title = 1)",
    # correlated EXISTS inside a view
    "SELECT v.emp_id FROM (SELECT e.emp_id, e.dept_id FROM employees e "
    "WHERE EXISTS (SELECT 1 FROM job_history j "
    "WHERE j.emp_id = e.emp_id)) v WHERE v.dept_id = 3",
    # aggregate over a union-all view
    "SELECT v.k, COUNT(*) FROM (SELECT dept_id AS k FROM employees "
    "UNION ALL SELECT dept_id AS k FROM job_history) v GROUP BY v.k",
]


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("sql", EXTRA_QUERIES, ids=range(len(EXTRA_QUERIES)))
def test_extra_shapes_match_reference(tiny_db, sql, executor):
    expected = Counter(tiny_db.reference_execute(sql))
    got = tiny_db.execute(sql, executor=executor)
    assert Counter(got.rows) == expected


@pytest.mark.parametrize("sql", QUERIES[:12], ids=range(12))
def test_executors_agree_on_plan_and_work(tiny_db, sql):
    """All three engines must run the *same* chosen plan, produce the
    same row multiset, and charge the same deterministic work units
    (modulo float summation order)."""
    import math

    runs = {
        mode: tiny_db.execute(sql, executor=mode) for mode in EXECUTORS
    }
    plans = {r.plan.describe() for r in runs.values()}
    assert len(plans) == 1, "executor choice must not affect the plan"
    base = runs["row"]
    for mode in ("vector", "parallel"):
        assert Counter(runs[mode].rows) == Counter(base.rows)
        assert math.isclose(
            runs[mode].exec_stats.work_units,
            base.exec_stats.work_units,
            rel_tol=1e-9,
        ), (mode, runs[mode].exec_stats.work_units,
            base.exec_stats.work_units)
