"""Unit tests for the WAL record format, scanner, and append handle.

The crash-consistency contract under test:

* a torn *final* record (crash mid-append) is detected byte-for-byte —
  every possible truncation point of the last record reads back as the
  intact prefix plus a reported torn tail, and ``repair_wal`` drops it;
* mid-file damage (a bit flip, an LSN hole, a valid record after an
  invalid region) is *refused* with ``WalCorruption``, never silently
  repaired — repairing it would drop an acknowledged commit;
* a failed append rolls the file back to its pre-append offset, so an
  unacknowledged commit cannot survive a restart.
"""

from __future__ import annotations

import os

import pytest

from repro import FaultSpec, inject
from repro.durability import WalReadResult, WriteAheadLog, read_wal, repair_wal
from repro.durability.wal import HEADER_BYTES, encode_record
from repro.errors import DurabilityError, FaultInjected, WalCorruption


def _write_records(path: str, n: int, fsync: str = "off") -> list[dict]:
    wal = WriteAheadLog(path, fsync=fsync)
    payloads = [{"lsn": i + 1, "op": "insert", "n": i * 10} for i in range(n)]
    for payload in payloads:
        wal.append(payload)
    wal.close()
    return payloads


class TestFormat:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        payloads = _write_records(path, 5)
        result = read_wal(path)
        assert result.records == payloads
        assert result.torn_bytes == 0
        assert result.valid_bytes == os.path.getsize(path)

    def test_missing_file_is_empty(self, tmp_path):
        result = read_wal(str(tmp_path / "nope.jsonl"))
        assert result == WalReadResult()

    def test_empty_file_is_empty(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        open(path, "wb").close()
        result = read_wal(path)
        assert result.records == [] and result.torn_bytes == 0

    def test_record_is_greppable_one_line_ascii(self):
        record = encode_record({"lsn": 1, "op": "insert", "v": "x"})
        assert record.endswith(b"\n")
        assert record.count(b"\n") == 1
        assert record[:HEADER_BYTES].decode("ascii")


class TestTornTail:
    """Every byte-level truncation of the final record must read back
    as the intact prefix; the parametrization sweeps the whole record —
    header, payload, checksum, and the trailing newline."""

    @pytest.fixture()
    def two_plus_one(self, tmp_path):
        """A log with two intact records; returns (path, keep_bytes,
        total_bytes) where keep_bytes is the offset of record three."""
        path = str(tmp_path / "wal.jsonl")
        _write_records(path, 2)
        keep = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(encode_record({"lsn": 3, "op": "insert", "n": 30}))
        return path, keep, os.path.getsize(path)

    @pytest.mark.parametrize("drop", range(1, 40))
    def test_chop_any_tail_byte(self, two_plus_one, drop):
        path, keep, total = two_plus_one
        cut = total - drop
        if cut <= keep:
            pytest.skip("chop reaches into intact records")
        with open(path, "r+b") as handle:
            handle.truncate(cut)
        result = read_wal(path)
        assert [r["lsn"] for r in result.records] == [1, 2]
        assert result.valid_bytes == keep
        assert result.torn_bytes == cut - keep

    def test_repair_truncates_and_is_idempotent(self, two_plus_one):
        path, keep, total = two_plus_one
        with open(path, "r+b") as handle:
            handle.truncate(total - 3)
        first = repair_wal(path)
        assert first.torn_bytes == total - 3 - keep
        assert os.path.getsize(path) == keep
        again = repair_wal(path)
        assert again.torn_bytes == 0
        assert [r["lsn"] for r in again.records] == [1, 2]

    def test_append_resumes_after_repair(self, two_plus_one):
        path, keep, total = two_plus_one
        with open(path, "r+b") as handle:
            handle.truncate(total - 5)
        repair_wal(path)
        wal = WriteAheadLog(path, fsync="off")
        wal.append({"lsn": 3, "op": "insert", "n": 99})
        wal.close()
        assert [r["lsn"] for r in read_wal(path).records] == [1, 2, 3]


class TestCorruption:
    def test_bit_flip_mid_file_refused(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        _write_records(path, 3)
        with open(path, "r+b") as handle:
            data = bytearray(handle.read())
            data[HEADER_BYTES + 2] ^= 0xFF  # inside record 1's payload
            handle.seek(0)
            handle.write(bytes(data))
        with pytest.raises(WalCorruption, match="mid-file corruption"):
            read_wal(path)
        with pytest.raises(WalCorruption):
            repair_wal(path)  # refuse to repair; never drop valid records

    def test_lsn_hole_refused(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with open(path, "ab") as handle:
            handle.write(encode_record({"lsn": 1, "op": "insert"}))
            handle.write(encode_record({"lsn": 3, "op": "insert"}))
        with pytest.raises(WalCorruption, match="LSN jumped"):
            read_wal(path)

    def test_trailing_garbage_without_valid_record_is_torn(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        _write_records(path, 2)
        keep = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"garbage that is not a record\n")
        result = read_wal(path)
        assert len(result.records) == 2
        assert result.torn_bytes == os.path.getsize(path) - keep


class TestAppendHandle:
    def test_fsync_policy_counting(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path, fsync="batch", batch_records=3)
        for i in range(7):
            wal.append({"lsn": i + 1, "op": "insert"})
        assert wal.fsyncs == 2  # after records 3 and 6
        wal.sync()
        assert wal.fsyncs == 3  # the straggler
        wal.close()

    def test_always_policy_fsyncs_every_record(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.jsonl"), fsync="always")
        for i in range(4):
            wal.append({"lsn": i + 1, "op": "insert"})
        assert wal.fsyncs == 4
        wal.close()

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(DurabilityError, match="fsync policy"):
            WriteAheadLog(str(tmp_path / "wal.jsonl"), fsync="sometimes")

    def test_append_fault_rolls_back(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path, fsync="off")
        wal.append({"lsn": 1, "op": "insert"})
        size_before = os.path.getsize(path)
        with inject(FaultSpec(point="wal.append", at=1)):
            with pytest.raises(FaultInjected):
                wal.append({"lsn": 2, "op": "insert"})
        # the handle stays usable and the file offset was restored
        wal.append({"lsn": 2, "op": "insert"})
        wal.close()
        assert os.path.getsize(path) > size_before
        assert [r["lsn"] for r in read_wal(path).records] == [1, 2]

    def test_fsync_fault_rolls_back_record(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path, fsync="always")
        wal.append({"lsn": 1, "op": "insert"})
        with inject(FaultSpec(point="wal.fsync", at=1)):
            with pytest.raises(FaultInjected):
                wal.append({"lsn": 2, "op": "insert"})
        assert [r["lsn"] for r in read_wal(path).records] == [1]
        wal.append({"lsn": 2, "op": "insert"})
        wal.close()
        assert [r["lsn"] for r in read_wal(path).records] == [1, 2]

    def test_torn_tail_fault_poisons_handle(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path, fsync="off")
        wal.append({"lsn": 1, "op": "insert"})
        with inject(FaultSpec(point="wal.torn_tail", at=1)):
            with pytest.raises(FaultInjected):
                wal.append({"lsn": 2, "op": "insert"})
        with pytest.raises(DurabilityError, match="poisoned"):
            wal.append({"lsn": 3, "op": "insert"})
        with pytest.raises(DurabilityError, match="poisoned"):
            wal.truncate()
        wal.close()
        # the half-written record on disk reads back as a torn tail
        result = read_wal(path)
        assert [r["lsn"] for r in result.records] == [1]
        assert result.torn_bytes > 0
        repaired = repair_wal(path)
        assert repaired.torn_bytes > 0
        assert read_wal(path).torn_bytes == 0

    def test_truncate_drops_all_records(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        wal = WriteAheadLog(path, fsync="off")
        for i in range(3):
            wal.append({"lsn": i + 1, "op": "insert"})
        wal.truncate()
        wal.append({"lsn": 4, "op": "insert"})
        wal.close()
        assert [r["lsn"] for r in read_wal(path).records] == [4]
