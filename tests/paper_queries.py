"""The paper's worked example queries (Q1-Q17), adapted to the HR demo
schema exactly as :mod:`repro.workload.schemas` defines it.

Differences from the paper's listings are mechanical: string literals for
dates use ISO format, and Q7's window query runs over the ``accounts``
table the paper describes.  Q3/Q6/Q8/Q10/Q11/Q13/Q15/Q17/Q18 are the
paper's *transformed* forms — tests assert that our transformations
produce trees with the corresponding shape, not these exact strings.
"""

# Q1: both subqueries (correlated aggregate + IN) — the running example.
Q1 = """
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j
WHERE e1.emp_id = j.emp_id AND
  j.start_date > '1998-01-01' AND
  e1.salary > (SELECT AVG(e2.salary)
               FROM employees e2
               WHERE e2.dept_id = e1.dept_id) AND
  e1.dept_id IN (SELECT d.dept_id
                 FROM departments d, locations l
                 WHERE d.loc_id = l.loc_id AND l.country_id = 1)
"""

# Q2: single-table EXISTS -> semijoin (imperative unnesting).
Q2 = """
SELECT d.department_name
FROM departments d
WHERE EXISTS (SELECT 1 FROM employees e
              WHERE e.dept_id = d.dept_id AND e.salary > 20000)
"""

# Q4: PK-FK join elimination candidate.
Q4 = """
SELECT e.employee_name, e.salary
FROM employees e, departments d
WHERE e.dept_id = d.dept_id
"""

# Q5: unique-key outer join elimination candidate.
Q5 = """
SELECT e.employee_name, e.salary
FROM employees e LEFT OUTER JOIN departments d ON e.dept_id = d.dept_id
"""

# Q7: running average over accounts; predicates pushable through the
# window's PARTITION BY (acct_id) but not its ORDER BY (time).
Q7 = """
SELECT v.acct_id, v.time, v.ravg
FROM (SELECT a.acct_id, a.time,
             AVG(a.balance) OVER (PARTITION BY a.acct_id ORDER BY a.time
                  RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS ravg
      FROM accounts a) v
WHERE v.acct_id = 7 AND v.time <= 12
"""

# Q12: distinct view joined to outer tables — the JPPD running example.
Q12 = """
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j,
     (SELECT DISTINCT d.dept_id
      FROM departments d, locations l
      WHERE d.loc_id = l.loc_id AND l.country_id IN (1, 2)) v
WHERE e1.dept_id = v.dept_id AND
      e1.emp_id = j.emp_id AND
      j.start_date > '1998-01-01'
"""

# Q14: UNION ALL with common join tables (departments, locations).
Q14 = """
SELECT e.first_name, e.last_name, e.job_id, d.department_name, l.city
FROM employees e, departments d, locations l
WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id
UNION ALL
SELECT e.first_name, e.last_name, j.job_id, d.department_name, l.city
FROM employees e, job_history j, departments d, locations l
WHERE e.emp_id = j.emp_id AND j.dept_id = d.dept_id AND
      d.loc_id = l.loc_id
"""

# Q16: expensive predicates under a blocking view with outer ROWNUM.
Q16 = """
SELECT v.emp_id, v.salary
FROM (SELECT e.emp_id, e.salary
      FROM employees e
      WHERE SLOW_CHECK(e.salary) = 1 AND SLOW_MATCH(e.emp_id) = 0
      ORDER BY e.hire_date) v
WHERE rownum < 20
"""

# Set-operator conversion inputs (§2.2.7).
Q_MINUS = """
SELECT e.dept_id FROM employees e
MINUS
SELECT d.dept_id FROM departments d WHERE d.loc_id = 2
"""

Q_INTERSECT = """
SELECT e.dept_id FROM employees e WHERE e.salary > 15000
INTERSECT
SELECT d.dept_id FROM departments d
"""

# Disjunction into UNION ALL (§2.2.8).
Q_OR = """
SELECT e.emp_id, d.dept_id
FROM employees e, departments d
WHERE e.dept_id = d.dept_id AND (d.loc_id = 3 OR e.job_id = 5)
"""

# NOT IN with nullable columns -> null-aware antijoin (§2.1.1).
Q_NOT_IN_NULLABLE = """
SELECT e.emp_id FROM employees e
WHERE e.dept_id NOT IN (SELECT j.dept_id FROM job_history j
                        WHERE j.start_date > '2000-01-01')
"""

# Group-by placement candidate (§2.2.4).
Q_GBP = """
SELECT d.loc_id, SUM(e.salary), COUNT(e.salary)
FROM departments d, employees e
WHERE e.dept_id = d.dept_id
GROUP BY d.loc_id
"""

ALL_RUNNABLE = {
    "Q1": Q1,
    "Q2": Q2,
    "Q4": Q4,
    "Q5": Q5,
    "Q7": Q7,
    "Q12": Q12,
    "Q14": Q14,
    "Q_MINUS": Q_MINUS,
    "Q_INTERSECT": Q_INTERSECT,
    "Q_OR": Q_OR,
    "Q_NOT_IN_NULLABLE": Q_NOT_IN_NULLABLE,
    "Q_GBP": Q_GBP,
}
