"""Transformation framework plumbing: target stability across deep
copies, fixpoint application, alias uniquification, node replacers."""

import pytest

from repro.errors import TransformError
from repro.qtree.blocks import QueryBlock, SetOpBlock
from repro.transform.base import (
    TargetRef,
    apply_everywhere,
    ensure_unique_aliases,
    find_block,
    find_setop,
    iter_nodes_with_replacers,
)
from repro.transform.costbased import SetOpIntoJoin, UnnestSubqueryToView
from repro.transform.heuristic import SpjViewMerging


class TestTargetStability:
    def test_targets_resolve_on_clones(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.salary > "
            "(SELECT AVG(e2.salary) FROM employees e2 "
            "WHERE e2.dept_id = e.dept_id)"
        )
        tree = tiny_db.parse(sql)
        transformation = UnnestSubqueryToView(tiny_db.catalog)
        targets = transformation.find_targets(tree)
        assert targets
        # the same TargetRef applies to a deep copy
        copy = tree.clone()
        transformed = transformation.apply(copy, targets[0])
        assert any(i.is_derived for i in transformed.from_items)
        # and the original is untouched
        assert not any(i.is_derived for i in tree.from_items)

    def test_find_block_by_name(self, tiny_db):
        tree = tiny_db.parse(
            "SELECT e.emp_id FROM employees e WHERE EXISTS "
            "(SELECT 1 FROM departments d WHERE d.dept_id = e.dept_id)"
        )
        inner = tree.subquery_exprs()[0].query
        assert find_block(tree, inner.name) is inner
        assert find_block(tree, "no_such_block") is None

    def test_find_setop(self, tiny_db):
        tree = tiny_db.parse(
            "SELECT v.dept_id FROM (SELECT dept_id FROM employees MINUS "
            "SELECT dept_id FROM departments) v"
        )
        setop = tree.from_items[0].subquery
        assert find_setop(tree, setop.name) is setop


class TestIterNodesWithReplacers:
    def test_replacer_swaps_subquery_source(self, tiny_db):
        tree = tiny_db.parse(
            "SELECT v.dept_id FROM (SELECT dept_id FROM employees MINUS "
            "SELECT dept_id FROM departments) v"
        )
        transformation = SetOpIntoJoin(tiny_db.catalog)
        targets = transformation.find_targets(tree)
        assert len(targets) == 1
        tree = transformation.apply(tree, targets[0])
        assert isinstance(tree.from_items[0].subquery, QueryBlock)

    def test_root_replacement_returns_new_root(self, tiny_db):
        tree = tiny_db.parse(
            "SELECT dept_id FROM employees MINUS "
            "SELECT dept_id FROM departments"
        )
        transformation = SetOpIntoJoin(tiny_db.catalog)
        new_root = transformation.apply(
            tree, transformation.find_targets(tree)[0]
        )
        assert isinstance(new_root, QueryBlock)

    def test_every_node_visited(self, tiny_db):
        tree = tiny_db.parse(
            "SELECT v.k FROM (SELECT dept_id AS k FROM employees UNION ALL "
            "SELECT dept_id AS k FROM departments) v WHERE EXISTS "
            "(SELECT 1 FROM locations l WHERE l.loc_id = v.k)"
        )
        nodes = [node for node, _r in iter_nodes_with_replacers(tree)]
        kinds = [type(n).__name__ for n in nodes]
        assert kinds.count("SetOpBlock") == 1
        assert kinds.count("QueryBlock") >= 4


class TestApplyEverywhere:
    def test_reaches_fixpoint(self, tiny_db):
        sql = (
            "SELECT v2.emp_id FROM (SELECT v1.emp_id FROM "
            "(SELECT e.emp_id FROM employees e) v1) v2"
        )
        tree = apply_everywhere(
            SpjViewMerging(tiny_db.catalog), tiny_db.parse(sql)
        )
        assert all(i.is_base_table for i in tree.from_items)

    def test_no_targets_is_identity(self, tiny_db):
        tree = tiny_db.parse("SELECT emp_id FROM employees")
        before = tree.to_sql()
        tree = apply_everywhere(SpjViewMerging(tiny_db.catalog), tree)
        assert tree.to_sql() == before


class TestEnsureUniqueAliases:
    def test_colliding_alias_renamed(self, tiny_db):
        outer = tiny_db.parse(
            "SELECT e.emp_id FROM employees e, "
            "(SELECT e.salary AS s FROM employees e) v "
            "WHERE e.salary = v.s"
        )
        view_item = outer.from_item("v")
        view = view_item.subquery
        outer.from_items.remove(view_item)
        renames = ensure_unique_aliases(outer, view)
        assert "e" in renames
        assert view.from_items[0].alias != "e"
        # references inside the view follow the rename
        sel = view.select_items[0].expr
        assert sel.qualifier == view.from_items[0].alias

    def test_no_collision_no_rename(self, tiny_db):
        outer = tiny_db.parse(
            "SELECT e.emp_id FROM employees e, "
            "(SELECT d.dept_id AS k FROM departments d) v "
            "WHERE e.dept_id = v.k"
        )
        view_item = outer.from_item("v")
        view = view_item.subquery
        outer.from_items.remove(view_item)
        assert ensure_unique_aliases(outer, view) == {}


class TestTargetRefDescribe:
    def test_describe_format(self):
        ref = TargetRef("qb$1", "view", "v")
        assert ref.describe() == "view[v]@qb$1"
