"""End-to-end equivalence over generated workload queries: every query
class, under several optimizer configurations, must match the reference
evaluator — the strongest whole-stack invariant we can check."""

from collections import Counter

import pytest

from repro import OptimizerConfig
from repro.workload import (
    MixWeights,
    QueryGenerator,
    apps_database,
    register_workload_functions,
)


@pytest.fixture(scope="module")
def small_apps():
    db, schema = apps_database(
        seed=13,
        modules=("hr", "oe"),
        masters_per_module=2,
        details_per_module=2,
        histories_per_module=1,
        master_rows=30,
        detail_rows=250,
        history_rows=500,
    )
    register_workload_functions(db)
    return db, schema


CONFIGS = {
    "cbqt": OptimizerConfig(),
    "heuristic": OptimizerConfig.heuristic_mode(),
    "no_unnest": OptimizerConfig().without("unnest_view", "subquery_merge"),
    "two_pass": OptimizerConfig().with_strategy("two_pass"),
}

ALL_CLASSES = [name for name, _w in MixWeights().items()]


def normalized(rows):
    return Counter(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in rows
    )


@pytest.mark.parametrize("query_class", ALL_CLASSES)
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_every_class_matches_reference(small_apps, query_class, config_name):
    db, schema = small_apps
    generator = QueryGenerator(schema, seed=hash(query_class) % 1000)
    config = CONFIGS[config_name]
    for _ in range(3):
        query = generator.generate_class(query_class)
        expected = normalized(db.reference_execute(query.sql))
        got = normalized(db.execute(query.sql, config).rows)
        assert got == expected, query.sql


def test_iterative_strategy_on_many_objects(small_apps):
    """A query with enough subqueries to trigger the iterative strategy
    under automatic selection."""
    db, schema = small_apps
    pairs = schema.joinable_pairs()
    child, parent, fk, pk = pairs[0]
    subqueries = []
    for i in range(6):
        c2, p2, fk2, pk2 = pairs[i % len(pairs)]
        subqueries.append(
            f"p.{pk} IN (SELECT c{i}.{fk2} FROM {c2.name} c{i}, "
            f"{p2.name} q{i} WHERE c{i}.{fk2} = q{i}.{pk2} "
            f"AND q{i}.{p2.numeric_columns[0]} > {i})"
        )
    sql = (
        f"SELECT p.{pk} FROM {parent.name} p WHERE "
        + " AND ".join(subqueries)
    )
    optimized = db.optimize(sql)
    decision = optimized.report.decision_for("unnest_view")
    assert decision is not None
    assert decision.strategy == "iterative"
    assert decision.n_objects == 6
    expected = normalized(db.reference_execute(sql))
    assert normalized(db.execute(sql).rows) == expected


def test_plan_cost_monotone_over_children(small_apps):
    """A plan's cumulative cost must be at least each child's cost."""
    db, schema = small_apps
    generator = QueryGenerator(schema, seed=77)

    def check(plan):
        for child in plan.children():
            assert plan.cost >= child.cost - 1e-6, plan.describe()
            check(child)

    for query in generator.generate(25):
        check(db.optimize(query.sql).plan)


def test_cardinalities_are_finite_and_nonnegative(small_apps):
    db, schema = small_apps
    generator = QueryGenerator(schema, seed=78)

    def check(plan):
        assert plan.cardinality >= 0.0
        assert plan.cardinality < float("inf")
        assert plan.cost >= 0.0
        for child in plan.children():
            check(child)

    for query in generator.generate(25):
        check(db.optimize(query.sql).plan)
