"""Query-tree SQL generation and structural signatures."""

import pytest

from repro.qtree import signature
from repro.transform.base import apply_everywhere
from repro.transform.heuristic import SubqueryMergeUnnesting


class TestDisplayNotation:
    def test_semijoin_uses_paper_notation(self, tiny_db):
        tree = tiny_db.parse(
            "SELECT d.dept_id FROM departments d WHERE EXISTS "
            "(SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id)"
        )
        tree = apply_everywhere(SubqueryMergeUnnesting(tiny_db.catalog), tree)
        text = tree.to_sql()
        # the paper's non-standard semijoin marker: T1.c S= T2.c
        assert "S=" in text

    def test_antijoin_marker(self, tiny_db):
        tree = tiny_db.parse(
            "SELECT d.dept_id FROM departments d WHERE NOT EXISTS "
            "(SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id)"
        )
        tree = apply_everywhere(SubqueryMergeUnnesting(tiny_db.catalog), tree)
        assert "A=" in tree.to_sql()

    def test_left_join_marker(self, tiny_db):
        tree = tiny_db.parse(
            "SELECT e.emp_id FROM employees e LEFT OUTER JOIN departments d "
            "ON e.dept_id = d.dept_id"
        )
        assert "(+d)" in tree.to_sql()

    def test_rownum_rendered(self, tiny_db):
        tree = tiny_db.parse("SELECT emp_id FROM employees WHERE rownum <= 4")
        assert "ROWNUM <= 4" in tree.to_sql()

    def test_grouping_sets_rendered(self, tiny_db):
        tree = tiny_db.parse(
            "SELECT dept_id, COUNT(*) FROM employees GROUP BY ROLLUP (dept_id)"
        )
        assert "GROUPING SETS" in tree.to_sql()


class TestSignatureProperties:
    def test_transformation_changes_signature(self, tiny_db):
        sql = (
            "SELECT d.dept_id FROM departments d WHERE EXISTS "
            "(SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id)"
        )
        before = tiny_db.parse(sql)
        after = apply_everywhere(
            SubqueryMergeUnnesting(tiny_db.catalog), before.clone()
        )
        assert signature(before) != signature(after)

    def test_alias_matters(self, tiny_db):
        a = tiny_db.parse("SELECT e.emp_id FROM employees e")
        b = tiny_db.parse("SELECT f.emp_id FROM employees f")
        assert signature(a) != signature(b)

    def test_signature_deterministic(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e, departments d "
            "WHERE e.dept_id = d.dept_id AND d.loc_id IN (1, 2)"
        )
        assert signature(tiny_db.parse(sql)) == signature(tiny_db.parse(sql))
