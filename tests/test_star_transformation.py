"""Star transformation tests (§3.1's sequence entry)."""

import random
from collections import Counter

import pytest

from repro import Database, OptimizerConfig
from repro.transform.costbased import StarTransformation


@pytest.fixture(scope="module")
def star_db():
    db = Database()
    db.execute_ddl(
        "CREATE TABLE dim_time (t_id INT PRIMARY KEY, year INT, month INT)"
    )
    db.execute_ddl(
        "CREATE TABLE dim_prod (p_id INT PRIMARY KEY, category INT)"
    )
    db.execute_ddl(
        "CREATE TABLE fact_sales (s_id INT PRIMARY KEY, "
        "t_id INT REFERENCES dim_time(t_id), "
        "p_id INT REFERENCES dim_prod(p_id), amount INT)"
    )
    db.execute_ddl("CREATE INDEX f_t ON fact_sales (t_id)")
    db.execute_ddl("CREATE INDEX f_p ON fact_sales (p_id)")
    rng = random.Random(2)
    db.insert("dim_time", [
        {"t_id": i, "year": 2000 + i % 7, "month": i % 12 + 1}
        for i in range(1, 85)
    ])
    db.insert("dim_prod", [
        {"p_id": i, "category": i % 20} for i in range(1, 201)
    ])
    db.insert("fact_sales", [
        {"s_id": i, "t_id": rng.randint(1, 84), "p_id": rng.randint(1, 200),
         "amount": rng.randint(1, 500)}
        for i in range(1, 4001)
    ])
    db.analyze()
    return db


STAR_SQL = (
    "SELECT f.s_id, f.amount FROM fact_sales f, dim_time t, dim_prod p "
    "WHERE f.t_id = t.t_id AND f.p_id = p.p_id "
    "AND t.year = 2003 AND p.category = 7"
)


class TestRecognition:
    def test_star_shape_found(self, star_db):
        transformation = StarTransformation(star_db.catalog)
        targets = transformation.find_targets(star_db.parse(STAR_SQL))
        assert len(targets) == 1
        assert targets[0].key == "f"

    def test_requires_dimension_filters(self, star_db):
        sql = (
            "SELECT f.s_id FROM fact_sales f, dim_time t, dim_prod p "
            "WHERE f.t_id = t.t_id AND f.p_id = p.p_id"
        )
        transformation = StarTransformation(star_db.catalog)
        assert not transformation.find_targets(star_db.parse(sql))

    def test_requires_two_dimensions(self, star_db):
        sql = (
            "SELECT f.s_id FROM fact_sales f, dim_time t "
            "WHERE f.t_id = t.t_id AND t.year = 2003"
        )
        transformation = StarTransformation(star_db.catalog)
        assert not transformation.find_targets(star_db.parse(sql))

    def test_requires_declared_fk(self, star_db):
        # join on a non-FK column pair: no star
        sql = (
            "SELECT f.s_id FROM fact_sales f, dim_time t, dim_prod p "
            "WHERE f.amount = t.t_id AND f.p_id = p.p_id "
            "AND t.year = 2003 AND p.category = 7"
        )
        transformation = StarTransformation(star_db.catalog)
        targets = transformation.find_targets(star_db.parse(sql))
        assert not targets  # only one FK-joined filtered dimension remains


class TestRewrite:
    def test_adds_key_filter_subqueries(self, star_db):
        transformation = StarTransformation(star_db.catalog)
        tree = star_db.parse(STAR_SQL)
        tree = transformation.apply(tree, transformation.find_targets(tree)[0])
        subqueries = tree.subquery_exprs()
        assert len(subqueries) == 2
        assert all(s.kind == "IN" for s in subqueries)
        # joins are retained
        assert len(tree.from_items) == 3

    def test_not_reapplied(self, star_db):
        transformation = StarTransformation(star_db.catalog)
        tree = star_db.parse(STAR_SQL)
        tree = transformation.apply(tree, transformation.find_targets(tree)[0])
        assert not transformation.find_targets(tree)

    def test_semantics_preserved(self, star_db):
        expected = Counter(star_db.reference_execute(STAR_SQL))
        transformation = StarTransformation(star_db.catalog)
        tree = star_db.parse(STAR_SQL)
        tree = transformation.apply(tree, transformation.find_targets(tree)[0])
        from repro.engine.reference import ReferenceEvaluator

        evaluator = ReferenceEvaluator(star_db.storage, star_db.functions)
        assert Counter(evaluator.evaluate(tree)) == expected


class TestCostBasedDecision:
    def test_decision_recorded(self, star_db):
        optimized = star_db.optimize(STAR_SQL)
        decision = optimized.report.decision_for("star_transformation")
        assert decision is not None
        assert decision.states_evaluated == 2

    def test_execution_matches_all_configs(self, star_db):
        expected = Counter(star_db.reference_execute(STAR_SQL))
        for config in (
            OptimizerConfig(),
            OptimizerConfig().without("star_transformation"),
            OptimizerConfig.heuristic_mode(),
        ):
            assert Counter(star_db.execute(STAR_SQL, config).rows) == expected
