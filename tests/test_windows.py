"""Window function semantics (shared compute path: reference + executor)."""

from collections import Counter

import pytest

from repro import Database


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute_ddl(
        "CREATE TABLE accounts (acct_id INT, time INT, balance INT)"
    )
    database.insert("accounts", [
        {"acct_id": 1, "time": 1, "balance": 100},
        {"acct_id": 1, "time": 2, "balance": 200},
        {"acct_id": 1, "time": 2, "balance": 300},   # peer of time=2
        {"acct_id": 1, "time": 3, "balance": None},  # NULL ignored by AVG
        {"acct_id": 2, "time": 1, "balance": 50},
        {"acct_id": 2, "time": 2, "balance": 150},
    ])
    database.analyze()
    return database


def by_key(rows):
    return {(r[0], r[1], r[2] if len(r) > 3 else None): r[-1] for r in rows}


class TestRunningAggregates:
    def test_rows_frame_running_sum(self, db):
        rows = db.execute(
            "SELECT acct_id, time, balance, SUM(balance) OVER "
            "(PARTITION BY acct_id ORDER BY time "
            "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM accounts"
        ).rows
        acct2 = sorted(r for r in rows if r[0] == 2)
        assert [r[3] for r in acct2] == [50, 200]

    def test_range_frame_includes_peers(self, db):
        rows = db.execute(
            "SELECT acct_id, time, balance, SUM(balance) OVER "
            "(PARTITION BY acct_id ORDER BY time "
            "RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM accounts"
        ).rows
        # both time=2 rows of acct 1 see the same running sum (peers)
        time2 = [r[3] for r in rows if r[0] == 1 and r[1] == 2]
        assert time2 == [600, 600]

    def test_default_frame_is_range(self, db):
        with_frame = db.execute(
            "SELECT acct_id, SUM(balance) OVER (PARTITION BY acct_id "
            "ORDER BY time RANGE BETWEEN UNBOUNDED PRECEDING AND "
            "CURRENT ROW) FROM accounts"
        ).rows
        without_frame = db.execute(
            "SELECT acct_id, SUM(balance) OVER (PARTITION BY acct_id "
            "ORDER BY time) FROM accounts"
        ).rows
        assert Counter(with_frame) == Counter(without_frame)

    def test_whole_partition_without_order(self, db):
        rows = db.execute(
            "SELECT acct_id, AVG(balance) OVER (PARTITION BY acct_id) "
            "FROM accounts"
        ).rows
        acct1 = {r[1] for r in rows if r[0] == 1}
        assert acct1 == {200.0}  # AVG ignores the NULL balance

    def test_null_arguments_ignored(self, db):
        rows = db.execute(
            "SELECT acct_id, time, COUNT(balance) OVER "
            "(PARTITION BY acct_id ORDER BY time "
            "ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM accounts"
        ).rows
        acct1_final = max(
            (r for r in rows if r[0] == 1), key=lambda r: (r[1], r[2])
        )
        assert acct1_final[2] == 3  # four rows, one NULL balance


class TestRankingFunctions:
    def test_row_number(self, db):
        rows = db.execute(
            "SELECT acct_id, time, ROW_NUMBER() OVER "
            "(PARTITION BY acct_id ORDER BY time) FROM accounts"
        ).rows
        acct2 = sorted(r[2] for r in rows if r[0] == 2)
        assert acct2 == [1, 2]

    def test_rank_with_ties(self, db):
        rows = db.execute(
            "SELECT acct_id, time, RANK() OVER "
            "(PARTITION BY acct_id ORDER BY time) FROM accounts"
        ).rows
        acct1 = sorted((r[1], r[2]) for r in rows if r[0] == 1)
        # time=2 rows tie at rank 2; time=3 resumes at rank 4
        assert acct1 == [(1, 1), (2, 2), (2, 2), (3, 4)]


class TestUnsupportedFrames:
    def test_exotic_frame_rejected(self, db):
        from repro.errors import UnsupportedError

        with pytest.raises(UnsupportedError):
            db.execute(
                "SELECT SUM(balance) OVER (ORDER BY time "
                "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) FROM accounts"
            )


class TestWindowMatchesReference:
    @pytest.mark.parametrize("sql", [
        "SELECT acct_id, time, AVG(balance) OVER (PARTITION BY acct_id "
        "ORDER BY time) FROM accounts",
        "SELECT acct_id, MAX(balance) OVER (PARTITION BY acct_id) "
        "FROM accounts",
        "SELECT time, MIN(balance) OVER (ORDER BY time ROWS BETWEEN "
        "UNBOUNDED PRECEDING AND CURRENT ROW) FROM accounts",
    ])
    def test_equivalence(self, db, sql):
        assert Counter(db.execute(sql).rows) == Counter(
            db.reference_execute(sql)
        )
