"""Catalog and schema-definition tests."""

import pytest

from repro.catalog import Catalog, Column, DataType, ForeignKey, Index, TableDef
from repro.errors import CatalogError
from repro.sql.parser import parse_ddl


def make_catalog():
    catalog = Catalog()
    catalog.add_table(TableDef(
        "parent",
        [Column("id", DataType.INT, True), Column("x", DataType.INT)],
        primary_key=("id",),
    ))
    catalog.add_table(TableDef(
        "child",
        [Column("id", DataType.INT, True), Column("pid", DataType.INT)],
        primary_key=("id",),
        foreign_keys=[ForeignKey("child", ("pid",), "parent", ("id",))],
    ))
    return catalog


class TestTableDef:
    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableDef("t", [Column("a", DataType.INT), Column("a", DataType.INT)])

    def test_key_must_reference_existing_columns(self):
        with pytest.raises(CatalogError):
            TableDef("t", [Column("a", DataType.INT)], primary_key=("b",))

    def test_is_unique_key_with_pk(self):
        table = TableDef(
            "t", [Column("a", DataType.INT), Column("b", DataType.INT)],
            primary_key=("a",),
        )
        assert table.is_unique_key(["a"])
        assert table.is_unique_key(["a", "b"])  # superset still unique
        assert not table.is_unique_key(["b"])

    def test_column_lookup_case_insensitive(self):
        table = TableDef("t", [Column("A", DataType.INT)])
        assert table.has_column("a")
        assert table.column("A").name == "a"


class TestCatalog:
    def test_pk_gets_implicit_unique_index(self):
        catalog = make_catalog()
        indexes = catalog.indexes_on("parent")
        assert any(ix.unique and ix.columns == ("id",) for ix in indexes)

    def test_duplicate_table_rejected(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError):
            catalog.add_table(TableDef("parent", [Column("id", DataType.INT)]))

    def test_missing_table_raises(self):
        with pytest.raises(CatalogError):
            make_catalog().table("nope")

    def test_index_on_missing_column_rejected(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError):
            catalog.add_index(Index("bad", "parent", ("zzz",)))

    def test_unique_index_registers_unique_key(self):
        catalog = make_catalog()
        catalog.add_index(Index("ux", "parent", ("x",), unique=True))
        assert catalog.table("parent").is_unique_key(["x"])

    def test_indexes_on_leading_column_filter(self):
        catalog = make_catalog()
        catalog.add_index(Index("ix1", "parent", ("x", "id")))
        assert catalog.indexes_on("parent", "x")[0].name == "ix1"
        assert all(
            ix.leading_column == "id" for ix in catalog.indexes_on("parent", "id")
        )

    def test_foreign_key_between(self):
        catalog = make_catalog()
        fk = catalog.foreign_key_between("child", "parent")
        assert fk is not None
        assert fk.columns == ("pid",)
        assert catalog.foreign_key_between("parent", "child") is None

    def test_expensive_function_registry(self):
        catalog = make_catalog()
        catalog.register_expensive_function("udf", 250.0)
        assert catalog.is_expensive_function("UDF")
        assert catalog.function_cost("udf") == 250.0
        assert catalog.function_cost("upper") == 0.0


class TestDdlIntegration:
    def test_create_table_from_ddl(self):
        catalog = Catalog()
        catalog.create_table_from_ddl(parse_ddl(
            "CREATE TABLE d (id INT PRIMARY KEY, name VARCHAR(10) NOT NULL)"
        ))
        catalog.create_table_from_ddl(parse_ddl(
            "CREATE TABLE t (id INT PRIMARY KEY, d_id INT REFERENCES d(id), "
            "UNIQUE (d_id))"
        ))
        table = catalog.table("t")
        assert table.primary_key == ("id",)
        assert ("d_id",) in table.unique_keys
        assert table.foreign_keys[0].ref_table == "d"

    def test_pk_column_becomes_not_null(self):
        catalog = Catalog()
        catalog.create_table_from_ddl(parse_ddl("CREATE TABLE t (id INT PRIMARY KEY)"))
        assert catalog.table("t").column("id").not_null

    def test_double_primary_key_rejected(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.create_table_from_ddl(parse_ddl(
                "CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)"
            ))

    def test_create_index_from_ddl(self):
        catalog = Catalog()
        catalog.create_table_from_ddl(parse_ddl("CREATE TABLE t (a INT, b INT)"))
        catalog.create_index_from_ddl(parse_ddl("CREATE INDEX ix ON t (a, b)"))
        assert catalog.indexes_on("t", "a")[0].columns == ("a", "b")


class TestDataTypes:
    @pytest.mark.parametrize("sql_type,expected", [
        ("INT", DataType.INT),
        ("INTEGER", DataType.INT),
        ("NUMBER", DataType.FLOAT),
        ("FLOAT", DataType.FLOAT),
        ("VARCHAR", DataType.STRING),
        ("VARCHAR2", DataType.STRING),
        ("CHAR", DataType.STRING),
        ("DATE", DataType.DATE),
    ])
    def test_from_sql(self, sql_type, expected):
        assert DataType.from_sql(sql_type) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(CatalogError):
            DataType.from_sql("BLOB")
