"""Chaos suite: sweep faults over every live injection point.

For each generated workload query, a probe run records exactly which
injection points the statement crosses (transformations applied, the
operators of its plan, costing); each of those points is then re-run
with an armed fault.  The contract under test is the resilience layer's
whole reason to exist: **every** injected fault must yield either the
correct result (rescued by the degradation ladder) or a clean typed
error — never a wrong answer, never a hang, never a non-Repro crash.

``REPRO_CHAOS_SEED`` selects the seed for the planned-fault matrix so CI
can sweep several seeds without editing the suite.
"""

from __future__ import annotations

import os
from collections import Counter

import pytest

from repro import Database, OptimizerConfig, QueryService, ResilienceConfig
from repro.errors import FaultInjected, ReproError
from repro.resilience import FaultInjector, FaultSpec, inject
from repro.resilience.faults import injection_points
from repro.workload import apps_database
from repro.workload.querygen import MixWeights, QueryGenerator
from repro.workload.runner import register_workload_functions

#: the transformation-heavy generator mix of test_differential_random,
#: trimmed to the classes that stress distinct injection points
CHAOS_WEIGHTS = MixWeights(
    spj=0.22,
    exists=0.10, not_exists=0.10, in_multi=0.10, not_in=0.08,
    agg_subquery=0.10, groupby_view=0.10, distinct_view=0.06,
    gbp=0.08, union_all=0.06,
)

N_QUERIES = 6

RESILIENT = OptimizerConfig(resilience=ResilienceConfig(fallback=True))

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "101"))


@pytest.fixture(scope="module")
def apps():
    db, schema = apps_database(
        seed=11,
        modules=("hr",),
        master_rows=20,
        detail_rows=120,
        history_rows=200,
    )
    register_workload_functions(db, cost=50.0)
    db.analyze()
    return db, schema


@pytest.fixture(scope="module")
def generated(apps):
    _db, schema = apps
    generator = QueryGenerator(schema, seed=523, weights=CHAOS_WEIGHTS)
    return generator.generate(N_QUERIES)


def run_with_fault(db: Database, sql: str, spec: FaultSpec,
                   expected: Counter) -> str:
    """One chaos probe: returns the outcome class, failing the test on
    anything other than a correct result or a clean typed error."""
    db.quarantine.reset()
    with inject(spec) as injector:
        try:
            rows = Counter(db.execute(sql, RESILIENT).rows)
        except ReproError:
            # clean typed failure (e.g. an executor operator fault, which
            # is past the optimizer and cannot be replanned away)
            return "typed-error"
        except BaseException as exc:  # noqa: BLE001 - chaos verdict
            pytest.fail(f"{spec.point}: untyped escape {type(exc).__name__}: {exc}")
    assert rows == expected, f"{spec.point}: wrong rows via fallback"
    assert injector.fired, f"{spec.point}: armed fault never fired"
    return "fallback"


class TestChaosSweep:
    def test_every_live_point_fails_safe(self, apps, generated):
        db, _schema = apps
        outcomes: Counter = Counter()
        for query in generated:
            expected = Counter(db.reference_execute(query.sql))
            db.quarantine.reset()
            with inject() as probe:
                baseline = Counter(db.execute(query.sql, RESILIENT).rows)
            assert baseline == expected, f"{query.name}: fault-free mismatch"
            assert probe.counts, f"{query.name}: no injection points crossed"
            for point in sorted(probe.counts):
                spec = FaultSpec(point, at=1, repeat=True)
                outcomes[run_with_fault(db, query.sql, spec, expected)] += 1
        # the sweep must exercise both outcome classes: optimizer-side
        # faults get rescued, executor-side faults fail typed
        assert outcomes["fallback"] > 0
        assert outcomes["typed-error"] > 0

    def test_late_faults_also_fail_safe(self, apps, generated):
        # fire on a later invocation: mid-search / mid-scan failures
        db, _schema = apps
        query = generated[0]
        expected = Counter(db.reference_execute(query.sql))
        db.quarantine.reset()
        with inject() as probe:
            db.execute(query.sql, RESILIENT)
        for point, count in sorted(probe.counts.items()):
            if count < 2:
                continue
            run_with_fault(
                db, query.sql, FaultSpec(point, at=count, repeat=True), expected
            )

    def test_seed_planned_fault_matrix(self, apps, generated):
        db, _schema = apps
        query = generated[0]
        expected = Counter(db.reference_execute(query.sql))
        for offset in range(8):
            injector = FaultInjector.plan(
                seed=CHAOS_SEED + offset, points=injection_points()
            )
            db.quarantine.reset()
            with inject(injector=injector):
                try:
                    rows = Counter(db.execute(query.sql, RESILIENT).rows)
                except ReproError:
                    continue
            assert rows == expected, (
                f"seed {CHAOS_SEED + offset} ({injector.specs[0].point}): "
                "wrong rows via fallback"
            )


class TestServiceChaos:
    """Plan-cache faults degrade to uncached execution, never failure."""

    def test_cache_lookup_fault_bypasses_cache(self, apps):
        db, _schema = apps
        service = QueryService(db)
        sql = "SELECT id FROM hr_master0 WHERE amount > 50"
        expected = Counter(db.reference_execute(sql))
        with inject(FaultSpec("plan_cache.lookup", repeat=True)):
            result = service.execute(sql, config=RESILIENT)
        assert Counter(result.rows) == expected
        assert result.cache_status == "uncached"
        assert service.metrics.snapshot()["cache_errors"] >= 1

    def test_cache_store_fault_still_serves(self, apps):
        db, _schema = apps
        service = QueryService(db)
        sql = "SELECT id FROM hr_master0 WHERE amount > 60"
        expected = Counter(db.reference_execute(sql))
        with inject(FaultSpec("plan_cache.store", repeat=True)):
            result = service.execute(sql, config=RESILIENT)
        assert Counter(result.rows) == expected
        assert service.metrics.snapshot()["cache_errors"] >= 1
        # nothing poisoned: the next fault-free call parses and caches
        again = service.execute(sql, config=RESILIENT)
        assert Counter(again.rows) == expected

    def test_degraded_plan_is_cached_as_degraded_and_retried(self, apps):
        db, _schema = apps
        service = QueryService(db)
        sql = (
            "SELECT d.id FROM hr_detail0 d WHERE EXISTS "
            "(SELECT 1 FROM hr_master0 m WHERE m.id = d.m0_id "
            "AND m.status = 1)"
        )
        expected = Counter(db.reference_execute(sql))
        db.quarantine.reset()
        with inject() as probe:
            db.execute(sql, RESILIENT)
        point = next(
            p for p in sorted(probe.counts) if p.startswith("transform.")
        )
        with inject(FaultSpec(point, repeat=True)):
            first = service.execute(sql, config=RESILIENT)
        assert Counter(first.rows) == expected
        assert first.report.degradation is not None
        entry = next(e for e in service.cache.entries() if e.sql == sql)
        assert entry.degraded == first.report.degradation.level

        # served degraded from cache while the quarantine stands
        second = service.execute(sql, config=RESILIENT)
        assert second.cache_status == "hit"
        assert service.metrics.snapshot()["degraded_executions"] >= 2

        # a quarantine reset re-attempts the statement at full CBQT
        db.quarantine.reset()
        third = service.execute(sql, config=RESILIENT)
        assert third.cache_status == "retry"
        assert Counter(third.rows) == expected
        assert third.report.degradation is None
        assert service.metrics.snapshot()["degraded_retries"] == 1
        entry = next(e for e in service.cache.entries() if e.sql == sql)
        assert entry.degraded is None
