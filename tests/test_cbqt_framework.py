"""CBQT framework tests: decisions, interleaving, juxtaposition, cost
cut-off, heuristic fallback mode."""

from collections import Counter

import pytest

from repro import Database, OptimizerConfig
from repro.cbqt.framework import CbqtConfig, CbqtFramework
from repro.optimizer.physical import PhysicalOptimizer


def optimize(db, sql, **cbqt_kwargs):
    physical = PhysicalOptimizer(db.catalog, db.statistics)
    framework = CbqtFramework(db.catalog, physical, CbqtConfig(**cbqt_kwargs))
    return framework.optimize(db.parse(sql))


AGG_SQL = (
    "SELECT e.emp_id FROM employees e, job_history j "
    "WHERE e.emp_id = j.emp_id AND j.start_date > 50 AND e.salary > "
    "(SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)"
)


class TestDecisions:
    def test_unnesting_decision_recorded(self, tiny_db):
        _tree, _plan, report = optimize(tiny_db, AGG_SQL)
        decision = report.decision_for("unnest_view")
        assert decision is not None
        assert decision.n_objects == 1
        assert decision.strategy == "exhaustive"
        # alternatives: none / unnest / unnest+merge -> 3 states
        assert decision.states_evaluated == 3

    def test_best_state_cost_not_above_baseline(self, tiny_db):
        _tree, _plan, report = optimize(tiny_db, AGG_SQL)
        decision = report.decision_for("unnest_view")
        assert decision.best_cost <= decision.baseline_cost

    def test_no_decision_for_irrelevant_transformations(self, tiny_db):
        _tree, _plan, report = optimize(
            tiny_db, "SELECT emp_id FROM employees WHERE salary > 3"
        )
        assert report.decision_for("unnest_view") is None
        assert report.decision_for("jppd") is None

    def test_transformed_sql_exposed(self, tiny_db):
        _tree, _plan, report = optimize(tiny_db, AGG_SQL)
        assert "SELECT" in report.transformed_sql

    def test_forced_strategy(self, tiny_db):
        _tree, _plan, report = optimize(
            tiny_db, AGG_SQL, search_strategy="two_pass"
        )
        decision = report.decision_for("unnest_view")
        assert decision.strategy == "two_pass"
        assert decision.states_evaluated == 2

    def test_result_correct_for_all_strategies(self, tiny_db):
        expected = Counter(tiny_db.reference_execute(AGG_SQL))
        for strategy in ("exhaustive", "linear", "iterative", "two_pass"):
            config = OptimizerConfig().with_strategy(strategy)
            got = Counter(tiny_db.execute(AGG_SQL, config).rows)
            assert got == expected, strategy


class TestInterleaving:
    def test_interleaved_alternative_exists(self, tiny_db):
        _tree, _plan, report = optimize(tiny_db, AGG_SQL, interleaving=True)
        decision = report.decision_for("unnest_view")
        assert decision.states_evaluated == 3

    def test_disabling_interleaving_shrinks_space(self, tiny_db):
        _tree, _plan, report = optimize(tiny_db, AGG_SQL, interleaving=False)
        decision = report.decision_for("unnest_view")
        assert decision.states_evaluated == 2

    def test_interleaved_plan_never_worse(self, tiny_db):
        _t1, plan_with, _r1 = optimize(tiny_db, AGG_SQL, interleaving=True)
        _t2, plan_without, _r2 = optimize(tiny_db, AGG_SQL, interleaving=False)
        assert plan_with.cost <= plan_without.cost + 1e-6


class TestJuxtaposition:
    SQL = (
        "SELECT e.emp_id FROM employees e, "
        "(SELECT DISTINCT j.dept_id AS k FROM job_history j "
        "WHERE j.job_title > 2) v "
        "WHERE e.dept_id = v.k AND e.salary > 50"
    )

    def test_three_way_choice(self, tiny_db):
        _tree, _plan, report = optimize(tiny_db, self.SQL, juxtaposition=True)
        decision = report.decision_for("groupby_merge")
        assert decision is not None
        # none / merge / jppd
        assert decision.states_evaluated == 3

    def test_without_juxtaposition_two_way(self, tiny_db):
        _tree, _plan, report = optimize(tiny_db, self.SQL, juxtaposition=False)
        decision = report.decision_for("groupby_merge")
        assert decision.states_evaluated == 2

    def test_correct_under_both_settings(self, tiny_db):
        expected = Counter(tiny_db.reference_execute(self.SQL))
        for juxtaposition in (True, False):
            _tree, plan, _r = optimize(
                tiny_db, self.SQL, juxtaposition=juxtaposition
            )
            from repro.engine import Executor

            physical = PhysicalOptimizer(tiny_db.catalog, tiny_db.statistics)
            executor = Executor(
                tiny_db.storage, tiny_db.catalog, tiny_db.functions,
                plan_subquery=physical.optimize,
            )
            rows, _stats = executor.execute(plan)
            assert Counter(rows) == expected


class TestDisabledTransformations:
    def test_disabled_unnesting_leaves_subquery(self, tiny_db):
        tree, _plan, report = optimize(
            tiny_db, AGG_SQL,
            disabled_transformations=frozenset(
                {"unnest_view", "subquery_merge"}
            ),
        )
        assert tree.subquery_exprs()
        assert report.decision_for("unnest_view") is None

    def test_disabled_jppd_skipped(self, tiny_db):
        sql = TestJuxtaposition.SQL
        _tree, _plan, report = optimize(
            tiny_db, sql, disabled_transformations=frozenset({"jppd"})
        )
        assert report.decision_for("jppd") is None
        # juxtaposition with jppd must also vanish
        decision = report.decision_for("groupby_merge")
        assert decision.states_evaluated <= 3


class TestHeuristicMode:
    def test_heuristic_mode_records_no_states(self, tiny_db):
        _tree, _plan, report = optimize(tiny_db, AGG_SQL, enabled=False)
        assert report.heuristic_mode
        for decision in report.decisions:
            assert decision.strategy == "heuristic"

    def test_pre10g_rule_blocks_unnest_with_index_and_filter(self, tiny_db):
        # outer filter present + index on e2.dept_id -> rule says keep TIS
        tree, _plan, _report = optimize(tiny_db, AGG_SQL, enabled=False)
        assert tree.subquery_exprs()

    def test_pre10g_rule_unnests_without_outer_filter(self, tiny_db):
        sql = (
            "SELECT e.emp_id FROM employees e WHERE e.salary > "
            "(SELECT AVG(e2.salary) FROM employees e2 "
            "WHERE e2.mgr_id = e.mgr_id)"
        )
        # correlation on mgr_id: no index on employees.mgr_id -> unnest
        tree, _plan, _report = optimize(tiny_db, sql, enabled=False)
        assert not tree.subquery_exprs()

    def test_heuristic_mode_correct(self, tiny_db):
        expected = Counter(tiny_db.reference_execute(AGG_SQL))
        got = Counter(
            tiny_db.execute(AGG_SQL, OptimizerConfig.heuristic_mode()).rows
        )
        assert got == expected


class TestCostCutoff:
    def test_cutoff_preserves_chosen_plan(self, tiny_db):
        _t1, plan_with, r_with = optimize(tiny_db, AGG_SQL, cost_cutoff=True)
        _t2, plan_without, r_without = optimize(
            tiny_db, AGG_SQL, cost_cutoff=False
        )
        assert plan_with.cost == pytest.approx(plan_without.cost, rel=1e-6)

    def test_cutoff_abandoned_states_count_infinite(self, tiny_db):
        _tree, _plan, report = optimize(tiny_db, AGG_SQL, cost_cutoff=True)
        decision = report.decision_for("unnest_view")
        # all states still enumerated (aborted ones cost inf internally)
        assert decision.states_evaluated == 3
