"""Recovery-path tests: checkpoint + WAL replay must reproduce exactly
the state the live database held.

The centerpiece is a differential property test: a randomized DML/DDL
workload runs simultaneously against a durable database and an
in-memory oracle; after every reopen (with and without interleaved
checkpoints) the two must ``state_digest``-compare equal.  The
edge-case classes cover empty/missing files, checkpoint-skip records,
and the refusal paths (unknown ops, damaged checkpoints, LSN holes).
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro import Database, DurabilityConfig
from repro.durability import (
    CHECKPOINT_FILENAME,
    WAL_FILENAME,
    read_wal,
    state_digest,
    verify_recovery,
)
from repro.durability.wal import encode_record
from repro.errors import RecoveryError


def _open(tmp_path, **kwargs) -> Database:
    return Database(
        data_dir=str(tmp_path / "data"),
        durability=DurabilityConfig(fsync="off", **kwargs),
    )


def _paths(tmp_path) -> tuple[str, str]:
    data = str(tmp_path / "data")
    return (
        os.path.join(data, WAL_FILENAME),
        os.path.join(data, CHECKPOINT_FILENAME),
    )


class TestEmptyAndMissing:
    def test_fresh_directory(self, tmp_path):
        db = _open(tmp_path)
        report = db.recovery
        assert report is not None
        assert report.checkpoint_lsn == 0
        assert report.wal_records_total == 0
        assert report.last_lsn == 0
        db.close()

    def test_empty_wal_file(self, tmp_path):
        wal_path, _ = _paths(tmp_path)
        os.makedirs(os.path.dirname(wal_path))
        open(wal_path, "wb").close()
        db = _open(tmp_path)
        assert db.recovery.wal_records_total == 0
        db.close()

    def test_reopen_of_untouched_database(self, tmp_path):
        _open(tmp_path).close()
        db = _open(tmp_path)
        assert db.recovery.wal_records_total == 0
        assert sorted(db.catalog.tables) == []
        db.close()


class TestReplay:
    def test_ddl_insert_analyze_roundtrip(self, tmp_path):
        db = _open(tmp_path)
        db.execute_ddl(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT, w INT)"
        )
        db.execute_ddl("CREATE INDEX t_v ON t (v)")
        db.insert("t", [{"id": i, "v": i % 5, "w": i * 2} for i in range(40)])
        db.analyze("t")
        db.register_function("costly", lambda x: x, expensive_cost=123.0)
        before = state_digest(db)
        db.close()

        db2 = _open(tmp_path)
        assert db2.recovery.wal_records_applied == 5
        assert state_digest(db2) == before
        # the recovered database stays queryable
        result = db2.execute("SELECT COUNT(*) FROM t WHERE v = 1")
        assert result.rows == [(8,)]
        db2.close()

    def test_checkpoint_truncates_and_reopen_skips_wal(self, tmp_path):
        wal_path, checkpoint_path = _paths(tmp_path)
        db = _open(tmp_path)
        db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY)")
        db.insert("t", [{"id": i} for i in range(10)])
        lsn = db.checkpoint()
        assert lsn == 2
        assert os.path.getsize(wal_path) == 0
        db.insert("t", [{"id": 100}])
        before = state_digest(db)
        db.close()

        db2 = _open(tmp_path)
        report = db2.recovery
        assert report.checkpoint_lsn == 2
        assert report.checkpoint_rows == 10
        assert report.wal_records_applied == 1  # just the tail insert
        assert state_digest(db2) == before
        db2.close()
        assert os.path.exists(checkpoint_path)

    def test_stale_wal_records_below_checkpoint_are_skipped(self, tmp_path):
        """A crash between the checkpoint rename and the WAL truncate
        leaves already-checkpointed records in the log; replay must skip
        them instead of double-applying."""
        wal_path, _ = _paths(tmp_path)
        db = _open(tmp_path)
        db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY)")
        db.insert("t", [{"id": 1}])
        wal_bytes = open(wal_path, "rb").read()
        db.checkpoint()  # truncates the WAL
        before = state_digest(db)
        db.close()
        # simulate the crash window: put the pre-checkpoint records back
        with open(wal_path, "wb") as handle:
            handle.write(wal_bytes)

        db2 = _open(tmp_path)
        assert db2.recovery.wal_records_skipped == 2
        assert db2.recovery.wal_records_applied == 0
        assert state_digest(db2) == before
        db2.close()

    def test_auto_checkpoint_every(self, tmp_path):
        wal_path, checkpoint_path = _paths(tmp_path)
        db = _open(tmp_path, checkpoint_every=3)
        db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY)")
        db.insert("t", [{"id": 1}])
        assert not os.path.exists(checkpoint_path)
        db.insert("t", [{"id": 2}])  # record 3 -> auto checkpoint
        assert os.path.exists(checkpoint_path)
        assert os.path.getsize(wal_path) == 0
        db.close()


class TestRefusals:
    def test_unknown_op_refused(self, tmp_path):
        wal_path, _ = _paths(tmp_path)
        os.makedirs(os.path.dirname(wal_path))
        with open(wal_path, "wb") as handle:
            handle.write(encode_record({"lsn": 1, "op": "teleport"}))
        with pytest.raises(RecoveryError, match="unknown WAL op"):
            _open(tmp_path)

    def test_lsn_gap_after_checkpoint_refused(self, tmp_path):
        wal_path, _ = _paths(tmp_path)
        os.makedirs(os.path.dirname(wal_path))
        with open(wal_path, "wb") as handle:
            handle.write(encode_record({
                "lsn": 5, "op": "create_table",
                "table": {"name": "t", "columns": [
                    {"name": "id", "type": "INT", "not_null": True}
                ], "primary_key": ["id"], "unique_keys": [],
                    "foreign_keys": []},
            }))
        with pytest.raises(RecoveryError, match="records are missing"):
            _open(tmp_path)

    def test_damaged_checkpoint_refused(self, tmp_path):
        _, checkpoint_path = _paths(tmp_path)
        os.makedirs(os.path.dirname(checkpoint_path))
        with open(checkpoint_path, "w") as handle:
            handle.write('{"format": 99, "lsn": 1}')
        with pytest.raises(RecoveryError, match="unsupported format"):
            _open(tmp_path)
        with open(checkpoint_path, "w") as handle:
            handle.write("not json at all")
        with pytest.raises(RecoveryError, match="unreadable checkpoint"):
            _open(tmp_path)


class TestVerifyRecovery:
    def test_healthy_directory_verifies(self, tmp_path):
        db = _open(tmp_path)
        db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.insert("t", [{"id": i, "v": None if i % 3 else i} for i in range(9)])
        db.analyze()
        db.close()
        report = verify_recovery(str(tmp_path / "data"), *_paths(tmp_path))
        assert report.wal_records_applied == 3

    def test_verify_is_read_only_on_torn_tail(self, tmp_path):
        wal_path, checkpoint_path = _paths(tmp_path)
        db = _open(tmp_path)
        db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY)")
        db.insert("t", [{"id": 1}])
        db.close()
        with open(wal_path, "ab") as handle:
            handle.write(b"0000002a 00000000 {\"half")  # torn tail
        size = os.path.getsize(wal_path)
        verify_recovery(str(tmp_path / "data"), wal_path, checkpoint_path)
        assert os.path.getsize(wal_path) == size  # file untouched


#: workload steps the property test draws from (weights approximate a
#: write-heavy OLTP mix with occasional DDL)
_OPS = ["insert"] * 6 + ["analyze", "create_index", "create_table"]


def _random_step(rng: random.Random, db: Database, n_tables: list[int]) -> None:
    tables = sorted(db.catalog.tables)  # staticcheck: ignore[lock.discipline] single-threaded test driver
    op = rng.choice(_OPS) if tables else "create_table"
    if op == "create_table":
        name = f"t{n_tables[0]}"
        n_tables[0] += 1
        db.execute_ddl(
            f"CREATE TABLE {name} (id INT PRIMARY KEY, a INT, b INT)"
        )
    elif op == "create_index":
        table = rng.choice(tables)
        name = f"{table}_ix{rng.randrange(10_000)}"
        if name not in db.catalog.indexes:
            db.execute_ddl(f"CREATE INDEX {name} ON {table} (a)")
    elif op == "analyze":
        db.analyze(rng.choice(tables))
    else:
        table = rng.choice(tables)
        base = db.storage.get(table).row_count
        db.insert(table, [
            {"id": base * 100 + i, "a": rng.randrange(7) or None,
             "b": rng.randrange(1000)}
            for i in range(rng.randrange(1, 9))
        ])


@pytest.mark.parametrize("seed", [101, 211, 307])
@pytest.mark.parametrize("checkpoints", [False, True])
def test_randomized_workload_recovers_identically(tmp_path, seed, checkpoints):
    """Differential oracle: durable database vs. in-memory twin running
    the identical operation stream, compared digest-for-digest across
    several close/reopen cycles."""
    rng = random.Random(seed)
    oracle_rng = random.Random(seed)
    durable = _open(tmp_path)
    oracle = Database()
    n_tables = [0]
    oracle_tables = [0]
    for cycle in range(3):
        for _ in range(12):
            _random_step(rng, durable, n_tables)
            _random_step(oracle_rng, oracle, oracle_tables)
        if checkpoints:
            durable.checkpoint()
        assert state_digest(durable) == state_digest(oracle), (
            f"digest diverged live in cycle {cycle}"
        )
        before = state_digest(durable)
        durable.close()
        durable = _open(tmp_path)
        assert state_digest(durable) == before, (
            f"recovery diverged in cycle {cycle}"
        )
    wal_path, checkpoint_path = _paths(tmp_path)
    durable.close()
    verify_recovery(str(tmp_path / "data"), wal_path, checkpoint_path)
    # the WAL on disk is exactly what read_wal reports — no tearing
    assert read_wal(wal_path).torn_bytes == 0
