"""Bind variables end to end: lexer, parser, rendering, selectivity
peeking, and execution against the reference evaluator."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError, LexError
from repro.qtree.binds import apply_peeks, bind_keys, referenced_tables
from repro.sql import ast, parse_query, tokenize
from repro.sql.render import render_expr
from repro.sql.tokens import TokenType


# -- lexer -----------------------------------------------------------------


def test_lex_positional_and_named_binds():
    tokens = tokenize("SELECT * FROM t WHERE a = ? AND b = :low AND c = :1")
    binds = [t for t in tokens if t.type is TokenType.BIND]
    assert [t.value for t in binds] == ["", "low", "1"]


def test_lex_bare_colon_is_an_error():
    with pytest.raises(LexError):
        tokenize("SELECT : FROM t")


# -- parser ----------------------------------------------------------------


def test_positional_binds_numbered_left_to_right():
    stmt = parse_query("SELECT a FROM t WHERE b = ? AND c BETWEEN ? AND ?")
    keys = [
        node.key
        for conjunct in (stmt.where,)
        for node in conjunct.walk()
        if isinstance(node, ast.BindParam)
    ]
    assert keys == ["1", "2", "3"]


def test_named_binds_are_lowercased_and_shared():
    stmt = parse_query("SELECT a FROM t WHERE b = :Low OR c = :LOW")
    params = [n for n in stmt.where.walk() if isinstance(n, ast.BindParam)]
    assert [p.key for p in params] == ["low", "low"]
    assert params[0] == params[1]


def test_bind_render_round_trip():
    stmt = parse_query("SELECT a FROM t WHERE b = ? AND c = :hi")
    rendered = render_expr(stmt.where)
    assert rendered == "b = :1 AND c = :hi"
    again = parse_query(f"SELECT a FROM t WHERE {rendered}")
    keys = [n.key for n in again.where.walk() if isinstance(n, ast.BindParam)]
    assert keys == ["1", "hi"]


# -- tree helpers ----------------------------------------------------------


def test_bind_keys_and_referenced_tables(tiny_db):
    db = tiny_db
    tree = db.parse(
        "SELECT e.emp_id FROM employees e "
        "WHERE e.salary > :floor AND e.dept_id IN "
        "(SELECT d.dept_id FROM departments d WHERE d.loc_id = ?)"
    )
    assert bind_keys(tree) == {"floor", "1"}
    assert referenced_tables(tree) == {"employees", "departments"}


def test_apply_peeks_sets_only_known_keys(tiny_db):
    db = tiny_db
    tree = db.parse("SELECT e.emp_id FROM employees e WHERE e.salary > :floor")
    apply_peeks(tree, {"other": 1})
    [param] = [
        n
        for block in tree.iter_blocks()
        for c in block.all_conjuncts()
        for n in c.walk()
        if isinstance(n, ast.BindParam)
    ]
    assert not param.has_peek
    apply_peeks(tree, {"floor": 40})
    assert param.has_peek and param.peeked == 40


# -- peeked selectivity ----------------------------------------------------


def test_peeked_bind_matches_literal_selectivity(tiny_db):
    db = tiny_db
    literal = db.optimize("SELECT e.emp_id FROM employees e WHERE e.salary > 80")
    peeked = db.optimize(
        "SELECT e.emp_id FROM employees e WHERE e.salary > :floor",
        binds={"floor": 80},
    )
    unpeeked = db.optimize("SELECT e.emp_id FROM employees e WHERE e.salary > :floor")
    assert peeked.plan.cardinality == literal.plan.cardinality
    assert unpeeked.plan.cardinality != literal.plan.cardinality


# -- execution -------------------------------------------------------------

PARAM_QUERIES = [
    ("SELECT e.emp_id FROM employees e WHERE e.salary > :floor", {"floor": 45}),
    (
        "SELECT e.emp_id, e.salary FROM employees e "
        "WHERE e.dept_id = ? AND e.salary BETWEEN ? AND ?",
        {"1": 4, "2": 10, "3": 70},
    ),
    (
        "SELECT e.emp_id FROM employees e WHERE e.dept_id IN (:a, :b)",
        {"a": 2, "b": 7},
    ),
    (
        "SELECT e.emp_id FROM employees e WHERE EXISTS "
        "(SELECT 1 FROM job_history j "
        " WHERE j.emp_id = e.emp_id AND j.start_date > :cutoff)",
        {"cutoff": 60},
    ),
]


@pytest.mark.parametrize("sql,binds", PARAM_QUERIES)
def test_bound_execution_matches_reference(sql, binds, tiny_db):
    db = tiny_db
    result = db.execute(sql, binds=binds)
    reference = db.reference_execute(sql, binds=binds)
    assert sorted(map(repr, result.rows)) == sorted(map(repr, reference))


def test_same_plan_different_binds_gives_different_rows(tiny_db):
    db = tiny_db
    sql = "SELECT e.emp_id FROM employees e WHERE e.salary > :floor"
    low = db.execute(sql, binds={"floor": 10})
    high = db.execute(sql, binds={"floor": 80})
    assert len(low.rows) > len(high.rows)
    assert sorted(high.rows) == sorted(db.reference_execute(sql, binds={"floor": 80}))


def test_missing_bind_value_raises(tiny_db):
    db = tiny_db
    with pytest.raises(ExecutionError, match="no value bound.*:floor"):
        db.execute("SELECT e.emp_id FROM employees e WHERE e.salary > :floor")


def test_null_bind_is_a_valid_value(tiny_db):
    db = tiny_db
    sql = "SELECT e.emp_id FROM employees e WHERE e.dept_id = :d"
    result = db.execute(sql, binds={"d": None})
    assert result.rows == []
