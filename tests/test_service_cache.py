"""The query-serving layer: plan cache, invalidation, eviction,
adaptive cursor sharing, version counters, and concurrency."""

from __future__ import annotations

import threading

import pytest

from repro import Database, QueryService
from repro.service import normalize_binds, normalize_sql
from repro.errors import ExecutionError


def _skew_db() -> Database:
    """events.kind: value 0 covers 91% of rows, values 1..9 are rare —
    a frequency-histogram column where bind peeking matters."""
    db = Database()
    db.execute_ddl(
        "CREATE TABLE events (id INT PRIMARY KEY, kind INT, payload INT)"
    )
    db.execute_ddl("CREATE INDEX ev_kind ON events (kind)")
    db.insert("events", [
        {"id": i, "kind": 0 if i <= 910 else 1 + (i % 9), "payload": i * 3}
        for i in range(1, 1001)
    ])
    db.analyze()
    return db


def _two_table_db() -> Database:
    db = Database()
    db.execute_ddl("CREATE TABLE a (id INT PRIMARY KEY, x INT)")
    db.execute_ddl("CREATE TABLE b (id INT PRIMARY KEY, y INT)")
    db.insert("a", [{"id": i, "x": i % 7} for i in range(1, 101)])
    db.insert("b", [{"id": i, "y": i % 5} for i in range(1, 101)])
    db.analyze()
    return db


# -- bind normalization ----------------------------------------------------


def test_normalize_binds_forms():
    assert normalize_binds(None) == {}
    assert normalize_binds([10, 20]) == {"1": 10, "2": 20}
    assert normalize_binds({"Low": 1, 2: 5}) == {"low": 1, "2": 5}
    with pytest.raises(ExecutionError):
        normalize_binds(42)


def test_positional_sequence_binds_through_service():
    db = _two_table_db()
    service = QueryService(db)
    statement = service.prepare("SELECT a.x FROM a WHERE a.id = ?")
    assert statement.execute([7]).rows == [(7 % 7,)]


# -- hit / miss / invalidation ---------------------------------------------


def test_identical_sql_hits_cache():
    service = QueryService(_two_table_db())
    sql = "SELECT a.id FROM a WHERE a.x = :v"
    first = service.execute(sql, {"v": 3})
    second = service.execute(sql, {"v": 3})
    assert (first.cache_status, second.cache_status) == ("miss", "hit")
    # whitespace-insensitive key
    third = service.execute("SELECT   a.id\nFROM a WHERE a.x = :v", {"v": 3})
    assert third.cache_status == "hit"
    assert normalize_sql(" SELECT  x\n FROM t ") == "SELECT x FROM t"


def test_analyze_invalidates_dependent_entries_only():
    db = _two_table_db()
    service = QueryService(db)
    service.execute("SELECT a.id FROM a WHERE a.x = 1")
    service.execute("SELECT b.id FROM b WHERE b.y = 1")

    db.analyze("a")
    on_a = service.execute("SELECT a.id FROM a WHERE a.x = 1")
    on_b = service.execute("SELECT b.id FROM b WHERE b.y = 1")
    assert on_a.cache_status == "miss"  # stale: stats version bumped
    assert on_b.cache_status == "hit"   # untouched table stays cached
    assert service.metrics.invalidations == 1


def test_ddl_invalidates_dependent_entries_only():
    db = _two_table_db()
    service = QueryService(db)
    service.execute("SELECT a.id FROM a WHERE a.x = 1")
    service.execute("SELECT b.id FROM b WHERE b.y = 1")

    db.execute_ddl("CREATE INDEX a_x_ix ON a (x)")
    assert service.execute("SELECT a.id FROM a WHERE a.x = 1").cache_status == "miss"
    assert service.execute("SELECT b.id FROM b WHERE b.y = 1").cache_status == "hit"


def test_insert_invalidates_via_stats_version():
    db = _two_table_db()
    service = QueryService(db)
    service.execute("SELECT a.id FROM a WHERE a.x = 1")
    db.insert("a", [{"id": 1000, "x": 1}])
    result = service.execute("SELECT a.id FROM a WHERE a.x = 1")
    assert result.cache_status == "miss"
    assert (1000,) in result.rows


def test_explicit_invalidate_by_table():
    db = _two_table_db()
    service = QueryService(db)
    service.execute("SELECT a.id FROM a WHERE a.x = 1")
    service.execute("SELECT b.id FROM b WHERE b.y = 1")
    assert service.invalidate("a") == 1
    assert len(service.cache) == 1
    assert service.invalidate() == 1
    assert len(service.cache) == 0


# -- eviction --------------------------------------------------------------


def test_lru_eviction_order_under_small_capacity():
    db = _two_table_db()
    service = QueryService(db, capacity=2)
    q_a = "SELECT a.id FROM a WHERE a.x = 0"
    q_b = "SELECT b.id FROM b WHERE b.y = 0"
    q_c = "SELECT a.x FROM a WHERE a.id = 5"

    service.execute(q_a)
    service.execute(q_b)
    service.execute(q_c)  # evicts q_a (LRU)
    cached_texts = [key[0] for key in service.cache.keys()]
    assert normalize_sql(q_a) not in cached_texts
    assert service.metrics.evictions == 1

    service.execute(q_b)  # touch: q_b becomes MRU
    service.execute(q_a)  # re-parse; evicts q_c, not the just-touched q_b
    cached_texts = [key[0] for key in service.cache.keys()]
    assert cached_texts == [normalize_sql(q_b), normalize_sql(q_a)]
    assert service.metrics.evictions == 2


# -- adaptive cursor sharing -----------------------------------------------


def test_bind_drift_triggers_reoptimization_and_stays_correct():
    db = _skew_db()
    service = QueryService(db, reoptimize_threshold=8.0)
    statement = service.prepare("SELECT ev.id FROM events ev WHERE ev.kind = :k")
    sql = statement.sql

    rare = statement.execute({"k": 5})
    assert rare.cache_status == "miss"
    rare_again = statement.execute({"k": 5})
    assert rare_again.cache_status == "hit"
    # cache hit with a *different* rare value: same selectivity class
    other_rare = statement.execute({"k": 7})
    assert other_rare.cache_status == "hit"
    assert sorted(other_rare.rows) == sorted(
        db.reference_execute(sql, binds={"k": 7})
    )

    # the popular value is ~91x more selective than peeked: re-optimize
    popular = statement.execute({"k": 0})
    assert popular.cache_status == "reoptimized"
    assert service.metrics.reoptimizations == 1
    assert sorted(popular.rows) == sorted(
        db.reference_execute(sql, binds={"k": 0})
    )

    # the re-optimized plan reflects the new peek: its cardinality is the
    # popular value's 910 rows, not the rare value's 10
    assert popular.plan.cardinality > rare.plan.cardinality * 10
    popular_again = statement.execute({"k": 0})
    assert popular_again.cache_status == "hit"


def test_small_drift_shares_the_cached_plan():
    db = _skew_db()
    service = QueryService(db, reoptimize_threshold=8.0)
    sql = "SELECT ev.id FROM events ev WHERE ev.kind = :k"
    service.execute(sql, {"k": 3})
    # all rare kinds have identical frequency: no drift, plan shared
    for kind in (4, 5, 6):
        assert service.execute(sql, {"k": kind}).cache_status == "hit"
    assert service.metrics.reoptimizations == 0


# -- version counters (satellite) ------------------------------------------


def test_catalog_and_statistics_version_counters():
    db = Database()
    assert db.catalog.version == 0
    db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    after_create = db.catalog.version
    assert after_create >= 1
    assert db.catalog.table_version("t") == after_create

    db.execute_ddl("CREATE INDEX t_v ON t (v)")
    assert db.catalog.version == after_create + 1
    assert db.catalog.table_version("t") == after_create + 1

    assert db.statistics.version == 0
    db.insert("t", [{"id": 1, "v": 2}])  # drop() bumps even with no stats
    assert db.statistics.version == 1
    db.analyze("t")
    assert db.statistics.version == 2
    assert db.statistics.table_version("t") == 2
    db.statistics.clear()
    assert db.statistics.version == 3


# -- concurrency -----------------------------------------------------------


def test_eight_threads_no_lost_counter_updates():
    db = _two_table_db()
    service = QueryService(db)
    statements = [
        "SELECT a.id FROM a WHERE a.x = 1",
        "SELECT b.id FROM b WHERE b.y = 2",
        "SELECT a.x FROM a WHERE a.id = :id",
        "SELECT b.y FROM b WHERE b.id = :id",
    ]
    per_thread = 50
    n_threads = 8
    errors: list[Exception] = []
    expected_rows = {
        sql: sorted(db.reference_execute(sql, binds={"id": 33}))
        for sql in statements
    }

    def worker(seed: int) -> None:
        try:
            for i in range(per_thread):
                sql = statements[(seed + i) % len(statements)]
                result = service.execute(sql, {"id": 33})
                assert sorted(result.rows) == expected_rows[sql]
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(n,)) for n in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    total = n_threads * per_thread
    stats = service.cache_stats()
    assert stats["executions"] == total
    # every execution does exactly one cache lookup: a hit or a miss
    assert stats["hits"] + stats["misses"] == total
    assert stats["misses"] >= len(statements)


# -- explain surface -------------------------------------------------------


def test_service_explain_shows_cache_state_and_counters():
    service = QueryService(_two_table_db())
    sql = "SELECT a.id FROM a WHERE a.x = :v"
    first = service.explain(sql, {"v": 1})
    assert first.startswith("-- cache: miss")
    second = service.explain(sql, {"v": 1})
    assert second.startswith("-- cache: hit")
    assert "plan cache statistics" in second
    assert "hits" in second and "reoptimizations" in second
