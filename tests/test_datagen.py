"""Synthetic data-generation primitive tests."""

import random
from collections import Counter

import pytest

from repro.catalog import datagen


def rng():
    return random.Random(42)


class TestGenerators:
    def test_sequential(self):
        gen = datagen.sequential_int(10)
        assert [gen(rng(), i) for i in range(3)] == [10, 11, 12]

    def test_uniform_bounds(self):
        gen = datagen.uniform_int(5, 9)
        r = rng()
        values = [gen(r, i) for i in range(200)]
        assert min(values) >= 5 and max(values) <= 9

    def test_zipf_is_skewed(self):
        gen = datagen.zipf_int(100, skew=1.2)
        r = rng()
        counts = Counter(gen(r, i) for i in range(5000))
        top = counts.most_common(1)[0]
        assert top[0] <= 3               # a head value dominates
        assert top[1] > 5000 / 100 * 3   # far above uniform share

    def test_foreign_key_uniform(self):
        gen = datagen.foreign_key([7, 8, 9])
        r = rng()
        assert set(gen(r, i) for i in range(100)) <= {7, 8, 9}

    def test_foreign_key_skewed(self):
        gen = datagen.foreign_key(list(range(1, 101)), skew=1.3)
        r = rng()
        counts = Counter(gen(r, i) for i in range(3000))
        assert counts.most_common(1)[0][1] > 100

    def test_foreign_key_requires_parents(self):
        with pytest.raises(ValueError):
            datagen.foreign_key([])

    def test_categorical_weights(self):
        gen = datagen.categorical(["a", "b"], weights=[0.95, 0.05])
        r = rng()
        counts = Counter(gen(r, i) for i in range(500))
        assert counts["a"] > counts["b"]

    def test_iso_date_sortable(self):
        gen = datagen.iso_date(2000, 2001)
        r = rng()
        values = sorted(gen(r, i) for i in range(50))
        assert all(v.startswith("200") for v in values)
        assert values == sorted(values)

    def test_nullable_fraction(self):
        gen = datagen.nullable(datagen.uniform_int(1, 5), 0.5)
        r = rng()
        values = [gen(r, i) for i in range(400)]
        nulls = sum(1 for v in values if v is None)
        assert 120 < nulls < 280

    def test_random_name_length(self):
        gen = datagen.random_name(6)
        assert len(gen(rng(), 0)) == 6


class TestGenerateRows:
    def test_deterministic_per_seed(self):
        spec = {
            "id": datagen.sequential_int(),
            "v": datagen.uniform_int(1, 100),
        }
        a = datagen.generate_rows(spec, 20, seed=9)
        b = datagen.generate_rows(spec, 20, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        spec = {"v": datagen.uniform_int(1, 1_000_000)}
        a = datagen.generate_rows(spec, 10, seed=1)
        b = datagen.generate_rows(spec, 10, seed=2)
        assert a != b

    def test_row_shape(self):
        spec = {
            "id": datagen.sequential_int(),
            "d": datagen.iso_date(),
        }
        rows = datagen.generate_rows(spec, 3, seed=0)
        assert list(rows[0]) == ["id", "d"]
        assert rows[2]["id"] == 3
