"""Unit tests for the join-order enumerator (DP + greedy, partial orders,
join-method selection, pending filters)."""

import pytest

from repro.catalog.statistics import ColumnStats, TableStats
from repro.errors import OptimizerError
from repro.optimizer.costmodel import DEFAULT_COST_MODEL
from repro.optimizer.join_order import (
    JoinOrderEnumerator,
    PendingFilter,
    Relation,
)
from repro.optimizer.plans import (
    Filter,
    HashJoin,
    MergeJoin,
    NestedLoopJoin,
    TableScan,
)
from repro.sql import ast


class FakeStats:
    """Minimal StatsContext: every column has NDV 10, tables 100 rows."""

    def column_stats(self, alias, column):
        return ColumnStats(num_distinct=10)

    def table_stats(self, alias):
        return TableStats(row_count=100)


def scan(alias, rows=100.0):
    return TableScan(alias, alias, [], cost=rows, cardinality=rows)


def eq(a, acol, b, bcol):
    return ast.BinOp("=", ast.ColumnRef(a, acol), ast.ColumnRef(b, bcol))


def enumerate_plan(relations, conjuncts=(), filters=(), dp_threshold=8):
    enumerator = JoinOrderEnumerator(
        relations, list(conjuncts), list(filters), FakeStats(),
        DEFAULT_COST_MODEL, dp_threshold,
    )
    return enumerator.best_plan()


def join_sequence(plan):
    """Aliases in join order (left-deep walk)."""
    order = []

    def walk(node):
        if isinstance(node, (NestedLoopJoin, HashJoin, MergeJoin)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Filter):
            walk(node.child)
        elif isinstance(node, TableScan):
            order.append(node.alias)

    walk(plan)
    return order


class TestBasics:
    def test_single_relation(self):
        plan = enumerate_plan([Relation("a", [scan("a")])])
        assert isinstance(plan, TableScan)

    def test_two_way_join_covers_both(self):
        plan = enumerate_plan(
            [Relation("a", [scan("a")]), Relation("b", [scan("b")])],
            [eq("a", "x", "b", "y")],
        )
        assert plan.aliases == {"a", "b"}

    def test_equi_join_prefers_hash_over_nl(self):
        # two 100-row tables: hash join beats nested loops
        plan = enumerate_plan(
            [Relation("a", [scan("a")]), Relation("b", [scan("b")])],
            [eq("a", "x", "b", "y")],
        )
        assert isinstance(plan, (HashJoin, MergeJoin))

    def test_small_inner_may_use_nl(self):
        plan = enumerate_plan(
            [Relation("a", [scan("a", 3.0)]), Relation("b", [scan("b", 4.0)])],
            [eq("a", "x", "b", "y")],
        )
        assert plan.aliases == {"a", "b"}  # whatever method, must be valid

    def test_cross_product_when_no_conjuncts(self):
        plan = enumerate_plan(
            [Relation("a", [scan("a")]), Relation("b", [scan("b")])],
        )
        assert plan.aliases == {"a", "b"}


class TestPartialOrders:
    def test_semijoin_cannot_lead(self):
        semi = Relation(
            "s", [scan("s")], join_type="SEMI",
            join_conjuncts=[eq("a", "x", "s", "y")],
            required_predecessors={"a"},
        )
        plan = enumerate_plan([Relation("a", [scan("a")]), semi])
        assert join_sequence(plan) == ["a", "s"]
        assert plan.join_type == "SEMI"

    def test_left_join_order_respected(self):
        left_item = Relation(
            "l", [scan("l")], join_type="LEFT",
            join_conjuncts=[eq("a", "x", "l", "y")],
            required_predecessors={"a"},
        )
        plan = enumerate_plan(
            [Relation("a", [scan("a")]), left_item,
             Relation("b", [scan("b")])],
            [eq("a", "x", "b", "y")],
        )
        sequence = join_sequence(plan)
        assert sequence.index("a") < sequence.index("l")

    def test_unsatisfiable_order_raises(self):
        # two semijoins requiring each other
        s1 = Relation("s1", [scan("s1")], join_type="SEMI",
                      required_predecessors={"s2"})
        s2 = Relation("s2", [scan("s2")], join_type="SEMI",
                      required_predecessors={"s1"})
        with pytest.raises(OptimizerError):
            enumerate_plan([s1, s2])

    def test_anti_na_never_merge_joined(self):
        anti = Relation(
            "n", [scan("n")], join_type="ANTI_NA",
            join_conjuncts=[eq("a", "x", "n", "y")],
            required_predecessors={"a"},
        )
        plan = enumerate_plan([Relation("a", [scan("a")]), anti])
        assert not isinstance(plan, MergeJoin)


class TestPendingFilters:
    def test_filter_applied_at_covering_state(self):
        conjunct = eq("a", "x", "b", "y")
        pending = PendingFilter(conjunct, {"a", "b"}, 0.5, 10.0)
        plan = enumerate_plan(
            [Relation("a", [scan("a")]), Relation("b", [scan("b")]),
             Relation("c", [scan("c")])],
            [eq("b", "k", "c", "k"), eq("a", "k", "b", "k")],
            [pending],
        )
        filters = []

        def walk(node):
            if isinstance(node, Filter):
                filters.append(node)
            for child in node.children():
                walk(child)

        walk(plan)
        assert len(filters) == 1
        # the filter runs as soon as a and b are joined
        assert filters[0].aliases >= {"a", "b"}

    def test_leaf_filter_with_no_refs(self):
        pending = PendingFilter(ast.Literal(True), set(), 1.0, 0.1)
        plan = enumerate_plan(
            [Relation("a", [scan("a")]), Relation("b", [scan("b")])],
            [eq("a", "x", "b", "y")],
            [pending],
        )
        text = plan.describe()
        assert "FILTER" in text


class TestGreedy:
    def test_greedy_matches_dp_coverage(self):
        relations = [
            Relation(alias, [scan(alias, rows)])
            for alias, rows in [("a", 10), ("b", 500), ("c", 50), ("d", 200)]
        ]
        conjuncts = [
            eq("a", "k", "b", "k"), eq("b", "k", "c", "k"),
            eq("c", "k", "d", "k"),
        ]
        dp_plan = enumerate_plan(relations, conjuncts, dp_threshold=8)
        greedy_plan = enumerate_plan(
            [Relation(r.alias, list(r.paths)) for r in relations],
            conjuncts, dp_threshold=2,
        )
        assert dp_plan.aliases == greedy_plan.aliases == {"a", "b", "c", "d"}
        # greedy can be worse, never better
        assert greedy_plan.cost >= dp_plan.cost - 1e-9

    def test_dp_picks_cheaper_or_equal_order(self):
        relations = [
            Relation("big", [scan("big", 10_000)]),
            Relation("small", [scan("small", 10)]),
            Relation("mid", [scan("mid", 500)]),
        ]
        conjuncts = [
            eq("big", "k", "small", "k"), eq("small", "k", "mid", "k"),
        ]
        plan = enumerate_plan(relations, conjuncts)
        assert plan.aliases == {"big", "small", "mid"}
