"""State-space search strategy tests (§3.2 of the paper)."""

import math

import pytest

from repro.cbqt.search import (
    choose_strategy,
    exhaustive_search,
    iterative_search,
    linear_search,
    two_pass_search,
)


def make_cost_fn(table):
    calls = []

    def cost_fn(state):
        calls.append(state)
        return table[state]

    cost_fn.calls = calls
    return cost_fn


class TestExhaustive:
    def test_visits_all_states(self):
        table = {
            (0, 0): 10.0, (0, 1): 8.0, (1, 0): 6.0, (1, 1): 4.0,
        }
        result = exhaustive_search([2, 2], make_cost_fn(table))
        assert result.states_evaluated == 4
        assert result.best_state == (1, 1)
        assert result.best_cost == 4.0

    def test_paper_table2_state_count(self):
        # 4 binary objects -> 16 states (Table 2, Exhaustive row)
        table = {s: sum(s) + 1.0 for s in
                 [(a, b, c, d) for a in range(2) for b in range(2)
                  for c in range(2) for d in range(2)]}
        result = exhaustive_search([2, 2, 2, 2], make_cost_fn(table))
        assert result.states_evaluated == 16

    def test_ternary_alternatives(self):
        table = {(i,): 10.0 - i for i in range(3)}
        result = exhaustive_search([3], make_cost_fn(table))
        assert result.states_evaluated == 3
        assert result.best_state == (2,)


class TestTwoPass:
    def test_exactly_two_states(self):
        table = {(0, 0, 0): 9.0, (1, 1, 1): 5.0}
        result = two_pass_search([2, 2, 2], make_cost_fn(table))
        assert result.states_evaluated == 2
        assert result.best_state == (1, 1, 1)

    def test_misses_mixed_optimum(self):
        # the optimum (1,0) is invisible to two-pass
        table = {(0, 0): 9.0, (1, 1): 8.0, (1, 0): 1.0, (0, 1): 7.0}
        result = two_pass_search([2, 2], make_cost_fn(table))
        assert result.best_state == (1, 1)


class TestLinear:
    def test_n_plus_one_states_for_binary(self):
        # paper: 4 subqueries -> 5 states (Table 2, Linear row)
        table = {}
        for a in range(2):
            for b in range(2):
                for c in range(2):
                    for d in range(2):
                        table[(a, b, c, d)] = 20.0 - (a + b + c + d)
        result = linear_search([2, 2, 2, 2], make_cost_fn(table))
        assert result.states_evaluated == 5
        assert result.best_state == (1, 1, 1, 1)

    def test_keeps_improvement_drops_regression(self):
        table = {
            (0, 0): 10.0,
            (1, 0): 5.0,    # improvement: keep
            (1, 1): 7.0,    # regression: drop
        }
        result = linear_search([2, 2], make_cost_fn(table))
        assert result.best_state == (1, 0)
        assert result.states_evaluated == 3

    def test_misses_interacting_optimum(self):
        # (0,1) is best, but linear fixes object 1 first and never sees it
        table = {
            (0, 0): 10.0,
            (1, 0): 9.0,
            (1, 1): 8.0,
            (0, 1): 1.0,
        }
        result = linear_search([2, 2], make_cost_fn(table))
        assert result.best_state == (1, 1)


class TestIterative:
    def test_finds_optimum_in_small_space(self):
        table = {
            (a, b, c): 10.0 - (2 * a + b - c)
            for a in range(2) for b in range(2) for c in range(2)
        }
        result = iterative_search([2, 2, 2], make_cost_fn(table), seed=5)
        assert result.best_state == (1, 1, 0)

    def test_respects_max_states(self):
        table = {
            tuple(s): float(sum(s))
            for s in [(a, b, c, d, e)
                      for a in range(2) for b in range(2) for c in range(2)
                      for d in range(2) for e in range(2)]
        }
        result = iterative_search(
            [2] * 5, make_cost_fn(table), max_states=6, seed=1
        )
        assert result.states_evaluated <= 6

    def test_deterministic_per_seed(self):
        table = {
            (a, b): float(a * 3 + b) for a in range(2) for b in range(2)
        }
        r1 = iterative_search([2, 2], make_cost_fn(table), seed=9)
        r2 = iterative_search([2, 2], make_cost_fn(table), seed=9)
        assert r1.best_state == r2.best_state
        assert r1.states_evaluated == r2.states_evaluated

    def test_handles_infinite_costs(self):
        table = {
            (0,): 5.0, (1,): math.inf,
        }
        result = iterative_search([2], make_cost_fn(table), seed=0)
        assert result.best_state == (0,)


class TestMemoisation:
    def test_duplicate_states_not_recosted(self):
        table = {(0,): 3.0, (1,): 1.0}
        fn = make_cost_fn(table)
        iterative_search([2], fn, max_states=10, restarts=8, seed=2)
        assert len(fn.calls) <= 2


class TestChooseStrategy:
    def test_small_goes_exhaustive(self):
        assert choose_strategy(2, 2) == "exhaustive"
        assert choose_strategy(4, 4) == "exhaustive"

    def test_medium_goes_iterative(self):
        assert choose_strategy(6, 6) == "iterative"

    def test_large_goes_linear(self):
        assert choose_strategy(12, 12) == "linear"

    def test_huge_total_forces_two_pass(self):
        assert choose_strategy(2, 40) == "two_pass"
        assert choose_strategy(12, 40) == "two_pass"
