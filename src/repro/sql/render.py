"""Rendering of AST nodes back to SQL text.

Used for ``EXPLAIN`` output, the "transformed query" display the paper
shows (Q10, Q11, ...), and parse/render round-trip tests.  Rendering is
deterministic; expressions are parenthesised conservatively so the output
always re-parses to an equivalent tree.
"""

from __future__ import annotations

from ..errors import UnsupportedError
from . import ast


def render_literal(value: object) -> str:
    """Render a Python literal value as a SQL literal."""
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    return str(value)


def render_expr(expr: ast.Expr) -> str:
    """Render an expression tree to SQL."""
    if isinstance(expr, ast.Literal):
        return render_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        if expr.qualifier:
            return f"{expr.qualifier}.{expr.name}"
        return expr.name
    if isinstance(expr, ast.BindParam):
        # Canonical Oracle-style form; ``?`` binds render as :1, :2, ...
        # which re-parse to the same keys.
        return f":{expr.key}"
    if isinstance(expr, ast.Star):
        return f"{expr.qualifier}.*" if expr.qualifier else "*"
    if isinstance(expr, ast.BinOp):
        left = _render_operand(expr.left)
        right = _render_operand(expr.right)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, ast.And):
        return " AND ".join(_render_bool_operand(op, ast.Or) for op in expr.operands)
    if isinstance(expr, ast.Or):
        return " OR ".join(_render_bool_operand(op, ast.And) for op in expr.operands)
    if isinstance(expr, ast.Not):
        return f"NOT ({render_expr(expr.operand)})"
    if isinstance(expr, ast.IsNull):
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_render_operand(expr.operand)} {middle}"
    if isinstance(expr, ast.Between):
        neg = "NOT " if expr.negated else ""
        return (
            f"{_render_operand(expr.operand)} {neg}BETWEEN "
            f"{_render_operand(expr.low)} AND {_render_operand(expr.high)}"
        )
    if isinstance(expr, ast.Like):
        neg = "NOT " if expr.negated else ""
        return f"{_render_operand(expr.operand)} {neg}LIKE {render_expr(expr.pattern)}"
    if isinstance(expr, ast.InList):
        neg = "NOT " if expr.negated else ""
        items = ", ".join(render_expr(item) for item in expr.items)
        return f"{_render_operand(expr.operand)} {neg}IN ({items})"
    if isinstance(expr, ast.RowExpr):
        return "(" + ", ".join(render_expr(item) for item in expr.items) + ")"
    if isinstance(expr, ast.FuncCall):
        distinct = "DISTINCT " if expr.distinct else ""
        args = ", ".join(render_expr(arg) for arg in expr.args)
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.WindowFunc):
        return _render_window(expr)
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        for cond, result in expr.whens:
            parts.append(f"WHEN {render_expr(cond)} THEN {render_expr(result)}")
        if expr.default is not None:
            parts.append(f"ELSE {render_expr(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.SubqueryExpr):
        return _render_subquery_expr(expr)
    raise UnsupportedError(f"cannot render expression node {type(expr).__name__}")


def _render_operand(expr: ast.Expr) -> str:
    """Render a sub-operand, parenthesising compound expressions."""
    text = render_expr(expr)
    if isinstance(expr, (ast.BinOp, ast.And, ast.Or, ast.Case)):
        return f"({text})"
    return text


def _render_bool_operand(expr: ast.Expr, wrap_type: type) -> str:
    text = render_expr(expr)
    if isinstance(expr, wrap_type):
        return f"({text})"
    return text


def _render_window(expr: ast.WindowFunc) -> str:
    parts: list[str] = []
    if expr.partition_by:
        cols = ", ".join(render_expr(e) for e in expr.partition_by)
        parts.append(f"PARTITION BY {cols}")
    if expr.order_by:
        items = ", ".join(
            render_expr(o.expr) + (" DESC" if o.descending else "")
            for o in expr.order_by
        )
        parts.append(f"ORDER BY {items}")
    if expr.frame is not None:
        parts.append(
            f"{expr.frame.kind} BETWEEN {_render_bound(expr.frame.start)} "
            f"AND {_render_bound(expr.frame.end)}"
        )
    over = " ".join(parts)
    return f"{render_expr(expr.func)} OVER ({over})"


def _render_bound(bound: object) -> str:
    if isinstance(bound, tuple):
        direction, offset = bound
        return f"{offset} {direction}"
    return str(bound)


def _render_subquery_expr(expr: ast.SubqueryExpr) -> str:
    body = render_statement(expr.query)
    if expr.kind == "EXISTS":
        prefix = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"{prefix} ({body})"
    if expr.kind == "IN":
        middle = "NOT IN" if expr.negated else "IN"
        return f"{_render_operand(expr.left)} {middle} ({body})"
    if expr.kind == "QUANTIFIED":
        return (
            f"{_render_operand(expr.left)} {expr.op} {expr.quantifier} ({body})"
        )
    if expr.kind == "SCALAR":
        return f"({body})"
    raise UnsupportedError(f"unknown subquery kind {expr.kind!r}")


def render_statement(stmt) -> str:
    """Render a SelectStmt or SetOpStmt to SQL.

    Accepts either the parser's syntactic statements or any object that
    provides its own ``to_sql()`` method (query-tree blocks do), so a
    SubqueryExpr can hold either representation.
    """
    if hasattr(stmt, "to_sql"):
        return stmt.to_sql()
    if isinstance(stmt, ast.SetOpStmt):
        left = render_statement(stmt.left)
        right = render_statement(stmt.right)
        text = f"{left} {stmt.op} {right}"
        if stmt.order_by:
            items = ", ".join(
                render_expr(o.expr) + (" DESC" if o.descending else "")
                for o in stmt.order_by
            )
            text += f" ORDER BY {items}"
        return text
    if isinstance(stmt, ast.SelectStmt):
        return _render_select(stmt)
    raise UnsupportedError(f"cannot render statement {type(stmt).__name__}")


def _render_select(stmt: ast.SelectStmt) -> str:
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    items = []
    for item in stmt.select_items:
        text = render_expr(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    parts.append("FROM")
    parts.append(", ".join(_render_table_expr(t) for t in stmt.from_items))
    if stmt.where is not None:
        parts.append("WHERE " + render_expr(stmt.where))
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(render_expr(e) for e in stmt.group_by))
    if stmt.having is not None:
        parts.append("HAVING " + render_expr(stmt.having))
    if stmt.order_by:
        items = ", ".join(
            render_expr(o.expr) + (" DESC" if o.descending else "")
            for o in stmt.order_by
        )
        parts.append(f"ORDER BY {items}")
    return " ".join(parts)


def _render_table_expr(table: ast.TableExpr) -> str:
    if isinstance(table, ast.TableName):
        if table.alias and table.alias != table.name:
            return f"{table.name} {table.alias}"
        return table.name
    if isinstance(table, ast.DerivedTable):
        body = render_statement(table.query)
        alias = f" {table.alias}" if table.alias else ""
        return f"({body}){alias}"
    if isinstance(table, ast.JoinExpr):
        left = _render_table_expr(table.left)
        right = _render_table_expr(table.right)
        if table.kind == "CROSS":
            return f"{left} CROSS JOIN {right}"
        keyword = {"INNER": "JOIN", "LEFT": "LEFT OUTER JOIN",
                   "RIGHT": "RIGHT OUTER JOIN", "FULL": "FULL OUTER JOIN"}[table.kind]
        return f"{left} {keyword} {right} ON {render_expr(table.condition)}"
    raise UnsupportedError(f"cannot render table expression {type(table).__name__}")
