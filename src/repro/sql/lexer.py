"""Hand-written SQL lexer.

Converts a SQL string into a list of :class:`~repro.sql.tokens.Token`.
Supports line comments (``--``), block comments (``/* */``), single-quoted
string literals with doubled-quote escaping, numeric literals with an
optional fraction and exponent, and bind-variable placeholders (``?``
positional, ``:name`` named).
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, returning tokens terminated by a single EOF token."""
    return _Lexer(text).run()


class _Lexer:
    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._col = 1
        self._tokens: list[Token] = []

    def run(self) -> list[Token]:
        while self._pos < len(self._text):
            ch = self._text[self._pos]
            if ch in " \t\r\n":
                self._advance()
            elif self._match_ahead("--"):
                self._skip_line_comment()
            elif self._match_ahead("/*"):
                self._skip_block_comment()
            elif ch == "'":
                self._lex_string()
            elif ch.isdigit() or (ch == "." and self._peek_is_digit(1)):
                self._lex_number()
            elif ch.isalpha() or ch == "_" or ch == '"':
                self._lex_word()
            elif ch == "?" or ch == ":":
                self._lex_bind()
            else:
                self._lex_symbol()
        self._emit(TokenType.EOF, "")
        return self._tokens

    # -- character helpers -------------------------------------------------

    def _advance(self) -> str:
        ch = self._text[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _match_ahead(self, s: str) -> bool:
        return self._text.startswith(s, self._pos)

    def _peek_is_digit(self, offset: int) -> bool:
        idx = self._pos + offset
        return idx < len(self._text) and self._text[idx].isdigit()

    def _emit(self, type_: TokenType, value: str, line: int = 0, col: int = 0) -> None:
        self._tokens.append(
            Token(type_, value, line or self._line, col or self._col)
        )

    # -- token scanners ----------------------------------------------------

    def _skip_line_comment(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos] != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start_line, start_col = self._line, self._col
        self._advance()
        self._advance()
        while not self._match_ahead("*/"):
            if self._pos >= len(self._text):
                raise LexError("unterminated block comment", start_line, start_col)
            self._advance()
        self._advance()
        self._advance()

    def _lex_string(self) -> None:
        line, col = self._line, self._col
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise LexError("unterminated string literal", line, col)
            ch = self._advance()
            if ch == "'":
                if self._pos < len(self._text) and self._text[self._pos] == "'":
                    chars.append("'")
                    self._advance()
                else:
                    break
            else:
                chars.append(ch)
        self._tokens.append(Token(TokenType.STRING, "".join(chars), line, col))

    def _lex_number(self) -> None:
        line, col = self._line, self._col
        chars: list[str] = []
        while self._pos < len(self._text) and (
            self._text[self._pos].isdigit() or self._text[self._pos] == "."
        ):
            chars.append(self._advance())
        if self._pos < len(self._text) and self._text[self._pos] in "eE":
            chars.append(self._advance())
            if self._pos < len(self._text) and self._text[self._pos] in "+-":
                chars.append(self._advance())
            if self._pos >= len(self._text) or not self._text[self._pos].isdigit():
                raise LexError("malformed numeric exponent", line, col)
            while self._pos < len(self._text) and self._text[self._pos].isdigit():
                chars.append(self._advance())
        value = "".join(chars)
        if value.count(".") > 1:
            raise LexError(f"malformed number {value!r}", line, col)
        self._tokens.append(Token(TokenType.NUMBER, value, line, col))

    def _lex_word(self) -> None:
        line, col = self._line, self._col
        if self._text[self._pos] == '"':
            # Delimited identifier: preserve spelling, never a keyword.
            self._advance()
            chars = []
            while True:
                if self._pos >= len(self._text):
                    raise LexError("unterminated quoted identifier", line, col)
                ch = self._advance()
                if ch == '"':
                    break
                chars.append(ch)
            self._tokens.append(Token(TokenType.IDENT, "".join(chars), line, col))
            return
        chars = []
        while self._pos < len(self._text) and (
            self._text[self._pos].isalnum()
            or self._text[self._pos] in "_$#"
        ):
            chars.append(self._advance())
        word = "".join(chars)
        upper = word.upper()
        if upper in KEYWORDS:
            self._tokens.append(Token(TokenType.KEYWORD, upper, line, col))
        else:
            self._tokens.append(Token(TokenType.IDENT, word, line, col))

    def _lex_bind(self) -> None:
        """Bind placeholders: ``?`` (positional, numbered left to right by
        the parser) and ``:name`` / ``:1`` (named, Oracle style)."""
        line, col = self._line, self._col
        ch = self._advance()
        if ch == "?":
            self._tokens.append(Token(TokenType.BIND, "", line, col))
            return
        chars: list[str] = []
        while self._pos < len(self._text) and (
            self._text[self._pos].isalnum() or self._text[self._pos] == "_"
        ):
            chars.append(self._advance())
        if not chars:
            raise LexError("expected bind variable name after ':'", line, col)
        self._tokens.append(Token(TokenType.BIND, "".join(chars), line, col))

    def _lex_symbol(self) -> None:
        line, col = self._line, self._col
        for op in MULTI_CHAR_OPERATORS:
            if self._match_ahead(op):
                for _ in op:
                    self._advance()
                self._tokens.append(Token(TokenType.OPERATOR, op, line, col))
                return
        ch = self._advance()
        if ch == ",":
            self._tokens.append(Token(TokenType.COMMA, ",", line, col))
        elif ch == ".":
            self._tokens.append(Token(TokenType.DOT, ".", line, col))
        elif ch == "(":
            self._tokens.append(Token(TokenType.LPAREN, "(", line, col))
        elif ch == ")":
            self._tokens.append(Token(TokenType.RPAREN, ")", line, col))
        elif ch == "*":
            self._tokens.append(Token(TokenType.STAR, "*", line, col))
        elif ch in SINGLE_CHAR_OPERATORS:
            self._tokens.append(Token(TokenType.OPERATOR, ch, line, col))
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
