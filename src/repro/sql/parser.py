"""Recursive-descent parser for the SQL subset.

Entry points:

* :func:`parse_query` — parse one SELECT / set-operation query.
* :func:`parse_ddl` — parse CREATE TABLE / CREATE INDEX.
* :func:`parse_statement` — dispatch on the first keyword.

The grammar follows Oracle precedence conventions for the constructs we
support; set operators (UNION [ALL] / INTERSECT / MINUS / EXCEPT) have
equal precedence and associate left, as in Oracle.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenType

#: Numeric type names accepted in DDL.
_NUMERIC_TYPES = {"INT", "INTEGER", "NUMBER", "FLOAT"}
_STRING_TYPES = {"VARCHAR", "VARCHAR2", "CHAR"}


def parse_query(sql: str) -> ast.Statement:
    """Parse a query string into a SelectStmt or SetOpStmt."""
    parser = _Parser(tokenize(sql))
    stmt = parser.parse_query()
    parser.expect_eof()
    return stmt


def parse_ddl(sql: str) -> ast.DdlStatement:
    """Parse a CREATE TABLE or CREATE INDEX statement."""
    parser = _Parser(tokenize(sql))
    stmt = parser.parse_ddl()
    parser.expect_eof()
    return stmt


def parse_statement(sql: str):
    """Parse either a query or a DDL statement, dispatching on keyword."""
    tokens = tokenize(sql)
    parser = _Parser(tokens)
    if parser.peek().is_keyword("CREATE"):
        stmt = parser.parse_ddl()
    else:
        stmt = parser.parse_query()
    parser.expect_eof()
    return stmt


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the workload
    generator)."""
    parser = _Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    """Token-stream cursor with one-token lookahead plus helpers."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0
        self._bind_ordinal = 0

    # -- cursor helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def next(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if self.peek().is_keyword(*words):
            return self.next()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.next()
        if not (token.type is TokenType.KEYWORD and token.value == word):
            raise ParseError(
                f"expected {word}, found {token.value!r}", token.line, token.column
            )
        return token

    def accept(self, type_: TokenType, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.type is type_ and (value is None or token.value == value):
            return self.next()
        return None

    def expect(self, type_: TokenType, what: str) -> Token:
        token = self.next()
        if token.type is not type_:
            raise ParseError(
                f"expected {what}, found {token.value!r}", token.line, token.column
            )
        return token

    def expect_eof(self) -> None:
        token = self.peek()
        if token.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {token.value!r}", token.line, token.column
            )

    def _error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)

    # -- queries -----------------------------------------------------------

    def parse_query(self) -> ast.Statement:
        stmt: ast.Statement = self._parse_query_term()
        while True:
            if self.accept_keyword("UNION"):
                op = "UNION ALL" if self.accept_keyword("ALL") else "UNION"
            elif self.accept_keyword("INTERSECT"):
                op = "INTERSECT"
            elif self.accept_keyword("MINUS") or self.accept_keyword("EXCEPT"):
                op = "MINUS"
            else:
                break
            right = self._parse_query_term()
            stmt = ast.SetOpStmt(op, stmt, right)
        # A trailing ORDER BY belongs to the whole query expression, not
        # the last set-operation branch.
        if self.peek().is_keyword("ORDER"):
            stmt.order_by = self._parse_order_by()
        return stmt

    def _parse_query_term(self) -> ast.Statement:
        if self.accept(TokenType.LPAREN):
            inner = self.parse_query()
            self.expect(TokenType.RPAREN, "')'")
            return inner
        return self._parse_select()

    def _parse_select(self) -> ast.SelectStmt:
        self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        elif self.accept_keyword("ALL"):
            pass
        select_items = self._parse_select_list()
        self.expect_keyword("FROM")
        from_items = self._parse_from_list()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: list[ast.Expr] = []
        grouping_sets = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by, grouping_sets = self._parse_group_by()
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        # ORDER BY is attached by parse_query, which owns the trailing
        # clause of the whole query expression (set operations included).
        return ast.SelectStmt(
            select_items=select_items,
            from_items=from_items,
            distinct=distinct,
            where=where,
            group_by=group_by,
            grouping_sets=grouping_sets,
            having=having,
        )

    def _parse_group_by(self):
        """GROUP BY list, with ROLLUP / CUBE / GROUPING SETS expanded
        into explicit grouping sets (lists of indices into the distinct
        grouping-expression list)."""
        from .render import render_expr

        if self.peek().type is TokenType.IDENT and self.peek().value.upper() in (
            "ROLLUP", "CUBE", "GROUPING",
        ):
            word = self.next().value.upper()
            if word == "GROUPING":
                sets_token = self.expect(TokenType.IDENT, "SETS")
                if sets_token.value.upper() != "SETS":
                    raise ParseError(
                        "expected SETS after GROUPING",
                        sets_token.line, sets_token.column,
                    )
                raw_sets = self._parse_grouping_sets_body()
            else:
                exprs = self._parse_paren_expr_list()
                if word == "ROLLUP":
                    raw_sets = [exprs[:k] for k in range(len(exprs), -1, -1)]
                else:  # CUBE
                    raw_sets = []
                    n = len(exprs)
                    for mask in range((1 << n) - 1, -1, -1):
                        raw_sets.append(
                            [exprs[i] for i in range(n) if mask & (1 << i)]
                        )
            # Deduplicate the expressions, index the sets.
            group_by: list[ast.Expr] = []
            index_of: dict[str, int] = {}
            for expr in (e for s in raw_sets for e in s):
                key = render_expr(expr)
                if key not in index_of:
                    index_of[key] = len(group_by)
                    group_by.append(expr)
            grouping_sets = [
                sorted({index_of[render_expr(e)] for e in s}) for s in raw_sets
            ]
            return group_by, grouping_sets

        group_by = [self.parse_expr()]
        while self.accept(TokenType.COMMA):
            group_by.append(self.parse_expr())
        return group_by, None

    def _parse_paren_expr_list(self) -> list[ast.Expr]:
        self.expect(TokenType.LPAREN, "'('")
        exprs = [self.parse_expr()]
        while self.accept(TokenType.COMMA):
            exprs.append(self.parse_expr())
        self.expect(TokenType.RPAREN, "')'")
        return exprs

    def _parse_grouping_sets_body(self) -> list[list[ast.Expr]]:
        self.expect(TokenType.LPAREN, "'('")
        sets: list[list[ast.Expr]] = []
        while True:
            if self.accept(TokenType.LPAREN):
                if self.accept(TokenType.RPAREN):
                    sets.append([])  # the grand-total set: ()
                else:
                    exprs = [self.parse_expr()]
                    while self.accept(TokenType.COMMA):
                        exprs.append(self.parse_expr())
                    self.expect(TokenType.RPAREN, "')'")
                    sets.append(exprs)
            else:
                sets.append([self.parse_expr()])
            if not self.accept(TokenType.COMMA):
                break
        self.expect(TokenType.RPAREN, "')'")
        return sets

    def _parse_select_list(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self.accept(TokenType.COMMA):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        if self.accept(TokenType.STAR):
            return ast.SelectItem(ast.Star())
        # alias.* form
        if (
            self.peek().type is TokenType.IDENT
            and self.peek(1).type is TokenType.DOT
            and self.peek(2).type is TokenType.STAR
        ):
            qualifier = self.next().value
            self.next()
            self.next()
            return ast.SelectItem(ast.Star(qualifier))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect(TokenType.IDENT, "alias").value.lower()
        elif self.peek().type is TokenType.IDENT:
            alias = self.next().value.lower()
        return ast.SelectItem(expr, alias)

    def _parse_order_by(self) -> list[ast.OrderItem]:
        self.expect_keyword("ORDER")
        self.expect_keyword("BY")
        items = [self._parse_order_item()]
        while self.accept(TokenType.COMMA):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    # -- FROM clause ---------------------------------------------------------

    def _parse_from_list(self) -> list[ast.TableExpr]:
        items = [self._parse_join_chain()]
        while self.accept(TokenType.COMMA):
            items.append(self._parse_join_chain())
        return items

    def _parse_join_chain(self) -> ast.TableExpr:
        left = self._parse_table_primary()
        while True:
            kind = self._peek_join_kind()
            if kind is None:
                return left
            self._consume_join_keywords(kind)
            right = self._parse_table_primary()
            condition = None
            if kind != "CROSS":
                self.expect_keyword("ON")
                condition = self.parse_expr()
            left = ast.JoinExpr(left, right, kind, condition)

    def _peek_join_kind(self) -> Optional[str]:
        token = self.peek()
        if token.is_keyword("JOIN", "INNER"):
            return "INNER"
        if token.is_keyword("LEFT"):
            return "LEFT"
        if token.is_keyword("RIGHT"):
            return "RIGHT"
        if token.is_keyword("FULL"):
            return "FULL"
        if token.is_keyword("CROSS"):
            return "CROSS"
        return None

    def _consume_join_keywords(self, kind: str) -> None:
        if kind == "INNER":
            self.accept_keyword("INNER")
        else:
            self.next()  # LEFT / RIGHT / FULL / CROSS
            self.accept_keyword("OUTER")
        self.expect_keyword("JOIN")

    def _parse_table_primary(self) -> ast.TableExpr:
        if self.accept(TokenType.LPAREN):
            # Either a derived table or a parenthesised join chain.
            if self.peek().is_keyword("SELECT") or self.peek().type is TokenType.LPAREN:
                query = self.parse_query()
                self.expect(TokenType.RPAREN, "')'")
                alias = self._parse_optional_alias()
                return ast.DerivedTable(query, alias)
            inner = self._parse_join_chain()
            self.expect(TokenType.RPAREN, "')'")
            return inner
        name_token = self.expect(TokenType.IDENT, "table name")
        alias = self._parse_optional_alias()
        return ast.TableName(name_token.value, alias)

    def _parse_optional_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.expect(TokenType.IDENT, "alias").value.lower()
        if self.peek().type is TokenType.IDENT:
            return self.next().value.lower()
        return None

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        operands = [self._parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return ast.Or(operands)

    def _parse_and(self) -> ast.Expr:
        operands = [self._parse_not()]
        while self.accept_keyword("AND"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return ast.And(operands)

    def _parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        if self.peek().is_keyword("EXISTS"):
            self.next()
            self.expect(TokenType.LPAREN, "'('")
            query = self.parse_query()
            self.expect(TokenType.RPAREN, "')'")
            return ast.SubqueryExpr("EXISTS", query)

        left = self._parse_additive()

        token = self.peek()
        negated = False
        if token.is_keyword("NOT"):
            follow = self.peek(1)
            if follow.is_keyword("IN", "BETWEEN", "LIKE"):
                self.next()
                negated = True
                token = self.peek()

        if token.is_keyword("IN"):
            self.next()
            return self._parse_in_rhs(left, negated)
        if token.is_keyword("BETWEEN"):
            self.next()
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if token.is_keyword("LIKE"):
            self.next()
            pattern = self._parse_additive()
            return ast.Like(left, pattern, negated)
        if token.is_keyword("IS"):
            self.next()
            is_negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(left, is_negated)
        if token.type is TokenType.OPERATOR and token.value in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            op = self.next().value
            if self.peek().is_keyword("ANY", "SOME", "ALL"):
                quantifier = self.next().value
                if quantifier == "SOME":
                    quantifier = "ANY"
                self.expect(TokenType.LPAREN, "'('")
                query = self.parse_query()
                self.expect(TokenType.RPAREN, "')'")
                return ast.SubqueryExpr(
                    "QUANTIFIED", query, left=left, op=op, quantifier=quantifier
                )
            right = self._parse_additive()
            return ast.BinOp(op, left, right)
        return left

    def _parse_in_rhs(self, left: ast.Expr, negated: bool) -> ast.Expr:
        self.expect(TokenType.LPAREN, "'('")
        if self.peek().is_keyword("SELECT") or (
            self.peek().type is TokenType.LPAREN and self._paren_starts_query()
        ):
            query = self.parse_query()
            self.expect(TokenType.RPAREN, "')'")
            return ast.SubqueryExpr("IN", query, left=left, negated=negated)
        items = [self.parse_expr()]
        while self.accept(TokenType.COMMA):
            items.append(self.parse_expr())
        self.expect(TokenType.RPAREN, "')'")
        return ast.InList(left, items, negated)

    def _paren_starts_query(self) -> bool:
        """Lookahead: does the upcoming parenthesised group open a SELECT?"""
        depth = 0
        offset = 0
        while True:
            token = self.peek(offset)
            if token.type is TokenType.EOF:
                return False
            if token.type is TokenType.LPAREN:
                depth += 1
                offset += 1
                continue
            return token.is_keyword("SELECT")

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-", "||"):
                op = self.next().value
                right = self._parse_multiplicative()
                left = ast.BinOp(op, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.type is TokenType.STAR or (
                token.type is TokenType.OPERATOR and token.value in ("/", "%")
            ):
                op = "*" if token.type is TokenType.STAR else token.value
                self.next()
                right = self._parse_unary()
                left = ast.BinOp(op, left, right)
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self.accept(TokenType.OPERATOR, "-"):
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.BinOp("-", ast.Literal(0), operand)
        if self.accept(TokenType.OPERATOR, "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()

        if token.type is TokenType.NUMBER:
            self.next()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))

        if token.type is TokenType.STRING:
            self.next()
            return ast.Literal(token.value)

        if token.is_keyword("NULL"):
            self.next()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self.next()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.next()
            return ast.Literal(False)

        if token.type is TokenType.BIND:
            self.next()
            if token.value:
                return ast.BindParam(token.value)
            # ``?`` placeholders are numbered left to right across the
            # whole statement, so they share keys with ``:1``-style binds.
            self._bind_ordinal += 1
            return ast.BindParam(str(self._bind_ordinal))

        if token.is_keyword("CASE"):
            return self._parse_case()

        if token.type is TokenType.LPAREN:
            self.next()
            if self.peek().is_keyword("SELECT"):
                query = self.parse_query()
                self.expect(TokenType.RPAREN, "')'")
                return ast.SubqueryExpr("SCALAR", query)
            first = self.parse_expr()
            if self.accept(TokenType.COMMA):
                items = [first, self.parse_expr()]
                while self.accept(TokenType.COMMA):
                    items.append(self.parse_expr())
                self.expect(TokenType.RPAREN, "')'")
                return ast.RowExpr(items)
            self.expect(TokenType.RPAREN, "')'")
            return first

        if token.type is TokenType.IDENT:
            return self._parse_name_or_call()

        raise self._error(f"unexpected token {token.value!r} in expression")

    def _parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            result = self.parse_expr()
            whens.append((cond, result))
        default = self.parse_expr() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        if not whens:
            raise self._error("CASE requires at least one WHEN branch")
        return ast.Case(whens, default)

    def _parse_name_or_call(self) -> ast.Expr:
        name = self.next().value

        if self.peek().type is TokenType.LPAREN:
            return self._parse_func_call(name)

        if self.accept(TokenType.DOT):
            column = self.expect(TokenType.IDENT, "column name")
            return ast.ColumnRef(name, column.value)

        return ast.ColumnRef(None, name)

    def _parse_func_call(self, name: str) -> ast.Expr:
        self.expect(TokenType.LPAREN, "'('")
        distinct = bool(self.accept_keyword("DISTINCT"))
        args: list[ast.Expr] = []
        if self.accept(TokenType.STAR):
            args.append(ast.Star())
        elif self.peek().type is not TokenType.RPAREN:
            args.append(self.parse_expr())
            while self.accept(TokenType.COMMA):
                args.append(self.parse_expr())
        self.expect(TokenType.RPAREN, "')'")
        call = ast.FuncCall(name, args, distinct)
        if self.peek().is_keyword("OVER"):
            return self._parse_window(call)
        return call

    def _parse_window(self, func: ast.FuncCall) -> ast.WindowFunc:
        self.expect_keyword("OVER")
        self.expect(TokenType.LPAREN, "'('")
        partition_by: list[ast.Expr] = []
        order_by: list[ast.OrderItem] = []
        frame: Optional[ast.WindowFrame] = None
        if self.accept_keyword("PARTITION"):
            self.expect_keyword("BY")
            partition_by.append(self.parse_expr())
            while self.accept(TokenType.COMMA):
                partition_by.append(self.parse_expr())
        if self.peek().is_keyword("ORDER"):
            order_by = self._parse_order_by()
        if self.peek().is_keyword("ROWS", "RANGE"):
            frame = self._parse_frame()
        self.expect(TokenType.RPAREN, "')'")
        return ast.WindowFunc(func, partition_by, order_by, frame)

    def _parse_frame(self) -> ast.WindowFrame:
        kind = self.next().value  # ROWS or RANGE
        self.expect_keyword("BETWEEN")
        start = self._parse_frame_bound()
        self.expect_keyword("AND")
        end = self._parse_frame_bound()
        return ast.WindowFrame(kind, start, end)

    def _parse_frame_bound(self) -> object:
        if self.accept_keyword("UNBOUNDED"):
            direction = self.next().value  # PRECEDING or FOLLOWING
            return f"UNBOUNDED {direction}"
        if self.accept_keyword("CURRENT"):
            self.expect_keyword("ROW")
            return "CURRENT ROW"
        offset_token = self.expect(TokenType.NUMBER, "frame offset")
        direction = self.next().value  # PRECEDING or FOLLOWING
        return (direction, int(offset_token.value))

    # -- DDL -----------------------------------------------------------------

    def parse_ddl(self) -> ast.DdlStatement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._parse_create_table()
        unique = bool(self.accept_keyword("UNIQUE"))
        self.expect_keyword("INDEX")
        return self._parse_create_index(unique)

    def _parse_create_table(self) -> ast.CreateTable:
        name = self.expect(TokenType.IDENT, "table name").value
        self.expect(TokenType.LPAREN, "'('")
        columns: list[ast.ColumnSpec] = []
        constraints: list[ast.TableConstraint] = []
        while True:
            if self.peek().is_keyword("PRIMARY", "UNIQUE", "FOREIGN", "CONSTRAINT"):
                constraints.append(self._parse_table_constraint())
            else:
                columns.append(self._parse_column_spec())
            if not self.accept(TokenType.COMMA):
                break
        self.expect(TokenType.RPAREN, "')'")
        return ast.CreateTable(name, columns, constraints)

    def _parse_column_spec(self) -> ast.ColumnSpec:
        name = self.expect(TokenType.IDENT, "column name").value
        type_token = self.next()
        if type_token.type not in (TokenType.KEYWORD, TokenType.IDENT):
            raise ParseError(
                f"expected type name, found {type_token.value!r}",
                type_token.line,
                type_token.column,
            )
        type_name = type_token.value.upper()
        if type_name not in _NUMERIC_TYPES | _STRING_TYPES | {"DATE"}:
            raise ParseError(
                f"unsupported column type {type_name!r}",
                type_token.line,
                type_token.column,
            )
        # optional length/precision: VARCHAR(30), NUMBER(10, 2)
        if self.accept(TokenType.LPAREN):
            self.expect(TokenType.NUMBER, "length")
            if self.accept(TokenType.COMMA):
                self.expect(TokenType.NUMBER, "scale")
            self.expect(TokenType.RPAREN, "')'")
        spec = ast.ColumnSpec(name, type_name)
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                spec.not_null = True
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                spec.primary_key = True
                spec.not_null = True
            elif self.accept_keyword("UNIQUE"):
                spec.unique = True
            elif self.accept_keyword("REFERENCES"):
                ref_table = self.expect(TokenType.IDENT, "table name").value.lower()
                self.expect(TokenType.LPAREN, "'('")
                ref_col = self.expect(TokenType.IDENT, "column name").value.lower()
                self.expect(TokenType.RPAREN, "')'")
                spec.references = (ref_table, ref_col)
            else:
                return spec

    def _parse_table_constraint(self) -> ast.TableConstraint:
        if self.accept_keyword("CONSTRAINT"):
            self.expect(TokenType.IDENT, "constraint name")
        if self.accept_keyword("PRIMARY"):
            self.expect_keyword("KEY")
            return ast.TableConstraint("PRIMARY KEY", self._parse_column_name_list())
        if self.accept_keyword("UNIQUE"):
            return ast.TableConstraint("UNIQUE", self._parse_column_name_list())
        self.expect_keyword("FOREIGN")
        self.expect_keyword("KEY")
        columns = self._parse_column_name_list()
        self.expect_keyword("REFERENCES")
        ref_table = self.expect(TokenType.IDENT, "table name").value.lower()
        ref_columns = self._parse_column_name_list()
        return ast.TableConstraint("FOREIGN KEY", columns, ref_table, ref_columns)

    def _parse_column_name_list(self) -> list[str]:
        self.expect(TokenType.LPAREN, "'('")
        names = [self.expect(TokenType.IDENT, "column name").value.lower()]
        while self.accept(TokenType.COMMA):
            names.append(self.expect(TokenType.IDENT, "column name").value.lower())
        self.expect(TokenType.RPAREN, "')'")
        return names

    def _parse_create_index(self, unique: bool) -> ast.CreateIndex:
        name = self.expect(TokenType.IDENT, "index name").value
        self.expect_keyword("ON")
        table = self.expect(TokenType.IDENT, "table name").value
        columns = self._parse_column_name_list()
        return ast.CreateIndex(name, table, columns, unique)
