"""Token definitions for the SQL lexer.

The lexer produces a flat stream of :class:`Token` objects.  Keywords are
recognised case-insensitively and carry their canonical upper-case form in
``Token.value``; identifiers preserve the original spelling (SQL folding to
upper case is not applied because our catalog is case-insensitive anyway).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories produced by the lexer."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"      # = <> != < <= > >= + - * / ||
    BIND = "bind"              # ? or :name bind-variable placeholder
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"              # '*' (also used as multiply; parser decides)
    EOF = "eof"


#: Reserved words.  Anything lexed as a word that appears here becomes a
#: KEYWORD token; everything else becomes IDENT.
KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "DISTINCT", "ALL", "AS", "AND", "OR", "NOT", "IN", "EXISTS",
    "BETWEEN", "LIKE", "IS", "NULL", "ANY", "SOME",
    "UNION", "INTERSECT", "MINUS", "EXCEPT",
    "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "ON", "CROSS",
    "ASC", "DESC", "CASE", "WHEN", "THEN", "ELSE", "END",
    "OVER", "PARTITION", "ROWS", "RANGE", "UNBOUNDED", "PRECEDING",
    "FOLLOWING", "CURRENT", "ROW",
    "CREATE", "TABLE", "INDEX", "UNIQUE", "PRIMARY", "KEY", "FOREIGN",
    "REFERENCES", "CONSTRAINT", "INT", "INTEGER", "NUMBER", "FLOAT",
    "VARCHAR", "VARCHAR2", "CHAR", "DATE",
    "TRUE", "FALSE",
})

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_OPERATORS = ("<=", ">=", "<>", "!=", "||")

SINGLE_CHAR_OPERATORS = frozenset("=<>+-/%")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` is the canonical text: upper-cased for keywords, raw for
    identifiers and literals (string literals exclude the quotes).
    """

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
