"""Abstract syntax tree for the SQL subset.

Two families of nodes live here:

* **Expressions** (:class:`Expr` subclasses) — shared between the parser
  output and the semantic query tree (:mod:`repro.qtree`).  Expressions are
  plain mutable objects with an explicit :meth:`Expr.clone` (deep copy of
  structure; scalar payloads are shared) because the cost-based
  transformation framework copies query trees constantly and we want that
  copy to be cheap and predictable.

* **Statements** — the syntactic shape of SELECT queries and the small DDL
  subset (CREATE TABLE / CREATE INDEX).  Statements are consumed once by
  the query-tree builder and never mutated, so they do not need clone().

Operator spellings are canonicalised: ``!=`` becomes ``<>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Union

#: Aggregate function names recognised by the analyser (upper-case).
AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})

#: Comparison operators, canonical spellings.
COMPARISON_OPERATORS = frozenset({"=", "<>", "<", "<=", ">", ">="})

#: Maps each comparison operator to its mirror (for operand swapping).
MIRRORED_COMPARISON = {
    "=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<=",
}

#: Maps each comparison operator to its negation.
NEGATED_COMPARISON = {
    "=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<",
}


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()

    def children(self) -> Iterator["Expr"]:
        """Yield direct child expressions (not subquery bodies)."""
        return iter(())

    def clone(self) -> "Expr":
        raise NotImplementedError

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all expression descendants, pre-order.

        Does not descend into subquery bodies; callers that need to see
        inside a :class:`SubqueryExpr` handle ``.query`` explicitly.
        """
        yield self
        for child in self.children():
            yield from child.walk()


class ColumnRef(Expr):
    """A possibly qualified column reference, e.g. ``e.salary``.

    The query-tree builder resolves every ColumnRef so that ``qualifier``
    names a from-item alias in scope.  ``ROWNUM`` parses as an unqualified
    ColumnRef named ``rownum`` and is special-cased by the builder.
    """

    __slots__ = ("qualifier", "name")

    def __init__(self, qualifier: Optional[str], name: str):
        self.qualifier = qualifier.lower() if qualifier else None
        self.name = name.lower()

    def clone(self) -> "ColumnRef":
        return ColumnRef(self.qualifier, self.name)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ColumnRef)
            and self.qualifier == other.qualifier
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((self.qualifier, self.name))

    def __repr__(self) -> str:
        return f"ColumnRef({self.qualifier}.{self.name})"


class Literal(Expr):
    """A constant: ``None`` for NULL, bool, int, float, or str."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def clone(self) -> "Literal":
        return Literal(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and self.value == other.value \
            and type(self.value) is type(other.value)

    def __hash__(self) -> int:
        return hash((type(self.value).__name__, self.value))

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


#: Sentinel for "no value peeked yet" on a BindParam (None is a valid
#: peeked value: the NULL bind).
NO_PEEK = object()


class BindParam(Expr):
    """A bind-variable placeholder: ``?`` or ``:name``.

    ``key`` is the canonical parameter key: the lower-cased name for
    ``:name`` binds, or the 1-based ordinal as a string (``"1"``, ``"2"``)
    for ``?`` binds — so the canonical rendering ``:1`` round-trips.

    ``peeked`` carries the value observed at first optimization (bind
    peeking): the selectivity estimator treats a peeked BindParam like a
    literal of that value, while execution always reads the actual bind
    set for the current call.  Identity (``__eq__``/``__hash__``) is by
    key only; the peeked value is advisory optimizer state.
    """

    __slots__ = ("key", "peeked")

    def __init__(self, key: str, peeked: object = NO_PEEK):
        self.key = key.lower()
        self.peeked = peeked

    @property
    def has_peek(self) -> bool:
        return self.peeked is not NO_PEEK

    def clone(self) -> "BindParam":
        return BindParam(self.key, self.peeked)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BindParam) and self.key == other.key

    def __hash__(self) -> int:
        return hash(("bind", self.key))

    def __repr__(self) -> str:
        return f"BindParam(:{self.key})"


class Star(Expr):
    """``*`` or ``alias.*`` in a select list or COUNT(*)."""

    __slots__ = ("qualifier",)

    def __init__(self, qualifier: Optional[str] = None):
        self.qualifier = qualifier.lower() if qualifier else None

    def clone(self) -> "Star":
        return Star(self.qualifier)

    def __repr__(self) -> str:
        return f"Star({self.qualifier or ''})"


class BinOp(Expr):
    """Binary operator: arithmetic, comparison, or string concatenation."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = "<>" if op == "!=" else op
        self.left = left
        self.right = right

    def children(self) -> Iterator[Expr]:
        yield self.left
        yield self.right

    def clone(self) -> "BinOp":
        return BinOp(self.op, self.left.clone(), self.right.clone())

    @property
    def is_comparison(self) -> bool:
        return self.op in COMPARISON_OPERATORS

    def __repr__(self) -> str:
        return f"BinOp({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    """N-ary conjunction.  The normaliser flattens nested ANDs."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Expr]):
        self.operands = list(operands)

    def children(self) -> Iterator[Expr]:
        return iter(self.operands)

    def clone(self) -> "And":
        return And(op.clone() for op in self.operands)

    def __repr__(self) -> str:
        return f"And({self.operands!r})"


class Or(Expr):
    """N-ary disjunction.  The normaliser flattens nested ORs."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Expr]):
        self.operands = list(operands)

    def children(self) -> Iterator[Expr]:
        return iter(self.operands)

    def clone(self) -> "Or":
        return Or(op.clone() for op in self.operands)

    def __repr__(self) -> str:
        return f"Or({self.operands!r})"


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def children(self) -> Iterator[Expr]:
        yield self.operand

    def clone(self) -> "Not":
        return Not(self.operand.clone())

    def __repr__(self) -> str:
        return f"Not({self.operand!r})"


class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expr, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def children(self) -> Iterator[Expr]:
        yield self.operand

    def clone(self) -> "IsNull":
        return IsNull(self.operand.clone(), self.negated)

    def __repr__(self) -> str:
        neg = " NOT" if self.negated else ""
        return f"IsNull({self.operand!r}{neg})"


class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand: Expr, low: Expr, high: Expr, negated: bool = False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def children(self) -> Iterator[Expr]:
        yield self.operand
        yield self.low
        yield self.high

    def clone(self) -> "Between":
        return Between(
            self.operand.clone(), self.low.clone(), self.high.clone(), self.negated
        )


class Like(Expr):
    """``expr [NOT] LIKE pattern``."""

    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand: Expr, pattern: Expr, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def children(self) -> Iterator[Expr]:
        yield self.operand
        yield self.pattern

    def clone(self) -> "Like":
        return Like(self.operand.clone(), self.pattern.clone(), self.negated)


class InList(Expr):
    """``expr [NOT] IN (literal, ...)`` — the value-list form of IN."""

    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand: Expr, items: Iterable[Expr], negated: bool = False):
        self.operand = operand
        self.items = list(items)
        self.negated = negated

    def children(self) -> Iterator[Expr]:
        yield self.operand
        yield from self.items

    def clone(self) -> "InList":
        return InList(
            self.operand.clone(), (i.clone() for i in self.items), self.negated
        )


class RowExpr(Expr):
    """A parenthesised row of expressions, e.g. ``(a, b) IN (SELECT ...)``."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Expr]):
        self.items = list(items)

    def children(self) -> Iterator[Expr]:
        return iter(self.items)

    def clone(self) -> "RowExpr":
        return RowExpr(i.clone() for i in self.items)


class FuncCall(Expr):
    """A scalar or aggregate function call.

    ``name`` is stored upper-case.  ``distinct`` applies to aggregates
    (``COUNT(DISTINCT x)``).  User-defined functions are modelled by name:
    the catalog can register a function as *expensive*, which is what the
    predicate-pullup transformation keys on.
    """

    __slots__ = ("name", "args", "distinct")

    def __init__(self, name: str, args: Iterable[Expr], distinct: bool = False):
        self.name = name.upper()
        self.args = list(args)
        self.distinct = distinct

    def children(self) -> Iterator[Expr]:
        return iter(self.args)

    def clone(self) -> "FuncCall":
        return FuncCall(self.name, (a.clone() for a in self.args), self.distinct)

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS

    def __repr__(self) -> str:
        return f"FuncCall({self.name}, {self.args!r})"


@dataclass
class WindowFrame:
    """``ROWS|RANGE BETWEEN <start> AND <end>`` of a window specification.

    Bounds are encoded as strings ``"UNBOUNDED PRECEDING"``,
    ``"CURRENT ROW"``, ``"UNBOUNDED FOLLOWING"`` or an integer offset with
    direction, e.g. ``("PRECEDING", 3)``.
    """

    kind: str                      # "ROWS" or "RANGE"
    start: object = "UNBOUNDED PRECEDING"
    end: object = "CURRENT ROW"

    def clone(self) -> "WindowFrame":
        return WindowFrame(self.kind, self.start, self.end)


class WindowFunc(Expr):
    """``func(...) OVER (PARTITION BY ... ORDER BY ... frame)``."""

    __slots__ = ("func", "partition_by", "order_by", "frame")

    def __init__(
        self,
        func: FuncCall,
        partition_by: Iterable[Expr] = (),
        order_by: Iterable["OrderItem"] = (),
        frame: Optional[WindowFrame] = None,
    ):
        self.func = func
        self.partition_by = list(partition_by)
        self.order_by = list(order_by)
        self.frame = frame

    def children(self) -> Iterator[Expr]:
        yield self.func
        yield from self.partition_by
        for item in self.order_by:
            yield item.expr

    def clone(self) -> "WindowFunc":
        return WindowFunc(
            self.func.clone(),
            (e.clone() for e in self.partition_by),
            (o.clone() for o in self.order_by),
            self.frame.clone() if self.frame else None,
        )


class Case(Expr):
    """Searched CASE expression."""

    __slots__ = ("whens", "default")

    def __init__(self, whens: Iterable[tuple[Expr, Expr]], default: Optional[Expr]):
        self.whens = list(whens)
        self.default = default

    def children(self) -> Iterator[Expr]:
        for cond, result in self.whens:
            yield cond
            yield result
        if self.default is not None:
            yield self.default

    def clone(self) -> "Case":
        return Case(
            ((c.clone(), r.clone()) for c, r in self.whens),
            self.default.clone() if self.default else None,
        )


class SubqueryExpr(Expr):
    """A subquery used as an expression or predicate.

    ``kind`` is one of:

    * ``"EXISTS"`` — ``[NOT] EXISTS (q)``; ``negated`` gives NOT EXISTS.
    * ``"IN"`` — ``left [NOT] IN (q)``; ``left`` is an Expr or RowExpr.
    * ``"QUANTIFIED"`` — ``left <op> ANY|ALL (q)``; ``op`` is a comparison
      operator, ``quantifier`` is ``"ANY"`` or ``"ALL"``.
    * ``"SCALAR"`` — the subquery yields a single value used in an
      enclosing expression (e.g. ``salary > (SELECT AVG(...) ...)``).

    ``query`` is a parser-level statement until the query-tree builder
    replaces it with a built :class:`repro.qtree.blocks.QueryBlock`.
    """

    __slots__ = ("kind", "query", "left", "op", "quantifier", "negated")

    def __init__(
        self,
        kind: str,
        query: object,
        left: Optional[Expr] = None,
        op: Optional[str] = None,
        quantifier: Optional[str] = None,
        negated: bool = False,
    ):
        self.kind = kind
        self.query = query
        self.left = left
        self.op = "<>" if op == "!=" else op
        self.quantifier = quantifier
        self.negated = negated

    def children(self) -> Iterator[Expr]:
        if self.left is not None:
            yield self.left

    def clone(self) -> "SubqueryExpr":
        query = self.query.clone() if hasattr(self.query, "clone") else self.query
        return SubqueryExpr(
            self.kind,
            query,
            self.left.clone() if self.left is not None else None,
            self.op,
            self.quantifier,
            self.negated,
        )

    def __repr__(self) -> str:
        return f"SubqueryExpr({self.kind}, negated={self.negated})"


# ---------------------------------------------------------------------------
# Statement nodes (parser output; consumed by the query-tree builder)
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    """One entry of a select list: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None

    def clone(self) -> "SelectItem":
        return SelectItem(self.expr.clone(), self.alias)


@dataclass
class OrderItem:
    """One entry of an ORDER BY list."""

    expr: Expr
    descending: bool = False

    def clone(self) -> "OrderItem":
        return OrderItem(self.expr.clone(), self.descending)


class TableExpr:
    """Base for FROM-clause items."""


@dataclass
class TableName(TableExpr):
    """A base table (or named view) reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        if self.alias:
            self.alias = self.alias.lower()


@dataclass
class DerivedTable(TableExpr):
    """An inline view: ``(SELECT ...) alias``."""

    query: "Statement"
    alias: Optional[str] = None

    def __post_init__(self) -> None:
        if self.alias:
            self.alias = self.alias.lower()


@dataclass
class JoinExpr(TableExpr):
    """ANSI join: ``left <kind> JOIN right ON condition``.

    ``kind`` is ``"INNER"``, ``"LEFT"``, ``"RIGHT"``, or ``"CROSS"``.
    RIGHT joins are normalised to LEFT by the query-tree builder.
    """

    left: TableExpr
    right: TableExpr
    kind: str
    condition: Optional[Expr] = None


@dataclass
class SelectStmt:
    """A single SELECT query block, syntactic form.

    ``grouping_sets`` is set when GROUP BY uses ROLLUP / CUBE / GROUPING
    SETS: the parser expands those into an explicit list of sets (each a
    list of indices into ``group_by``, which then holds the distinct
    grouping expressions).
    """

    select_items: list[SelectItem]
    from_items: list[TableExpr]
    distinct: bool = False
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    grouping_sets: Optional[list[list[int]]] = None
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)

    def clone(self) -> "SelectStmt":
        import copy

        return copy.deepcopy(self)


@dataclass
class SetOpStmt:
    """A set operation between two queries.

    ``op`` is ``"UNION"``, ``"UNION ALL"``, ``"INTERSECT"``, or ``"MINUS"``
    (EXCEPT parses to MINUS).  Set operations associate left, so chains
    become left-deep SetOpStmt trees.
    """

    op: str
    left: "Statement"
    right: "Statement"
    order_by: list[OrderItem] = field(default_factory=list)

    def clone(self) -> "SetOpStmt":
        import copy

        return copy.deepcopy(self)


Statement = Union[SelectStmt, SetOpStmt]


# ---------------------------------------------------------------------------
# DDL nodes
# ---------------------------------------------------------------------------


@dataclass
class ColumnSpec:
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    references: Optional[tuple[str, str]] = None  # (table, column)

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        self.type_name = self.type_name.upper()


@dataclass
class TableConstraint:
    """A table-level constraint inside CREATE TABLE.

    ``kind`` is ``"PRIMARY KEY"``, ``"UNIQUE"``, or ``"FOREIGN KEY"``.
    """

    kind: str
    columns: list[str]
    ref_table: Optional[str] = None
    ref_columns: Optional[list[str]] = None


@dataclass
class CreateTable:
    name: str
    columns: list[ColumnSpec]
    constraints: list[TableConstraint] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.name = self.name.lower()


@dataclass
class CreateIndex:
    name: str
    table: str
    columns: list[str]
    unique: bool = False

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        self.table = self.table.lower()
        self.columns = [c.lower() for c in self.columns]


DdlStatement = Union[CreateTable, CreateIndex]


# ---------------------------------------------------------------------------
# Small expression utilities used across the code base
# ---------------------------------------------------------------------------


def conjuncts_of(expr: Optional[Expr]) -> list[Expr]:
    """Split *expr* into a flat list of AND-ed conjuncts.

    ``None`` yields an empty list.  Nested :class:`And` nodes are
    flattened; any other node is a single conjunct.
    """
    if expr is None:
        return []
    if isinstance(expr, And):
        result: list[Expr] = []
        for operand in expr.operands:
            result.extend(conjuncts_of(operand))
        return result
    return [expr]


def make_conjunction(conjuncts: list[Expr]) -> Optional[Expr]:
    """Combine conjuncts back into a single expression (inverse of
    :func:`conjuncts_of`)."""
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(conjuncts)


def disjuncts_of(expr: Optional[Expr]) -> list[Expr]:
    """Split *expr* into a flat list of OR-ed disjuncts."""
    if expr is None:
        return []
    if isinstance(expr, Or):
        result: list[Expr] = []
        for operand in expr.operands:
            result.extend(disjuncts_of(operand))
        return result
    return [expr]


def column_refs_in(expr: Expr) -> Iterator[ColumnRef]:
    """Yield every ColumnRef in *expr*, not descending into subqueries."""
    for node in expr.walk():
        if isinstance(node, ColumnRef):
            yield node


def contains_aggregate(expr: Expr) -> bool:
    """True if *expr* contains an aggregate function call outside any
    window specification (``AVG(x) OVER (...)`` is a window function, not
    an aggregate for grouping purposes)."""
    if isinstance(expr, WindowFunc):
        return False
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return True
    return any(contains_aggregate(child) for child in expr.children())


def bind_params_in(expr: Expr) -> Iterator[BindParam]:
    """Yield every BindParam in *expr*, not descending into subqueries."""
    for node in expr.walk():
        if isinstance(node, BindParam):
            yield node


def contains_subquery(expr: Expr) -> bool:
    """True if *expr* contains any SubqueryExpr node."""
    return any(isinstance(node, SubqueryExpr) for node in expr.walk())
