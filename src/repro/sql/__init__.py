"""SQL front end: lexer, AST, recursive-descent parser, and renderer."""

from .lexer import tokenize
from .parser import parse_ddl, parse_expression, parse_query, parse_statement
from .render import render_expr, render_literal, render_statement

__all__ = [
    "tokenize",
    "parse_query",
    "parse_ddl",
    "parse_statement",
    "parse_expression",
    "render_expr",
    "render_literal",
    "render_statement",
]
