"""EXPLAIN rendering helpers: unified annotation lines and EXPLAIN
ANALYZE (estimated vs. actual) output.

Two jobs:

* :func:`annotation_lines` is the single place the ``-- xxx:`` header
  lines of every explain surface are assembled (the Database facade,
  the shell, and EXPLAIN ANALYZE all render through it, so degradation,
  quarantine, governor, and sanitizer annotations stay consistent);
* :func:`format_explain_analyze` renders a plan with per-operator
  estimated rows, actual rows, invocation counts, wall-clock self-time,
  and Q-error, plus a plan-level max-Q-error summary — the
  estimated-vs-actual feedback loop industrial optimizers audit plans
  with.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cbqt.framework import OptimizationReport
    from ..engine.executor import ExecStats
    from ..optimizer.plans import Plan


def annotation_lines(
    report: "OptimizationReport", cache_status: Optional[str] = None
) -> list[str]:
    """The ``-- xxx:`` header lines for one optimized query, in the
    canonical order: cache disposition (when known), transformed SQL,
    degradation, quarantine, governor, sanitizer findings."""
    lines = []
    if cache_status is not None:
        lines.append(f"-- cache: {cache_status}")
    lines.append(f"-- transformed: {report.transformed_sql}")
    if report.degradation is not None:
        lines.append(f"-- degraded: {report.degradation.describe()}")
    if report.quarantined:
        lines.append(f"-- quarantined: {', '.join(report.quarantined)}")
    if report.governor is not None and report.governor.exhausted:
        lines.append(f"-- governor: {report.governor.describe()}")
    # paranoid-mode findings (errors raise before explain is reachable,
    # so anything surviving into the report is a warning)
    lines.extend(f"-- check: {d.format()}" for d in report.diagnostics)
    return lines


def qerror(estimated: float, actual: float) -> float:
    """The Q-error of one cardinality estimate: the factor by which the
    estimate misses the observation, symmetric in direction and floored
    at one row on both sides (so empty results stay finite)."""
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def operator_profiles(plan: "Plan", stats: "ExecStats") -> list[dict]:
    """Per-operator estimated-vs-actual profile, pre-order.

    Each entry: ``plan``, ``depth``, ``label``, ``estimated``,
    ``actual``, ``qerror``, ``invocations``, ``self_seconds`` (inclusive
    time minus direct children's inclusive time; 0.0 when the run was
    not profiled)."""
    profiles: list[dict] = []
    node_rows = stats.node_rows
    node_invocations = stats.node_invocations
    node_seconds = stats.node_seconds

    def visit(node: "Plan", depth: int) -> None:
        children = node.children()
        inclusive = node_seconds.get(id(node), 0.0)
        child_time = sum(node_seconds.get(id(c), 0.0) for c in children)
        actual = node_rows.get(id(node), 0)
        profiles.append({
            "plan": node,
            "depth": depth,
            "label": node.label(),
            "estimated": node.cardinality,
            "actual": actual,
            "qerror": qerror(node.cardinality, actual),
            "invocations": node_invocations.get(id(node), 0),
            "self_seconds": max(inclusive - child_time, 0.0),
        })
        for child in children:
            visit(child, depth + 1)

    visit(plan, 0)
    return profiles


def format_explain_analyze(
    plan: "Plan", stats: "ExecStats", timing: bool = True
) -> str:
    """EXPLAIN ANALYZE rendering: the operator tree with estimated and
    actual rows, Q-error, invocation counts, and (when *timing*)
    wall-clock self-time per operator, followed by a plan-level summary.

    With ``timing=False`` the output is fully deterministic — the golden
    tests rely on that."""
    profiles = operator_profiles(plan, stats)
    lines = []
    for profile in profiles:
        detail = (
            f"est={profile['estimated']:.0f} actual={profile['actual']} "
            f"q={profile['qerror']:.2f} invocations={profile['invocations']}"
        )
        if timing:
            detail += f" self={profile['self_seconds'] * 1000:.1f}ms"
        lines.append("  " * profile["depth"] + f"{profile['label']}  ({detail})")
    worst = max(profiles, key=lambda p: p["qerror"])
    lines.append(
        f"-- max q-error: {worst['qerror']:.2f} at {worst['label']}"
    )
    lines.append(f"-- actual rows out: {stats.rows_out}")
    return "\n".join(lines)
