"""Structured optimizer trace — the repo's 10053 analogue.

A :class:`Tracer` collects :class:`TraceEvent` records into a bounded
ring buffer and, optionally, streams each event as one JSON line to a
sink.  Producers (the CBQT framework, the heuristic pipeline) hold an
``Optional[Tracer]`` and guard every emission with an ``is None`` test,
so a disarmed engine constructs zero trace events — the class-level
``TraceEvent.created`` counter lets the benchmark gate prove it.

Event kinds emitted by the engine:

* ``cbqt.search`` — one per cost-based transformation with applicable
  objects: chosen strategy, object count, and every alternative label
  per object (interleaved/juxtaposed alternatives appear here, so the
  trace records which combined rewrites entered the state space);
* ``cbqt.state`` — one per costed search state: transformation, state
  bit-vector, estimated cost, prune reason (``cost-cutoff``,
  ``infeasible``, ``governor``, or None for a completed state), the
  annotation-cache hit/miss deltas incurred while costing it, and the
  cross-statement subplan-memo hit delta (``memo_hits``);
* ``cbqt.decision`` — the search outcome: best state, best/baseline
  cost, states evaluated, evaluation order, applied labels;
* ``cbqt.governor`` — emitted when a search governor cut the search
  short (budget/deadline exhaustion accounting);
* ``cbqt.memo`` — one per optimization that ran with a subplan-memo
  session: node/join-tier hits and stores, shared-operator count, the
  deepest reused subplan, and whether the session stayed active (an
  injected ``memo.lookup`` fault deactivates it mid-statement);
* ``heuristic.rule`` — one per heuristic rule application round that
  rewrote the tree: rule name, target count, before/after structural
  signatures.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Optional, TextIO


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serialisable structures."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    return str(value)


class TraceEvent:
    """One optimizer trace record (sequence number, kind, payload)."""

    __slots__ = ("seq", "kind", "data")

    #: class-level construction counter; bench_obs asserts it stays flat
    #: across a workload run with tracing disarmed
    created = 0

    def __init__(self, seq: int, kind: str, data: dict):
        type(self).created += 1
        self.seq = seq
        self.kind = kind
        self.data = data

    def to_dict(self) -> dict:
        return {"seq": self.seq, "kind": self.kind, **_jsonable(self.data)}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def format(self) -> str:
        parts = " ".join(
            f"{key}={_compact(value)}" for key, value in self.data.items()
        )
        return f"[{self.seq:05d}] {self.kind:<16} {parts}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.seq}, {self.kind!r}, {self.data!r})"


def _compact(value: Any) -> str:
    if isinstance(value, float):
        return "inf" if value == float("inf") else f"{value:.2f}"
    if isinstance(value, tuple):
        return "(" + ",".join(str(v) for v in value) + ")"
    return str(value)


class Tracer:
    """Bounded ring buffer of trace events with an optional JSONL sink.

    *capacity* bounds the in-memory buffer (oldest events drop first);
    *sink* is a writable text stream that receives every event as one
    JSON line the moment it is emitted (so a crash mid-optimization
    still leaves the prefix on disk, as 10053 does).
    """

    #: class-level construction counter (mirrors SearchGovernor.created)
    created = 0

    def __init__(self, capacity: int = 4096, sink: Optional[TextIO] = None):
        type(self).created += 1
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self._sink = sink
        self._seq = 0
        #: total events emitted, including any that fell off the ring
        self.emitted = 0

    def emit(self, kind: str, **data: Any) -> TraceEvent:
        event = TraceEvent(self._seq, kind, data)
        self._seq += 1
        self.emitted += 1
        self._buffer.append(event)
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")
        return event

    # -- introspection -----------------------------------------------------

    def events(self, kind: Optional[str] = None) -> list[TraceEvent]:
        if kind is None:
            return list(self._buffer)
        return [e for e in self._buffer if e.kind == kind]

    def count(self, kind: Optional[str] = None) -> int:
        return len(self.events(kind))

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def format_table(self) -> str:
        """Human-readable rendering of the buffered events."""
        lines = [
            f"optimizer trace ({len(self._buffer)} buffered of "
            f"{self.emitted} emitted, capacity {self.capacity})"
        ]
        lines.extend(event.format() for event in self._buffer)
        return "\n".join(lines)
