"""Unified metrics registry: counters, histograms, pluggable collectors.

One registry per :class:`~repro.database.Database` absorbs every
accounting surface the engine grew over time — the service layer's plan
cache counters, the dynamic-sampling cache, the transformation
quarantine, degradation-ladder and governor outcomes — behind a single
export: ``Database.snapshot()``, ``.metrics`` in the shell, and
``python -m repro metrics --json``.

Two primitive kinds plus collectors:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Histogram` — count/total/min/max plus a bounded reservoir of
  the most recent samples for percentile snapshots (p50/p90/p99);
* *collectors* — callables returning a dict, registered by subsystems
  that already keep their own thread-safe counters (plan cache,
  quarantine, sampling cache); they are invoked only at snapshot time,
  so absorption adds zero cost to the recording paths.

Everything is thread-safe; recording is a lock + a few arithmetic ops,
cheap enough for per-statement call sites (never per-row ones).
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from typing import Callable, Optional

from ..errors import VerificationError

#: most recent samples kept per histogram for percentile estimation
DEFAULT_RESERVOIR = 1024


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Histogram:
    """A named distribution: running aggregates + a recent-sample
    reservoir for percentiles."""

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_lock")

    def __init__(self, name: str, reservoir: int = DEFAULT_RESERVOIR):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: deque[float] = deque(maxlen=reservoir)
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._samples.append(value)

    def percentile(self, q: float) -> float:
        """The *q*-quantile (0 < q <= 1) over the recent reservoir."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        index = max(0, min(len(samples) - 1, math.ceil(q * len(samples)) - 1))
        return samples[index]

    def snapshot(self) -> dict:
        with self._lock:
            count, total = self.count, self.total
            low = self.min if self.count else 0.0
            high = self.max if self.count else 0.0
            samples = sorted(self._samples)

        def pct(q: float) -> float:
            if not samples:
                return 0.0
            index = max(0, min(len(samples) - 1, math.ceil(q * len(samples)) - 1))
            return samples[index]

        return {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "min": low,
            "max": high,
            "p50": pct(0.50),
            "p90": pct(0.90),
            "p99": pct(0.99),
        }

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = math.inf
            self.max = -math.inf
            self._samples.clear()


class MetricsRegistry:
    """Create-on-first-use registry of counters, histograms, and
    collectors, with one consistent snapshot surface."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[str, Callable[[], dict]] = {}

    # -- construction ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        # double-checked create-on-first-use: the unlocked dict probe is a
        # GIL-atomic read and the hot path for every metered operation
        counter = self._counters.get(name)  # staticcheck: ignore[lock.discipline] double-checked fast path; setdefault under lock arbitrates
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def histogram(
        self, name: str, reservoir: int = DEFAULT_RESERVOIR
    ) -> Histogram:
        histogram = self._histograms.get(name)  # staticcheck: ignore[lock.discipline] double-checked fast path; setdefault under lock arbitrates
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, reservoir)
                )
        return histogram

    def register_collector(self, name: str, fn: Callable[[], dict]) -> None:
        """Attach a subsystem's own accounting under *name*; *fn* is
        invoked at snapshot time only (last registration wins)."""
        with self._lock:
            self._collectors[name] = fn

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent export of every counter, histogram percentile
        summary, and collector dump."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            collectors = dict(self._collectors)
        out: dict = {
            "counters": {
                name: counter.value for name, counter in sorted(counters.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(histograms.items())
            },
        }
        for name, fn in sorted(collectors.items()):
            try:
                out[name] = fn()
            except VerificationError:
                # an invariant violation must abort loudly, never be
                # downgraded to an "error" row in a metrics snapshot
                raise
            except Exception as exc:  # a broken collector must not take
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True,
                          default=str)

    def format_table(self) -> str:
        """Human-readable rendering for the shell's ``.metrics``."""
        snap = self.snapshot()
        lines = ["metrics"]
        if snap["counters"]:
            lines.append("  counters")
            for name, value in snap["counters"].items():
                lines.append(f"    {name:<34} {value}")
        if snap["histograms"]:
            lines.append("  histograms")
            for name, h in snap["histograms"].items():
                lines.append(
                    f"    {name:<34} count={h['count']} mean={h['mean']:.3f} "
                    f"p50={h['p50']:.3f} p90={h['p90']:.3f} p99={h['p99']:.3f}"
                )
        for name, payload in snap.items():
            if name in ("counters", "histograms"):
                continue
            lines.append(f"  {name}")
            if isinstance(payload, dict):
                for key, value in payload.items():
                    lines.append(f"    {key:<34} {value}")
            else:  # pragma: no cover - collectors return dicts by contract
                lines.append(f"    {payload}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero counters and histograms (collectors own their state)."""
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
        for counter in counters:
            counter.reset()
        for histogram in histograms:
            histogram.reset()
