"""Observability layer: optimizer search tracing, execution profiling,
and the unified metrics registry.

Industrial optimizers live and die by their telemetry — Oracle's 10053
trace records every transformation state the CBQT search enumerated and
why states were pruned, and estimated-vs-actual feedback from real
executions is the load-bearing practice production optimizers rely on.
This package supplies the three surfaces, all zero-cost when off:

* :class:`~repro.obs.trace.Tracer` — a structured trace-event stream
  (ring buffer + optional JSONL sink) emitted from the CBQT search
  (per-state records: transformation, state bit-vector, estimated cost,
  cut-off/prune reason, annotation-cache hit/miss deltas, interleaving
  decisions) and from the heuristic pipeline (rule fired, before/after
  tree signatures).  Armed via ``Database.tracing()``; every call site
  is an ``is None`` guard, so the untroubled path constructs no trace
  events at all;
* ``EXPLAIN ANALYZE`` — executor instrumentation counting actual rows,
  invocations, and wall-clock self-time per physical operator, rendered
  by :func:`~repro.obs.explain.format_explain_analyze` with per-operator
  Q-error and a plan-level max-Q-error summary;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters and histograms
  (with percentile snapshots) plus pluggable collectors that absorb the
  engine's pre-existing accounting (plan cache, dynamic sampling cache,
  quarantine) behind one export surface: ``Database.snapshot()``,
  ``.metrics`` in the shell, ``python -m repro metrics --json``.
"""

from .explain import (
    annotation_lines,
    format_explain_analyze,
    operator_profiles,
    qerror,
)
from .metrics import Counter, Histogram, MetricsRegistry
from .trace import TraceEvent, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "annotation_lines",
    "format_explain_analyze",
    "operator_profiles",
    "qerror",
]
