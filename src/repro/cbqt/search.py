"""State-space search strategies for cost-based transformation (§3.2).

A transformation that applies to N objects induces a state space of
alternative vectors; a state assigns each object one of its alternatives
(0 = untransformed).  For plain binary transformations this is the
paper's bit-vector; objects with more than two alternatives arise from
juxtaposition (§3.3.2), e.g. a view that can be merged *or* have join
predicates pushed into it.

Four strategies, exactly as in the paper:

* **exhaustive** — all combinations; guaranteed optimum.
* **iterative** — random-restart hill climbing; between N+1 and 2^N
  states, capped by ``max_states``.
* **linear** — dynamic-programming style: decide object 1, freeze, decide
  object 2 given the frozen prefix, ...; N+1 states for binary objects.
* **two-pass** — cost only all-zeros vs all-ones; 2 states.

Each strategy receives a ``cost_fn(state) -> float`` (``math.inf`` for a
state aborted by the cost cut-off) and returns ``SearchResult`` with the
best state found and the number of *distinct* states costed — the column
reported in Table 2 of the paper.

States-costed is unchanged by the subplan memo
(:mod:`repro.optimizer.memo`): every state the strategy visits is still
costed, but states whose subtrees or join cores were already optimized —
under an earlier state of this search or an earlier statement — are
costed from memoized physical subplans instead of fresh join-order
enumerations, so the *work per state* shrinks while the search shape
(and Table 2's counts) stays identical.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

CostFn = Callable[[tuple[int, ...]], float]


@dataclass
class SearchResult:
    best_state: tuple[int, ...]
    best_cost: float
    states_evaluated: int
    costs: dict[tuple[int, ...], float] = field(default_factory=dict)
    #: states in first-evaluation order — the walk the strategy actually
    #: took, recorded for the optimizer trace (``cbqt.decision`` events)
    order: list[tuple[int, ...]] = field(default_factory=list)


class _Memo:
    """Wraps cost_fn so repeated states are never re-costed and every
    evaluation is recorded."""

    def __init__(self, cost_fn: CostFn):
        self._fn = cost_fn
        self.costs: dict[tuple[int, ...], float] = {}
        self.order: list[tuple[int, ...]] = []

    def __call__(self, state: tuple[int, ...]) -> float:
        cached = self.costs.get(state)
        if cached is not None:
            return cached
        cost = self._fn(state)
        self.costs[state] = cost
        self.order.append(state)
        return cost

    def result(self) -> SearchResult:
        best_state = min(self.costs, key=lambda s: self.costs[s])
        return SearchResult(
            best_state,
            self.costs[best_state],
            len(self.costs),
            dict(self.costs),
            list(self.order),
        )


def exhaustive_search(alternatives: Sequence[int], cost_fn: CostFn) -> SearchResult:
    """Cost every state in the cross product of alternatives."""
    memo = _Memo(cost_fn)
    for state in itertools.product(*(range(n) for n in alternatives)):
        memo(state)
    return memo.result()


def two_pass_search(alternatives: Sequence[int], cost_fn: CostFn) -> SearchResult:
    """Cost the all-untransformed and all-transformed states only."""
    memo = _Memo(cost_fn)
    memo(tuple(0 for _ in alternatives))
    memo(tuple(min(1, n - 1) for n in alternatives))
    return memo.result()


def linear_search(alternatives: Sequence[int], cost_fn: CostFn) -> SearchResult:
    """Greedy prefix-extension: if transforming object k improved the
    cost, keep it and move to object k+1 — "if Cost(1,0) is lower than
    Cost(0,0), and Cost(1,1) is lower than Cost(1,0), then it is safe to
    assume Cost(1,1) is the lowest" (§3.2).  N+1 states for binary
    objects."""
    memo = _Memo(cost_fn)
    current = [0] * len(alternatives)
    current_cost = memo(tuple(current))
    for i, n_alts in enumerate(alternatives):
        best_alt, best_cost = current[i], current_cost
        for alt in range(1, n_alts):
            candidate = list(current)
            candidate[i] = alt
            cost = memo(tuple(candidate))
            if cost < best_cost:
                best_alt, best_cost = alt, cost
        current[i] = best_alt
        current_cost = best_cost
    return memo.result()


def iterative_search(
    alternatives: Sequence[int],
    cost_fn: CostFn,
    max_states: int = 32,
    restarts: int = 4,
    seed: int = 0,
) -> SearchResult:
    """Iterative improvement: random starting states, always move to the
    best strictly-improving neighbour (one object changed), restart when
    stuck; stop when ``max_states`` distinct states have been costed or
    no unvisited states remain."""
    memo = _Memo(cost_fn)
    rng = random.Random(seed)
    total_states = 1
    for n in alternatives:
        total_states *= n
    memo(tuple(0 for _ in alternatives))  # always know the baseline

    for _restart in range(max(restarts, 1)):
        if len(memo.costs) >= min(max_states, total_states):
            break
        state = tuple(rng.randrange(n) for n in alternatives)
        cost = memo(state)
        improved = True
        while improved and len(memo.costs) < max_states:
            improved = False
            neighbours = []
            for i, n_alts in enumerate(alternatives):
                for alt in range(n_alts):
                    if alt == state[i]:
                        continue
                    candidate = list(state)
                    candidate[i] = alt
                    neighbours.append(tuple(candidate))
            rng.shuffle(neighbours)
            for candidate in neighbours:
                if len(memo.costs) >= max_states:
                    break
                candidate_cost = memo(candidate)
                if candidate_cost < cost:
                    state, cost = candidate, candidate_cost
                    improved = True
                    break
    return memo.result()


#: strategy name -> callable(alternatives, cost_fn, **kwargs)
STRATEGIES = {
    "exhaustive": exhaustive_search,
    "linear": linear_search,
    "two_pass": two_pass_search,
    "iterative": iterative_search,
}


def choose_strategy(
    n_objects: int,
    total_objects_in_query: int,
    exhaustive_threshold: int = 4,
    linear_threshold: int = 10,
    two_pass_total_threshold: int = 16,
) -> str:
    """Automatic strategy selection (§3.2): exhaustive for few objects,
    linear past a threshold, iterative in between, and two-pass for all
    transformations when the query's total transformable-element count is
    itself past a (larger) threshold."""
    if total_objects_in_query > two_pass_total_threshold:
        return "two_pass"
    if n_objects <= exhaustive_threshold:
        return "exhaustive"
    if n_objects > linear_threshold:
        return "linear"
    return "iterative"
