"""Cost-based query transformation framework (§3 of the paper)."""

from .caching import DynamicSamplingCache
from .framework import (
    Alternative,
    CbqtConfig,
    CbqtFramework,
    OptimizationReport,
    TransformationDecision,
    TransformObject,
)
from .search import (
    STRATEGIES,
    SearchResult,
    choose_strategy,
    exhaustive_search,
    iterative_search,
    linear_search,
    two_pass_search,
)

__all__ = [
    "Alternative",
    "CbqtConfig",
    "CbqtFramework",
    "DynamicSamplingCache",
    "OptimizationReport",
    "TransformationDecision",
    "TransformObject",
    "STRATEGIES",
    "SearchResult",
    "choose_strategy",
    "exhaustive_search",
    "iterative_search",
    "linear_search",
    "two_pass_search",
]
