"""The cost-based query transformation framework (§3).

Drives the whole optimization of one query:

1. apply the heuristic (imperative) transformations to a fixpoint;
2. for each cost-based transformation, in the paper's sequential order:
   find its objects, build each object's *alternative list* (including
   interleaved and juxtaposed combinations, §3.3), pick a search strategy
   from the state-space size (§3.2), and search — each state is costed by
   deep-copying the query tree, applying the state's alternatives, and
   invoking the physical optimizer with cost cut-off (§3.4.1) and cost
   annotation reuse (§3.4.2);
3. transfer the winning state's directives onto the original tree and
   re-run the cheap heuristic rules (a transformation can synthesise
   constructs that re-enable them, §3.1);
4. produce the final plan and an :class:`OptimizationReport`.

With ``enabled=False`` the framework reproduces the paper's *heuristic
mode* (§4.1): subquery unnesting follows the pre-10g rule, group-by view
merging is applied whenever legal, JPPD when an index motivates it, and
the never-heuristic transformations (group-by placement, predicate
pullup, set-op conversion, OR expansion, join factorization) are skipped.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..analysis import Diagnostic, TransformationAuditor
from ..catalog.schema import Catalog
from ..errors import OptimizerError, TransformError
from ..obs.trace import Tracer
from ..optimizer.physical import CostBudgetExceeded, PhysicalOptimizer
from ..optimizer.plans import Plan
from ..qtree.blocks import QueryBlock, QueryNode
from ..resilience import (
    DegradationInfo,
    GovernorStats,
    SearchGovernor,
    blame,
    faults,
)
from ..sql import ast
from ..transform import apply_heuristic_phase
from ..transform.base import TargetRef, Transformation, find_block
from ..transform.costbased import (
    GroupByViewMerging,
    JoinPredicatePushdown,
    UnnestSubqueryToView,
)
from ..transform.costbased.unnest_view import pre10g_heuristic_says_unnest
from ..transform.pipeline import build_cost_based_transformations
from .search import STRATEGIES, SearchResult, choose_strategy

ApplyFn = Callable[[QueryNode], QueryNode]


def _env_debug_checks() -> bool:
    """Paranoid-mode default, from ``REPRO_DEBUG_CHECKS`` (the test suite
    sets it so every transform application runs under the sanitizer)."""
    return os.environ.get("REPRO_DEBUG_CHECKS", "").lower() in (
        "1", "true", "on", "yes",
    )


@dataclass
class CbqtConfig:
    """Knobs of the cost-based transformation framework."""

    #: master switch: False reproduces pre-10g heuristic mode
    enabled: bool = True
    #: transformation names to disable entirely (both modes)
    disabled_transformations: frozenset[str] = frozenset()
    #: force one search strategy for every transformation (None = auto)
    search_strategy: Optional[str] = None
    exhaustive_threshold: int = 4
    linear_threshold: int = 10
    two_pass_total_threshold: int = 16
    iterative_max_states: int = 32
    iterative_restarts: int = 4
    #: abort costing a state once it exceeds the incumbent best (§3.4.1)
    cost_cutoff: bool = True
    #: interleave unnesting with view merging (§3.3.1)
    interleaving: bool = True
    #: juxtapose view merging with JPPD (§3.3.2)
    juxtaposition: bool = True
    seed: int = 0
    #: paranoid mode: run the query-tree and plan verifiers around every
    #: transformation step and CBQT search state, raising
    #: :class:`~repro.errors.VerificationError` on any violation
    debug_checks: bool = field(default_factory=_env_debug_checks)


@dataclass
class Alternative:
    """One way to transform an object (index 0 is always 'untransformed')."""

    label: str
    apply: Optional[ApplyFn]  # None for the untransformed alternative


@dataclass
class TransformObject:
    """One object a transformation applies to, with its alternatives."""

    order_key: tuple
    alternatives: list[Alternative]


@dataclass
class TransformationDecision:
    """Outcome of one cost-based transformation's state-space search."""

    transformation: str
    n_objects: int
    strategy: str
    states_evaluated: int
    best_state: tuple[int, ...]
    best_cost: float
    baseline_cost: float
    applied_labels: list[str] = field(default_factory=list)
    #: full search trace: state vector -> estimated cost (inf = aborted
    #: by the cost cut-off or an inapplicable alternative combination)
    state_costs: dict[tuple[int, ...], float] = field(default_factory=dict)

    @property
    def changed_query(self) -> bool:
        return any(self.best_state)


@dataclass
class OptimizationReport:
    """Everything the facade exposes about one optimization."""

    transformed_sql: str = ""
    decisions: list[TransformationDecision] = field(default_factory=list)
    total_states: int = 0
    heuristic_mode: bool = False
    elapsed_seconds: float = 0.0
    final_cost: float = 0.0
    #: sanitizer findings (warnings in paranoid mode, everything when
    #: auditing without raising — the ``check`` subcommand's path)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: set by the degradation ladder when this plan was produced via
    #: fallback (level, blamed transformations, reason)
    degradation: Optional[DegradationInfo] = None
    #: transformations skipped because the quarantine registry disabled
    #: them for this statement
    quarantined: list[str] = field(default_factory=list)
    #: search-governor accounting (None when no governor was armed)
    governor: Optional[GovernorStats] = None
    #: blocks the physical optimizer actually planned for this statement
    blocks_optimized: int = 0
    #: fresh join-order enumerations run (memo hits skip the enumerator,
    #: so this — not total_states — is the optimization-time currency)
    join_enumerations: int = 0
    #: cross-statement memo hits at the node tier (whole subplans reused)
    memo_hits: int = 0
    #: cross-statement memo hits at the join tier (join orders reused)
    memo_join_hits: int = 0

    def decision_for(self, name: str) -> Optional[TransformationDecision]:
        for decision in self.decisions:
            if decision.transformation == name:
                return decision
        return None


class CbqtFramework:
    """One instance per Database; stateless across queries apart from the
    shared physical optimizer (whose annotation store the framework clears
    per query, keeping it only across states — §3.4.3).  When the physical
    optimizer carries a :class:`~repro.optimizer.memo.MemoSession`, reuse
    additionally crosses statements: identical subtrees and join cores
    recur across CBQT search states and hard parses, and the memo serves
    their optimized subplans without re-running join-order enumeration."""

    def __init__(
        self,
        catalog: Catalog,
        physical: PhysicalOptimizer,
        config: Optional[CbqtConfig] = None,
        auditor: Optional[TransformationAuditor] = None,
        governor: Optional[SearchGovernor] = None,
        tracer: Optional[Tracer] = None,
    ):
        self._catalog = catalog
        self._physical = physical
        self.config = config or CbqtConfig()
        if auditor is None and self.config.debug_checks:
            auditor = TransformationAuditor(catalog)
        #: None unless paranoid mode — every call site is guarded on it,
        #: so debug_checks=False costs nothing on the optimize path
        self._auditor = auditor
        #: None unless a deadline/state budget/cancel token is armed —
        #: the idle search path pays one ``is None`` test per state
        self._governor = governor
        #: None unless tracing is armed (``Database.tracing()``) — same
        #: guard discipline, so the untraced path emits nothing
        self._tracer = tracer

    # -- public ---------------------------------------------------------------

    def optimize(self, root: QueryNode) -> tuple[QueryNode, Plan, OptimizationReport]:
        config = self.config
        report = OptimizationReport(heuristic_mode=not config.enabled)
        started = time.perf_counter()
        self._physical.annotations.clear()
        counters = self._physical.counters
        blocks_before = counters.blocks_optimized
        enumerations_before = counters.join_orders_considered
        memo = self._physical.memo
        memo_hits_before = memo.hits if memo is not None else 0
        memo_join_before = memo.join_hits if memo is not None else 0

        auditor = self._auditor
        if auditor is not None:
            auditor.audit_tree(root, "input")

        root = self._heuristic_phase(root)

        transformations = [
            t for t in build_cost_based_transformations(self._catalog)
            if t.name not in config.disabled_transformations
        ]
        if config.enabled:
            total_objects = sum(
                len(t.find_targets(root)) for t in transformations
            )
            for transformation in transformations:
                root = self._run_cost_based(
                    transformation, root, total_objects, report
                )
        else:
            root = self._heuristic_fallbacks(root, transformations, report)

        plan = self._physical.optimize(root)
        if auditor is not None:
            auditor.audit_tree(root, "final")
            auditor.audit_plan(plan, "final")
            report.diagnostics = list(auditor.report.diagnostics)
        if self._governor is not None:
            report.governor = self._governor.stats()
        report.transformed_sql = root.to_sql()
        report.final_cost = plan.cost
        report.blocks_optimized = counters.blocks_optimized - blocks_before
        report.join_enumerations = (
            counters.join_orders_considered - enumerations_before
        )
        if memo is not None:
            report.memo_hits = memo.hits - memo_hits_before
            report.memo_join_hits = memo.join_hits - memo_join_before
            if self._tracer is not None:
                self._tracer.emit(
                    "cbqt.memo",
                    hits=report.memo_hits,
                    join_hits=report.memo_join_hits,
                    stores=memo.stores,
                    join_stores=memo.join_stores,
                    shared_operators=memo.shared_operators,
                    max_share_depth=memo.max_share_depth,
                    active=memo.active,
                )
        report.elapsed_seconds = time.perf_counter() - started
        return root, plan, report

    # -- phases ---------------------------------------------------------------

    def _heuristic_phase(self, root: QueryNode) -> QueryNode:
        enabled = None
        if self.config.disabled_transformations:
            from ..transform.pipeline import HEURISTIC_ORDER

            enabled = {
                cls.name for cls in HEURISTIC_ORDER
                if cls.name not in self.config.disabled_transformations
            }
        return apply_heuristic_phase(
            root, self._catalog, enabled,
            auditor=self._auditor, tracer=self._tracer,
        )

    def _run_cost_based(
        self,
        transformation: Transformation,
        root: QueryNode,
        total_objects: int,
        report: OptimizationReport,
    ) -> QueryNode:
        objects = self._build_objects(transformation, root)
        if not objects:
            return root

        config = self.config
        strategy_name = config.search_strategy or choose_strategy(
            len(objects),
            total_objects,
            config.exhaustive_threshold,
            config.linear_threshold,
            config.two_pass_total_threshold,
        )
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "cbqt.search",
                transformation=transformation.name,
                strategy=strategy_name,
                objects=len(objects),
                alternatives=[
                    [alt.label for alt in obj.alternatives] for obj in objects
                ],
            )

        # Anything escaping the search's infeasible-state net (injected
        # faults, verifier violations, costing bugs) is attributed to
        # this transformation for the ladder/quarantine, unless an inner
        # blame() already pinned a more specific culprit.
        with blame(transformation.name):
            result = self._search(
                strategy_name, objects, root, transformation.name
            )

        decision = TransformationDecision(
            transformation=transformation.name,
            n_objects=len(objects),
            strategy=strategy_name,
            states_evaluated=result.states_evaluated,
            best_state=result.best_state,
            best_cost=result.best_cost,
            baseline_cost=result.costs.get(
                tuple(0 for _ in objects), math.inf
            ),
            state_costs=dict(result.costs),
        )
        report.decisions.append(decision)
        report.total_states += result.states_evaluated

        if any(result.best_state):
            root = self._apply_state(root, objects, result.best_state, audit=True)
            decision.applied_labels = [
                objects[i].alternatives[alt].label
                for i, alt in enumerate(result.best_state)
                if alt
            ]
            # A transformation may synthesise constructs that re-enable
            # the imperative rules (§3.1).
            root = self._heuristic_phase(root)
        if tracer is not None:
            tracer.emit(
                "cbqt.decision",
                transformation=transformation.name,
                best_state=result.best_state,
                best_cost=result.best_cost,
                baseline_cost=decision.baseline_cost,
                states_evaluated=result.states_evaluated,
                order=result.order,
                applied=decision.applied_labels,
            )
        return root

    def _search(
        self,
        strategy_name: str,
        objects: list[TransformObject],
        root: QueryNode,
        transformation_name: str,
    ) -> SearchResult:
        config = self.config
        governor = self._governor
        tracer = self._tracer
        best_so_far = [math.inf]

        def trace_state(
            state: tuple[int, ...],
            cost: float,
            prune: Optional[str],
            hits_before: int = -1,
            misses_before: int = -1,
            memo_before: int = -1,
        ) -> None:
            stats = self._physical.annotations.stats
            memo = self._physical.memo
            memo_hits = 0
            if memo is not None and memo_before >= 0:
                memo_hits = memo.hits + memo.join_hits - memo_before
            assert tracer is not None
            tracer.emit(
                "cbqt.state",
                transformation=transformation_name,
                state=state,
                cost=cost,
                prune=prune,
                annotation_hits=(
                    stats.hits - hits_before if hits_before >= 0 else 0
                ),
                annotation_misses=(
                    stats.misses - misses_before if misses_before >= 0 else 0
                ),
                memo_hits=memo_hits,
            )

        def cost_fn(state: tuple[int, ...]) -> float:
            # Governor first: once the deadline or state budget is gone,
            # every remaining state is refused and the strategies drain
            # with the best-so-far incumbent (cancel tokens raise here).
            if governor is not None and not governor.admit():
                if tracer is not None:
                    trace_state(state, math.inf, "governor")
                return math.inf
            faults.check("cbqt.costing")
            budget = (
                best_so_far[0]
                if config.cost_cutoff and math.isfinite(best_so_far[0])
                else None
            )
            if tracer is not None:
                before = self._physical.annotations.stats
                hits_before, misses_before = before.hits, before.misses
                memo = self._physical.memo
                memo_before = (
                    memo.hits + memo.join_hits if memo is not None else -1
                )
            # VerificationError deliberately escapes this net: a state
            # whose rewrite corrupted the tree must abort the search, not
            # be silently costed at infinity.  So does everything that is
            # not plain state infeasibility (FaultInjected, timeouts) —
            # the degradation ladder, not this net, handles those.
            # CostBudgetExceeded before OptimizerError (its base class):
            # a budget abort is the §3.4.1 cut-off, not infeasibility.
            try:
                candidate = self._apply_state(
                    root.clone(), objects, state, audit=True
                )
                plan = self._physical.optimize(candidate, budget)
            except CostBudgetExceeded:
                if tracer is not None:
                    trace_state(
                        state, math.inf, "cost-cutoff",
                        hits_before, misses_before, memo_before,
                    )
                return math.inf
            except (TransformError, OptimizerError):
                if tracer is not None:
                    trace_state(
                        state, math.inf, "infeasible",
                        hits_before, misses_before, memo_before,
                    )
                return math.inf
            if self._auditor is not None:
                self._auditor.audit_plan(plan, transformation_name, state)
            if plan.cost < best_so_far[0]:
                best_so_far[0] = plan.cost
            if tracer is not None:
                trace_state(
                    state, plan.cost, None,
                    hits_before, misses_before, memo_before,
                )
            return plan.cost

        alternatives = [len(obj.alternatives) for obj in objects]
        strategy = STRATEGIES[strategy_name]
        if strategy_name == "iterative":
            result = strategy(
                alternatives,
                cost_fn,
                max_states=config.iterative_max_states,
                restarts=config.iterative_restarts,
                seed=config.seed,
            )
        else:
            result = strategy(alternatives, cost_fn)
        if (
            tracer is not None
            and governor is not None
            and governor.exhausted is not None
        ):
            tracer.emit(
                "cbqt.governor",
                transformation=transformation_name,
                **governor.stats().as_dict(),
            )
        return result

    def _apply_state(
        self,
        root: QueryNode,
        objects: list[TransformObject],
        state: tuple[int, ...],
        audit: bool = False,
    ) -> QueryNode:
        chosen = [
            (obj, alt) for obj, alt in zip(objects, state) if alt
        ]
        # Apply within a block in descending conjunct order so earlier
        # deletions do not shift later targets.
        chosen.sort(key=lambda pair: pair[0].order_key, reverse=True)
        for obj, alt in chosen:
            alternative = obj.alternatives[alt]
            assert alternative.apply is not None
            # label "unnest_view+groupby_merge(subquery[0]@qb$1)" →
            # injection points transform.unnest_view, transform.groupby_merge
            names = alternative.label.split("(", 1)[0].split("+")
            with blame(names[0]):
                for name in names:
                    faults.check(f"transform.{name}")
                root = alternative.apply(root)
                if audit and self._auditor is not None:
                    # blame the exact alternative and state bitvector
                    self._auditor.audit_tree(root, alternative.label, state)
        return root

    # -- object/alternative construction -----------------------------------------

    def _build_objects(
        self, transformation: Transformation, root: QueryNode
    ) -> list[TransformObject]:
        targets = transformation.find_targets(root)
        objects = []
        for target in targets:
            alternatives = [Alternative("none", None)]
            alternatives.extend(
                self._alternatives_for(transformation, target, root)
            )
            if len(alternatives) > 1:
                objects.append(
                    TransformObject(_order_key(target), alternatives)
                )
        return objects

    def _alternatives_for(
        self, transformation: Transformation, target: TargetRef, root: QueryNode
    ) -> list[Alternative]:
        base = Alternative(
            f"{transformation.name}({target.describe()})",
            lambda node, t=transformation, tg=target: t.apply(node, tg),
        )
        alternatives = [base]

        disabled = self.config.disabled_transformations
        if (
            self.config.interleaving
            and isinstance(transformation, UnnestSubqueryToView)
            and "groupby_merge" not in disabled
            and transformation.target_kind(root, target) == "aggregate"
        ):
            interleaved = self._interleaved_unnest_merge(transformation, target)
            if interleaved is not None:
                alternatives.append(interleaved)

        if (
            self.config.juxtaposition
            and isinstance(transformation, GroupByViewMerging)
            and "jppd" not in disabled
        ):
            juxtaposed = self._juxtaposed_jppd(target, root)
            if juxtaposed is not None:
                alternatives.append(juxtaposed)

        return alternatives

    def _interleaved_unnest_merge(
        self, unnest: UnnestSubqueryToView, target: TargetRef
    ) -> Optional[Alternative]:
        """Unnesting followed by merging the generated view (§3.3.1):
        even when Q10 costs more than Q1, Q11 may beat both."""
        merger = GroupByViewMerging(self._catalog)

        def apply(node: QueryNode) -> QueryNode:
            before = {
                (t.block, t.key) for t in merger.find_targets(node)
            }
            node = unnest.apply(node, target)
            fresh = [
                t for t in merger.find_targets(node)
                if (t.block, t.key) not in before and t.block == target.block
            ]
            if not fresh:
                raise TransformError(
                    "interleaved merge: generated view is not mergeable"
                )
            for t in fresh:
                node = merger.apply(node, t)
            return node

        return Alternative(
            f"unnest_view+groupby_merge({target.describe()})", apply
        )

    def _juxtaposed_jppd(
        self, target: TargetRef, root: QueryNode
    ) -> Optional[Alternative]:
        """View merging juxtaposed with JPPD on the same view (§3.3.2):
        the search compares none / merge / pushdown in one state space."""
        jppd = JoinPredicatePushdown(self._catalog)
        applicable = any(
            t.block == target.block and t.key == target.key
            for t in jppd.find_targets(root)
        )
        if not applicable:
            return None
        return Alternative(
            f"jppd({target.describe()})",
            lambda node, t=jppd, tg=target: t.apply(node, tg),
        )

    # -- heuristic mode (§4.1) -------------------------------------------------------

    def _heuristic_fallbacks(
        self,
        root: QueryNode,
        transformations: list[Transformation],
        report: OptimizationReport,
    ) -> QueryNode:
        for transformation in transformations:
            if isinstance(transformation, UnnestSubqueryToView):
                root = self._heuristic_unnest(transformation, root, report)
            elif isinstance(transformation, GroupByViewMerging):
                root = self._apply_all_targets(transformation, root, report)
            elif isinstance(transformation, JoinPredicatePushdown):
                root = self._heuristic_jppd(transformation, root, report)
            # group-by placement, predicate pullup, set-op conversion,
            # OR expansion and join factorization have no heuristic form.
        return root

    def _heuristic_unnest(
        self,
        transformation: UnnestSubqueryToView,
        root: QueryNode,
        report: OptimizationReport,
    ) -> QueryNode:
        applied = []
        for target in reversed(transformation.find_targets(root)):
            block = find_block(root, target.block)
            if block is None:
                continue
            conjunct = block.where_conjuncts[int(target.key)]  # type: ignore[arg-type]
            sub_block = _subquery_block_of(conjunct)
            if sub_block is None:
                continue
            if pre10g_heuristic_says_unnest(block, sub_block, self._catalog):
                with blame(transformation.name):
                    faults.check(f"transform.{transformation.name}")
                    root = transformation.apply(root, target)
                    if self._auditor is not None:
                        self._auditor.audit_tree(root, transformation.name)
                applied.append(target.describe())
        if applied:
            report.decisions.append(
                TransformationDecision(
                    transformation.name, len(applied), "heuristic",
                    1, (1,) * len(applied), math.nan, math.nan,
                    applied,
                )
            )
            root = self._heuristic_phase(root)
        return root

    def _apply_all_targets(
        self,
        transformation: Transformation,
        root: QueryNode,
        report: OptimizationReport,
    ) -> QueryNode:
        applied = []
        for _ in range(16):
            targets = transformation.find_targets(root)
            if not targets:
                break
            with blame(transformation.name):
                faults.check(f"transform.{transformation.name}")
                root = transformation.apply(root, targets[0])
                if self._auditor is not None:
                    self._auditor.audit_tree(root, transformation.name)
            applied.append(targets[0].describe())
        if applied:
            report.decisions.append(
                TransformationDecision(
                    transformation.name, len(applied), "heuristic",
                    1, (1,) * len(applied), math.nan, math.nan, applied,
                )
            )
            root = self._heuristic_phase(root)
        return root

    def _heuristic_jppd(
        self,
        transformation: JoinPredicatePushdown,
        root: QueryNode,
        report: OptimizationReport,
    ) -> QueryNode:
        """Heuristic JPPD: push only when an index on an underlying base
        column would turn the lateral join into an index NL probe."""
        applied = []
        for target in transformation.find_targets(root):
            block = find_block(root, target.block)
            if block is None:
                continue
            item = block.from_item(str(target.key))
            if not self._jppd_index_motivated(item):
                continue
            with blame(transformation.name):
                faults.check(f"transform.{transformation.name}")
                root = transformation.apply(root, target)
                if self._auditor is not None:
                    self._auditor.audit_tree(root, transformation.name)
            applied.append(target.describe())
        if applied:
            report.decisions.append(
                TransformationDecision(
                    transformation.name, len(applied), "heuristic",
                    1, (1,) * len(applied), math.nan, math.nan, applied,
                )
            )
        return root

    def _jppd_index_motivated(self, item) -> bool:
        node = item.subquery
        for block in node.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            for sel in block.select_items:
                expr = sel.expr
                if not isinstance(expr, ast.ColumnRef) or expr.qualifier is None:
                    continue
                try:
                    inner_item = block.from_item(expr.qualifier)
                except TransformError:
                    continue
                if not inner_item.is_base_table:
                    continue
                if self._catalog.indexes_on(inner_item.table_name, expr.name):
                    return True
        return False


def _subquery_block_of(conjunct: ast.Expr) -> Optional[QueryBlock]:
    for node in conjunct.walk():
        if isinstance(node, ast.SubqueryExpr) and isinstance(
            node.query, QueryBlock
        ):
            return node.query
    return None


def _order_key(target: TargetRef) -> tuple:
    key = target.key
    if isinstance(key, int):
        return (target.block, target.kind, key)
    if isinstance(key, tuple):
        numeric = key[1] if len(key) > 1 and isinstance(key[1], int) else 0
        return (target.block, target.kind, numeric)
    return (target.block, target.kind, 0)
