"""Caching of expensive optimizer computations (§3.4.4).

Dynamic sampling — estimating single-table cardinalities for tables with
no collected statistics — is expensive and its result survives
transformations that do not alter the table's single-table predicates.
The cache memoises it per table across every optimizer invocation made
while costing transformation states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..catalog.schema import Catalog
from ..catalog.statistics import TableStats, sample_statistics
from ..engine.tables import Storage


@dataclass
class SamplingCacheStats:
    hits: int = 0
    misses: int = 0


class DynamicSamplingCache:
    """Callable ``table_name -> TableStats`` backed by dynamic sampling
    over stored rows, memoised per table."""

    def __init__(
        self,
        storage: Storage,
        catalog: Catalog,
        sample_fraction: float = 0.1,
        seed: int = 42,
    ):
        self._storage = storage
        self._catalog = catalog
        self._fraction = sample_fraction
        self._seed = seed
        self._cache: dict[str, TableStats] = {}
        self.stats = SamplingCacheStats()

    def __call__(self, table_name: str) -> Optional[TableStats]:
        name = table_name.lower()
        cached = self._cache.get(name)
        if cached is not None:
            self.stats.hits += 1
            return cached
        if not self._storage.has(name):
            return None
        self.stats.misses += 1
        data = self._storage.get(name)
        stats = sample_statistics(
            data.rows,
            self._catalog.table(name).column_names,
            self._fraction,
            self._seed,
        )
        self._cache[name] = stats
        return stats

    def invalidate(self, table_name: Optional[str] = None) -> None:
        if table_name is None:
            self._cache.clear()
        else:
            self._cache.pop(table_name.lower(), None)

    def snapshot(self) -> dict:
        """Accounting export for the metrics registry (collector form:
        read at snapshot time only, zero cost on the sampling path)."""
        return {
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "entries": len(self._cache),
        }
