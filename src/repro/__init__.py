"""repro — Cost-Based Query Transformation in Oracle (VLDB 2006), rebuilt.

A from-scratch, pure-Python relational engine whose optimizer implements
the paper's cost-based query transformation (CBQT) framework: heuristic
and cost-based logical transformations, state-space search over
transformation alternatives costed by a System-R-style physical
optimizer, cost-annotation reuse, cost cut-off, interleaving and
juxtaposition of interacting transformations — plus the execution engine
and workload machinery needed to regenerate the paper's evaluation.

Entry points: :class:`Database`, :class:`OptimizerConfig`, the serving
layer :class:`QueryService` / :class:`Session` (bind variables, shared
plan cache, adaptive cursor sharing), the optimizer sanitizer
(:mod:`repro.analysis`, ``Database.check``, paranoid-mode
``debug_checks``), and the observability layer (:mod:`repro.obs`):
``Database.tracing()`` for the 10053-style search trace,
``Database.explain_analyze()`` for estimated-vs-actual operator stats,
and ``Database.snapshot()`` for the unified metrics registry.
"""

from .analysis import (
    Diagnostic,
    DiagnosticReport,
    PlanVerifier,
    QTreeVerifier,
    TransformationAuditor,
)
from .cbqt.framework import CbqtConfig, OptimizationReport
from .database import Database, OptimizedQuery, OptimizerConfig, QueryResult
from .durability import (
    DurabilityConfig,
    DurabilityManager,
    RecoveryReport,
    verify_recovery,
)
from .errors import (
    AdmissionRejected,
    DurabilityError,
    FaultInjected,
    RecoveryError,
    ReproError,
    ServerShuttingDown,
    SessionNotFound,
    StatementCancelled,
    StatementTimeout,
    VerificationError,
    WalCorruption,
)
from .obs import MetricsRegistry, TraceEvent, Tracer
from .resilience import (
    CancelToken,
    DegradationInfo,
    FaultInjector,
    FaultSpec,
    QuarantineRegistry,
    ResilienceConfig,
    SearchGovernor,
    inject,
    injection_points,
)
from .server import ReproServer, ServerConfig
from .service import Cursor, PlanCache, PreparedStatement, QueryService, Session

__version__ = "1.6.0"

__all__ = [
    "Database",
    "OptimizerConfig",
    "OptimizedQuery",
    "QueryResult",
    "CbqtConfig",
    "OptimizationReport",
    "PlanCache",
    "PreparedStatement",
    "QueryService",
    "Session",
    "Cursor",
    "ReproServer",
    "ServerConfig",
    "Diagnostic",
    "DiagnosticReport",
    "QTreeVerifier",
    "PlanVerifier",
    "TransformationAuditor",
    "ReproError",
    "VerificationError",
    "StatementTimeout",
    "StatementCancelled",
    "AdmissionRejected",
    "SessionNotFound",
    "ServerShuttingDown",
    "DurabilityError",
    "WalCorruption",
    "RecoveryError",
    "DurabilityConfig",
    "DurabilityManager",
    "RecoveryReport",
    "verify_recovery",
    "FaultInjected",
    "ResilienceConfig",
    "DegradationInfo",
    "CancelToken",
    "SearchGovernor",
    "QuarantineRegistry",
    "FaultInjector",
    "FaultSpec",
    "inject",
    "injection_points",
    "MetricsRegistry",
    "Tracer",
    "TraceEvent",
    "__version__",
]
