"""Durable storage under the copy-on-write engine: write-ahead log,
checkpoint/recovery, and the crash-consistency commit protocol.

Opt-in and zero-cost when unused: a :class:`~repro.database.Database`
opened without ``data_dir`` never touches this package at runtime (the
durability bench gates that structurally and by paired timing).

    db = Database(data_dir="./data")          # recovers, then serves
    db.execute_ddl("CREATE TABLE t (id INT PRIMARY KEY)")
    db.insert("t", [{"id": 1}])               # WAL record before publish
    db.checkpoint()                           # snapshot + truncate WAL
    db.close()

See :mod:`repro.durability.wal` for the record format and fsync
policies, :mod:`repro.durability.manager` for the commit protocol, and
:mod:`repro.durability.recovery` for the recovery/verification
protocol.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    build_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from .manager import (
    CHECKPOINT_FILENAME,
    WAL_FILENAME,
    DurabilityConfig,
    DurabilityManager,
)
from .recovery import (
    RecoveryReport,
    apply_record,
    recover,
    state_digest,
    verify_recovery,
)
from .wal import (
    FSYNC_POLICIES,
    WalReadResult,
    WriteAheadLog,
    encode_record,
    read_wal,
    repair_wal,
)

__all__ = [
    "CHECKPOINT_FILENAME",
    "CHECKPOINT_FORMAT",
    "FSYNC_POLICIES",
    "WAL_FILENAME",
    "DurabilityConfig",
    "DurabilityManager",
    "RecoveryReport",
    "WalReadResult",
    "WriteAheadLog",
    "apply_record",
    "build_checkpoint",
    "encode_record",
    "read_checkpoint",
    "read_wal",
    "recover",
    "repair_wal",
    "state_digest",
    "verify_recovery",
    "write_checkpoint",
]
