"""The write-ahead log: checksummed, length-prefixed JSONL records.

One record per committed mutation, one line per record::

    <length:08x> <crc32:08x> <payload-json>\\n

``length`` is the byte length of the JSON payload, ``crc32`` its
checksum (:func:`zlib.crc32`).  Payloads are compact, sorted-key ASCII
JSON, so the log is greppable and diffable while still being
machine-verifiable byte for byte.  Every payload carries a
monotonically increasing ``lsn``; within one log file LSNs are
consecutive, which lets the reader distinguish a *torn tail* (the
expected signature of a crash mid-append: truncate and continue) from
*mid-file corruption* (a valid record after an invalid one, or an LSN
hole: refuse with :class:`~repro.errors.WalCorruption`).

Durability levels (``fsync`` policy):

``always``
    flush + ``os.fsync`` after every record — a crash loses nothing
    acknowledged;
``batch``
    flush after every record, fsync every ``batch_records`` records —
    a crash loses at most the last unsynced batch to a *power* failure
    (a process kill alone loses nothing: the data is in the page cache);
``off``
    flush only — recovery still works after process death, but a power
    failure may lose recent records.

Appends are atomic at the API level: if the write or fsync fails (for
real or via the ``wal.append`` / ``wal.fsync`` fault points), the file
is truncated back to its pre-append offset, so an unacknowledged commit
never persists.  The ``wal.torn_tail`` fault point instead *simulates a
crash*: it leaves half the record on disk and poisons the handle so the
test must reopen — exactly what a killed process would force.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Optional

from ..errors import DurabilityError, WalCorruption
from ..resilience import faults

#: bytes before the payload: 8 hex length + space + 8 hex crc + space
HEADER_BYTES = 18

#: accepted fsync policies
FSYNC_POLICIES = ("always", "batch", "off")


def encode_record(payload: dict) -> bytes:
    """One WAL line for *payload* (which must be JSON-able)."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")
    return (
        f"{len(body):08x} {zlib.crc32(body):08x} ".encode("ascii")
        + body
        + b"\n"
    )


def _decode_at(data: bytes, offset: int) -> Optional[tuple[dict, int]]:
    """Parse one record at *offset*; ``(payload, end_offset)`` if the
    bytes there form a complete, checksum-valid record, else ``None``."""
    header_end = offset + HEADER_BYTES
    if header_end > len(data):
        return None
    header = data[offset:header_end]
    if header[8:9] != b" " or header[17:18] != b" ":
        return None
    try:
        length = int(header[0:8], 16)
        crc = int(header[9:17], 16)
    except ValueError:
        return None
    end = header_end + length + 1
    if end > len(data):
        return None
    body = data[header_end:header_end + length]
    if data[end - 1:end] != b"\n" or zlib.crc32(body) != crc:
        return None
    try:
        payload = json.loads(body)
    except ValueError:
        return None
    if not isinstance(payload, dict) or not isinstance(payload.get("lsn"), int):
        return None
    return payload, end


@dataclass
class WalReadResult:
    """Outcome of scanning a WAL file."""

    #: every valid record, in log order
    records: list[dict] = field(default_factory=list)
    #: byte offset just past the last valid record
    valid_bytes: int = 0
    #: bytes after ``valid_bytes`` (a torn final record; 0 = clean log)
    torn_bytes: int = 0


def read_wal(path: str) -> WalReadResult:
    """Scan the log at *path* (missing file = empty log).

    A torn *final* record is reported, not raised; anything valid found
    *after* an invalid region — or a break in the consecutive LSN
    sequence — raises :class:`WalCorruption`, because silently dropping
    it would lose an acknowledged commit."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return WalReadResult()
    result = WalReadResult()
    offset = 0
    while offset < len(data):
        decoded = _decode_at(data, offset)
        if decoded is None:
            break
        payload, end = decoded
        if result.records and payload["lsn"] != result.records[-1]["lsn"] + 1:
            raise WalCorruption(
                f"WAL {path}: LSN jumped from {result.records[-1]['lsn']} "
                f"to {payload['lsn']} at byte {offset} — records are missing"
            )
        result.records.append(payload)
        offset = end
    result.valid_bytes = offset
    result.torn_bytes = len(data) - offset
    if result.torn_bytes:
        _reject_valid_after_torn(path, data, offset)
    return result


def _reject_valid_after_torn(path: str, data: bytes, torn_at: int) -> None:
    """A complete record *after* the invalid region means the hole is in
    the middle of the log, not a torn tail — refuse to repair."""
    probe = torn_at
    while True:
        newline = data.find(b"\n", probe)
        if newline < 0:
            return
        probe = newline + 1
        if _decode_at(data, probe) is not None:
            raise WalCorruption(
                f"WAL {path}: invalid record at byte {torn_at} followed by "
                f"a valid record at byte {probe} — mid-file corruption, "
                "not a torn tail; refusing to repair"
            )


def repair_wal(path: str) -> WalReadResult:
    """Scan and, if the log ends in a torn record, truncate it away.

    Idempotent; raises :class:`WalCorruption` for mid-file damage."""
    result = read_wal(path)
    if result.torn_bytes:
        with open(path, "r+b") as handle:
            handle.truncate(result.valid_bytes)
    return result


class WriteAheadLog:
    """Append handle on one WAL file."""

    #: process-wide structural counters: the durability bench asserts
    #: these stay exactly zero across an in-memory (no data_dir) workload
    records_appended_total = 0
    fsyncs_total = 0

    def __init__(
        self,
        path: str,
        fsync: str = "batch",
        batch_records: int = 8,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {fsync!r}; use one of {FSYNC_POLICIES}"
            )
        self.path = path
        self.fsync = fsync
        self.batch_records = max(1, batch_records)
        self._file = open(path, "ab")
        self._unsynced = 0
        self._poisoned = False
        #: per-handle counters (mirrored into metrics by the manager)
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0

    # -- writing -----------------------------------------------------------

    def append(self, payload: dict) -> None:
        """Durably append one record; all-or-nothing.

        On any failure the file is rolled back to its pre-append offset
        and the error propagates — the caller must not publish the
        commit.  The ``wal.torn_tail`` fault deliberately skips the
        rollback (it *is* the simulated crash) and poisons the handle."""
        if self._poisoned:
            raise DurabilityError(
                f"WAL {self.path} poisoned by a simulated crash "
                "(wal.torn_tail); reopen the database to recover"
            )
        faults.check("wal.append")
        record = encode_record(payload)
        start = self._file.tell()
        try:
            faults.check("wal.torn_tail")
        except BaseException:
            # a crash mid-append: half the record reaches the file, and
            # this process would never write again — poison the handle
            self._file.write(record[: max(1, len(record) // 2)])
            self._file.flush()
            self._poisoned = True
            raise
        try:
            self._file.write(record)
            self._file.flush()
            self._unsynced += 1
            if self.fsync == "always" or (
                self.fsync == "batch" and self._unsynced >= self.batch_records
            ):
                self._fsync()
        except BaseException:
            # roll the partial append back so the log stays parseable
            # and the unacknowledged commit never survives a restart
            self._file.truncate(start)
            self._file.seek(start)
            self._unsynced = 0
            raise
        self.records_appended += 1
        self.bytes_appended += len(record)
        WriteAheadLog.records_appended_total += 1

    def _fsync(self) -> None:
        faults.check("wal.fsync")
        if self.fsync != "off":
            os.fsync(self._file.fileno())
        self._unsynced = 0
        self.fsyncs += 1
        WriteAheadLog.fsyncs_total += 1

    def sync(self) -> None:
        """Flush and (policy permitting) fsync any buffered records."""
        if self._poisoned:
            return
        self._file.flush()
        if self.fsync != "off" and self._unsynced:
            self._fsync()

    # -- lifecycle ---------------------------------------------------------

    def truncate(self) -> None:
        """Drop every record (checkpoint just superseded them)."""
        if self._poisoned:
            raise DurabilityError(
                f"WAL {self.path} poisoned by a simulated crash "
                "(wal.torn_tail); reopen the database to recover"
            )
        self._file.truncate(0)
        self._file.seek(0)
        self._file.flush()
        if self.fsync != "off":
            os.fsync(self._file.fileno())
        self._unsynced = 0

    def close(self) -> None:
        if self._file.closed:
            return
        if not self._poisoned:
            self.sync()
        self._file.close()
