"""The durability manager: the commit protocol tying the WAL, the
checkpointer, and recovery to one database instance.

Commit protocol (the crash-consistency core):

1. every durable mutation runs under the manager's exclusive lock —
   the lock is acquired *before* any table/catalog lock, so the
   ordering ``manager -> table -> catalog`` holds on every path and the
   checkpointer (which also takes the exclusive lock) can never observe
   a half-applied operation;
2. the mutation validates and stages its new state (a fresh
   :class:`~repro.engine.tables.TableVersion`, a catalog entry, ...);
3. :meth:`DurabilityManager.commit` appends the WAL record — assigning
   the next LSN — and only *then* invokes the publish closure that
   makes the state visible.  If the append fails, nothing is published
   and the log is rolled back to its pre-append offset: an
   unacknowledged commit can survive neither in memory nor on disk.

A checkpoint serializes the whole committed state (stamped with the
current LSN) to ``checkpoint.json`` atomically and truncates
``wal.jsonl``; recovery on open loads the checkpoint, repairs a torn
WAL tail, and replays records with ``lsn > checkpoint.lsn`` through the
database's own public mutation API (with the manager detached, so
replay does not re-log).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from ..errors import DurabilityError
from .checkpoint import build_checkpoint, write_checkpoint
from .recovery import RecoveryReport, recover
from .wal import FSYNC_POLICIES, WriteAheadLog

if TYPE_CHECKING:  # deferred: the database layer imports this package
    from ..database import Database
    from ..obs import MetricsRegistry

#: file names inside a data directory
WAL_FILENAME = "wal.jsonl"
CHECKPOINT_FILENAME = "checkpoint.json"


@dataclass
class DurabilityConfig:
    """Knobs for the durable-storage layer."""

    #: WAL fsync policy: "always" / "batch" / "off" (see
    #: :mod:`repro.durability.wal` for the guarantees each buys)
    fsync: str = "batch"
    #: records per fsync under the "batch" policy
    batch_records: int = 8
    #: auto-checkpoint once this many WAL records accumulate
    #: (None/0 = explicit checkpoints only)
    checkpoint_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {self.fsync!r}; "
                f"use one of {FSYNC_POLICIES}"
            )


class DurabilityManager:
    """WAL + checkpoint + recovery for one data directory."""

    def __init__(
        self,
        data_dir: str,
        config: Optional[DurabilityConfig] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.data_dir = data_dir
        self.config = config or DurabilityConfig()
        self.metrics = metrics
        #: re-entrant so a mutation already inside :meth:`exclusive` can
        #: reach :meth:`commit`; ordering: this lock is always taken
        #: before any table/catalog lock, never after
        self._lock = threading.RLock()
        self._lsn = 0
        self._wal_records = 0
        self._wal: Optional[WriteAheadLog] = None

    @property
    def wal_path(self) -> str:
        return os.path.join(self.data_dir, WAL_FILENAME)

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.data_dir, CHECKPOINT_FILENAME)

    # -- lifecycle ---------------------------------------------------------

    def open(self, db: "Database") -> RecoveryReport:
        """Recover *db* from the data directory and arm the WAL.

        Must run before the manager is attached to the database (replay
        drives the public mutation API, which must not re-log)."""
        os.makedirs(self.data_dir, exist_ok=True)
        report = recover(db, self.wal_path, self.checkpoint_path)
        with self._lock:
            self._lsn = report.last_lsn
            self._wal_records = (
                report.wal_records_applied + report.wal_records_skipped
            )
            self._wal = WriteAheadLog(
                self.wal_path, self.config.fsync, self.config.batch_records
            )
        return report

    def close(self) -> None:
        """Flush, fsync (policy permitting), and release the WAL."""
        with self._lock:
            if self._wal is not None:
                self._wal.close()
                self._wal = None

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._wal is None

    # -- the commit protocol -----------------------------------------------

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """Serialize one durable mutation against commits and
        checkpoints (re-entrant; see the module docstring for why this
        lock comes first in the ordering)."""
        with self._lock:
            yield

    def _require_wal(self) -> WriteAheadLog:
        if self._wal is None:  # staticcheck: ignore[lock.discipline] callers hold self._lock (re-entrant)
            raise DurabilityError(
                f"durability manager for {self.data_dir} is closed"
            )
        return self._wal  # staticcheck: ignore[lock.discipline] callers hold self._lock (re-entrant)

    def append(self, payload: dict) -> int:
        """Append one WAL record (LSN assigned here); returns the LSN.

        The caller is mid-mutation under :meth:`exclusive`; on failure
        the WAL was rolled back and the caller must not publish."""
        with self._lock:
            wal = self._require_wal()
            record = dict(payload)
            record["lsn"] = self._lsn + 1
            started = time.perf_counter()
            wal.append(record)
            self._lsn += 1
            self._wal_records += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("durability.wal_records").inc()
            metrics.histogram("durability.wal_append_ms").record(
                (time.perf_counter() - started) * 1000.0
            )
        return record["lsn"]

    def commit(self, payload: dict, publish: Callable[[], None]) -> int:
        """Log *payload*, then publish: the WAL-before-visibility step.

        Holding the lock across both makes append + publish atomic with
        respect to the checkpointer — a checkpoint at LSN *n* always
        contains the effects of records ``1..n``."""
        with self._lock:
            lsn = self.append(payload)
            publish()
            return lsn

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self, db: "Database") -> int:
        """Serialize the full committed state and truncate the WAL;
        returns the checkpoint's LSN."""
        started = time.perf_counter()
        with self._lock:
            wal = self._require_wal()
            state = build_checkpoint(
                self._lsn, db.catalog, db.storage, db.statistics
            )
            write_checkpoint(self.checkpoint_path, state)
            # only after the rename landed may the records go; a crash
            # in between is benign (recovery skips lsn <= checkpoint.lsn)
            wal.truncate()
            self._wal_records = 0
            lsn = self._lsn
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("durability.checkpoints").inc()
            metrics.histogram("durability.checkpoint_ms").record(
                (time.perf_counter() - started) * 1000.0
            )
        return lsn

    def maybe_checkpoint(self, db: "Database") -> bool:
        """Checkpoint if ``checkpoint_every`` records have accumulated."""
        every = self.config.checkpoint_every
        if not every:
            return False
        with self._lock:
            if self._wal is None or self._wal_records < every:
                return False
        self.checkpoint(db)
        return True

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Accounting for the metrics registry's collector hook."""
        with self._lock:
            wal = self._wal
            return {
                "data_dir": self.data_dir,
                "fsync": self.config.fsync,
                "lsn": self._lsn,
                "wal_records": self._wal_records,
                "wal_bytes_appended": wal.bytes_appended if wal else 0,
                "wal_fsyncs": wal.fsyncs if wal else 0,
                "closed": wal is None,
            }
