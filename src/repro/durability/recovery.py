"""Recovery: rebuild a database from ``checkpoint.json`` + the WAL tail.

The protocol, in order:

1. load the checkpoint (if any) verbatim — table definitions with their
   exact index set via :meth:`Catalog.load_table`, rows re-inserted (which
   rebuilds every index structure), statistics, expensive-function costs;
2. scan the WAL, truncating a torn final record (the signature of a
   crash mid-append) and refusing mid-file corruption;
3. replay every record with ``lsn > checkpoint.lsn`` through the
   database's *public* mutation API — the manager is not yet attached,
   so replay does not re-log — and require the first replayed LSN to be
   exactly ``checkpoint.lsn + 1`` (anything else means records are
   missing).

Replay is deterministic: ``insert`` records carry the normalised rows
the original commit published, ``analyze`` records re-run the exact
statistics collection over identical rows, and DDL records re-derive
the same auto-indexes — so a recovered database is byte-for-byte
``state_digest``-equal to the pre-crash one, which is what
:func:`verify_recovery` (``python -m repro recover --verify``) and the
crash-chaos suite check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..catalog.schema import index_from_dict, table_from_dict
from ..catalog.statistics import stats_from_dict, stats_to_dict
from ..errors import RecoveryError, ReproError
from .checkpoint import read_checkpoint
from .wal import read_wal, repair_wal

if TYPE_CHECKING:  # deferred: the database layer imports this package
    from ..database import Database


@dataclass
class RecoveryReport:
    """What recovery found and did; exposed as ``Database.recovery``."""

    #: LSN the loaded checkpoint was taken at (0 = no checkpoint)
    checkpoint_lsn: int = 0
    #: tables restored from the checkpoint
    checkpoint_tables: int = 0
    #: rows restored from the checkpoint
    checkpoint_rows: int = 0
    #: valid records found in the WAL
    wal_records_total: int = 0
    #: records replayed (lsn > checkpoint_lsn)
    wal_records_applied: int = 0
    #: records already covered by the checkpoint (a crash between the
    #: checkpoint rename and the WAL truncate leaves these behind)
    wal_records_skipped: int = 0
    #: bytes of torn final record dropped from the WAL
    torn_bytes_dropped: int = 0
    #: highest LSN in the recovered state
    last_lsn: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


def apply_record(db: "Database", record: dict) -> None:
    """Replay one WAL record through the public mutation API."""
    op = record.get("op")
    if op == "insert":
        db.insert(record["table"], record["rows"])
    elif op == "create_table":
        table, _ = table_from_dict(record["table"])
        db.create_table(table)
    elif op == "create_index":
        db.create_index(index_from_dict(record["index"]))
    elif op == "analyze":
        db.analyze(record.get("table"))
    elif op == "expensive_function":
        db.catalog.register_expensive_function(record["name"], record["cost"])
    else:
        raise RecoveryError(
            f"unknown WAL op {op!r} at lsn {record.get('lsn')}"
        )


def _load_checkpoint_state(
    db: "Database", state: dict, report: RecoveryReport
) -> None:
    report.checkpoint_lsn = state["lsn"]
    for entry in state.get("tables", []):
        table, indexes = table_from_dict(entry["def"])
        db.catalog.load_table(table, indexes)
        data = db.storage.create(table)
        rows = entry.get("rows", [])
        if rows:
            # re-inserting rebuilds every index structure from scratch
            data.insert(rows)
        report.checkpoint_tables += 1
        report.checkpoint_rows += len(rows)
    for name, payload in state.get("statistics", {}).items():
        db.statistics.set(name, stats_from_dict(payload))
    for name, cost in state.get("expensive_functions", {}).items():
        db.catalog.register_expensive_function(name, cost)


def recover(
    db: "Database",
    wal_path: str,
    checkpoint_path: str,
    repair: bool = True,
) -> RecoveryReport:
    """Rebuild *db* (which must be empty) from the data directory.

    With ``repair=True`` (the normal open path) a torn WAL tail is
    truncated on disk; ``repair=False`` (the read-only ``--verify``
    path) leaves the files untouched."""
    report = RecoveryReport()
    state = read_checkpoint(checkpoint_path)
    try:
        if state is not None:
            _load_checkpoint_state(db, state, report)
        wal = repair_wal(wal_path) if repair else read_wal(wal_path)
        report.wal_records_total = len(wal.records)
        report.torn_bytes_dropped = wal.torn_bytes
        report.last_lsn = report.checkpoint_lsn
        for record in wal.records:
            lsn = record["lsn"]
            if lsn <= report.checkpoint_lsn:
                report.wal_records_skipped += 1
                continue
            if lsn != report.last_lsn + 1:
                raise RecoveryError(
                    f"WAL {wal_path}: expected lsn {report.last_lsn + 1} "
                    f"next but found {lsn} — records are missing"
                )
            apply_record(db, record)
            report.wal_records_applied += 1
            report.last_lsn = lsn
    except RecoveryError:
        raise
    except ReproError as exc:
        raise RecoveryError(
            f"replay failed against {wal_path}: {exc}"
        ) from exc
    return report


# -- verification ----------------------------------------------------------


def state_digest(db: "Database") -> dict:
    """A canonical, JSON-able digest of one database's committed state.

    Two databases that executed the same committed operations — live,
    recovered, or oracle-replayed — digest identically; row order is
    preserved deliberately (replay keeps insertion order, so a
    difference there is a real divergence)."""
    tables = {}
    for name in sorted(db.catalog.tables):  # staticcheck: ignore[lock.discipline] GIL-atomic dict read; digests run on quiesced instances
        table = db.catalog.tables[name]  # staticcheck: ignore[lock.discipline] GIL-atomic dict read; digests run on quiesced instances
        definition = table.to_dict(include_indexes=True)
        definition["indexes"] = sorted(
            definition.get("indexes", []), key=lambda ix: ix["name"]
        )
        rows = db.storage.get(name).rows if db.storage.has(name) else []
        tables[name] = {
            "def": definition,
            "rows": [
                json.dumps(row, sort_keys=True, default=str) for row in rows
            ],
        }
    return {
        "tables": tables,
        "statistics": {
            name: stats_to_dict(stats) for name, stats in db.statistics.items()
        },
        "expensive_functions": dict(db.catalog.expensive_functions),
    }


def _check_indexes(db: "Database") -> None:
    """Every index structure must cover exactly the rows whose key has
    no NULL part — the invariant insert-time maintenance guarantees and
    recovery's rebuild must reproduce."""
    for name in db.catalog.tables:  # staticcheck: ignore[lock.discipline] GIL-atomic dict read; verification runs on a private replica
        if not db.storage.has(name):
            raise RecoveryError(
                f"catalog table {name!r} has no storage after recovery"
            )
        data = db.storage.get(name)
        for index in db.catalog.tables[name].indexes:  # staticcheck: ignore[lock.discipline] GIL-atomic dict read; verification runs on a private replica
            index_data = data.index_named(index.name)
            expected = sum(
                1
                for row in data.rows
                if all(row[c] is not None for c in index.columns)
            )
            # intra-package reach into the hash map: entry count has no
            # public accessor and this is the recovery validator
            actual = sum(len(ids) for ids in index_data._hash.values())
            if actual != expected:
                raise RecoveryError(
                    f"index {index.name!r} on {name!r} covers {actual} "
                    f"rows after recovery, expected {expected}"
                )


def verify_recovery(
    data_dir: str,
    wal_path: str,
    checkpoint_path: str,
) -> RecoveryReport:
    """Read-only recovery verification (``recover --verify``).

    Replays the directory into two independent fresh databases and
    requires (a) replay to succeed, (b) both replicas to digest
    identically (replay determinism), and (c) every index to cover
    exactly its non-NULL-keyed rows.  Files are not modified."""
    from ..database import Database

    replicas = []
    reports = []
    for _ in range(2):
        db = Database()
        reports.append(recover(db, wal_path, checkpoint_path, repair=False))
        replicas.append(db)
    first, second = (state_digest(db) for db in replicas)
    if first != second:
        raise RecoveryError(
            f"replay of {data_dir} is not deterministic: two recoveries "
            "produced different states"
        )
    for db in replicas:
        _check_indexes(db)
    return reports[0]
