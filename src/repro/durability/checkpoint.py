"""Checkpointing: one JSON snapshot of the full database state.

A checkpoint captures the catalog (tables, indexes, expensive-function
costs), every table's committed rows, and collected statistics, stamped
with the LSN of the last WAL record it reflects.  It is written
atomically — temp file in the same directory, flush + fsync,
``os.replace`` over the live name, directory fsync — so a crash during
checkpointing leaves either the old checkpoint or the new one, never a
torn hybrid.  Only after the rename lands is the WAL truncated; a crash
between the two is benign because recovery skips WAL records with
``lsn <= checkpoint.lsn``.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Optional

from ..catalog.statistics import stats_to_dict
from ..errors import RecoveryError
from ..resilience import faults

if TYPE_CHECKING:  # deferred: durability is imported by the database layer
    from ..catalog.schema import Catalog
    from ..catalog.statistics import StatisticsRegistry
    from ..engine.tables import Storage

#: bumped when the snapshot layout changes incompatibly
CHECKPOINT_FORMAT = 1


def build_checkpoint(
    lsn: int,
    catalog: "Catalog",
    storage: "Storage",
    statistics: "StatisticsRegistry",
) -> dict:
    """The JSON-able snapshot of the current committed state.

    The caller must hold the durability manager's lock so no commit can
    publish between reading *lsn* and reading the table versions."""
    tables = []
    for name in sorted(catalog.tables):  # staticcheck: ignore[lock.discipline] caller holds the durability manager lock, which serializes all DDL
        table = catalog.tables[name]  # staticcheck: ignore[lock.discipline] caller holds the durability manager lock, which serializes all DDL
        rows = storage.get(name).rows if storage.has(name) else []
        tables.append({
            "def": table.to_dict(include_indexes=True),
            "rows": rows,
        })
    return {
        "format": CHECKPOINT_FORMAT,
        "lsn": lsn,
        "tables": tables,
        "statistics": {
            name: stats_to_dict(stats) for name, stats in statistics.items()
        },
        "expensive_functions": dict(catalog.expensive_functions),
    }


def write_checkpoint(path: str, state: dict) -> None:
    """Atomically publish *state* at *path* (see the module docstring
    for the temp-file + rename + directory-fsync protocol)."""
    faults.check("checkpoint.write")
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="ascii") as handle:
        json.dump(state, handle, sort_keys=True, separators=(",", ":"),
                  ensure_ascii=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    directory = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    try:
        os.fsync(directory)
    finally:
        os.close(directory)


def read_checkpoint(path: str) -> Optional[dict]:
    """Load the checkpoint at *path*; ``None`` when none was ever
    written.  An unreadable or wrong-format file raises
    :class:`~repro.errors.RecoveryError` — a checkpoint is only ever
    published whole, so damage here is not a crash artefact."""
    try:
        with open(path, encoding="ascii") as handle:
            state = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as exc:
        raise RecoveryError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(state, dict) or state.get("format") != CHECKPOINT_FORMAT:
        raise RecoveryError(
            f"checkpoint {path} has unsupported format "
            f"{state.get('format') if isinstance(state, dict) else '?'!r} "
            f"(this build reads format {CHECKPOINT_FORMAT})"
        )
    if not isinstance(state.get("lsn"), int):
        raise RecoveryError(f"checkpoint {path} carries no integer lsn")
    return state
