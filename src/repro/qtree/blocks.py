"""The query tree: declarative query blocks.

The paper distinguishes *query trees* from algebraic *operator trees*:
query trees "retain all the declarativeness of SQL" (§2) and are what the
transformation framework manipulates; only physical optimization converts
them to operator (plan) trees.  This module defines that representation.

A :class:`QueryBlock` is a flattened SELECT: a list of from-items, a
conjunct list for WHERE, group-by/having, etc.  Join structure is kept
Oracle-style: inner-join predicates are ordinary WHERE conjuncts; outer,
semi and anti joins annotate the *right-side* from-item with a join type
and its ON conjuncts, which imposes the partial join order the paper
describes for non-commutative joins (§2.1.1, §2.2.3).

Set operations are :class:`SetOpBlock` nodes whose branches are query
blocks (or nested set ops).  Both node kinds can appear as a derived-table
source or subquery body, and both support :meth:`clone` — the deep-copy
capability §3.1 lists as a framework component.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Union

from ..catalog.schema import TableDef
from ..errors import TransformError
from ..sql import ast

#: Join types a from-item can carry.  INNER items are freely reorderable;
#: the others are non-commutative and impose a partial order (their left
#: sides must precede them).  ANTI_NA is the null-aware antijoin (§2.1.1).
JOIN_TYPES = ("INNER", "LEFT", "SEMI", "ANTI", "ANTI_NA")


class FromItem:
    """One entry of a query block's FROM list.

    ``source`` is either a base-table name (with ``table`` holding the
    resolved :class:`TableDef`) or a :class:`QueryBlock` /
    :class:`SetOpBlock` for a derived table (inline view).

    For non-INNER items, ``join_conjuncts`` holds the ON condition and the
    item is the *right* side of the join; every alias referenced by those
    conjuncts other than this item's own alias must precede it in any join
    order.  ``lateral_refs`` lists outer aliases this (derived) item
    references after join predicate pushdown made it laterally correlated.
    """

    _counter = itertools.count(1)

    def __init__(
        self,
        alias: str,
        source: Union[str, "QueryNode"],
        table: Optional[TableDef] = None,
        join_type: str = "INNER",
        join_conjuncts: Optional[list[ast.Expr]] = None,
    ):
        if join_type not in JOIN_TYPES:
            raise TransformError(f"unknown join type {join_type!r}")
        self.alias = alias.lower()
        self.source = source
        self.table = table
        self.join_type = join_type
        self.join_conjuncts: list[ast.Expr] = list(join_conjuncts or [])

    # -- classification ------------------------------------------------------

    @property
    def is_base_table(self) -> bool:
        return isinstance(self.source, str)

    @property
    def is_derived(self) -> bool:
        return not isinstance(self.source, str)

    @property
    def table_name(self) -> str:
        if not isinstance(self.source, str):
            raise TransformError(f"from-item {self.alias!r} is not a base table")
        return self.source

    @property
    def subquery(self) -> "QueryNode":
        if isinstance(self.source, str):
            raise TransformError(f"from-item {self.alias!r} is not a derived table")
        return self.source

    @property
    def is_inner(self) -> bool:
        return self.join_type == "INNER"

    def output_columns(self) -> list[str]:
        """Column names this item exposes to the enclosing block."""
        if self.is_base_table:
            assert self.table is not None
            return self.table.column_names
        return self.subquery.output_columns()

    def required_predecessors(self) -> set[str]:
        """Aliases that must precede this item in any join order."""
        if self.join_type == "INNER":
            return set()
        refs = set()
        for conjunct in self.join_conjuncts:
            for col in ast.column_refs_in(conjunct):
                if col.qualifier and col.qualifier != self.alias:
                    refs.add(col.qualifier)
        return refs

    def clone(self) -> "FromItem":
        source = self.source if isinstance(self.source, str) else self.source.clone()
        return FromItem(
            self.alias,
            source,
            self.table,
            self.join_type,
            [c.clone() for c in self.join_conjuncts],
        )

    @classmethod
    def fresh_alias(cls, prefix: str) -> str:
        """Generate a globally unique alias like ``vw$3``."""
        return f"{prefix}${next(cls._counter)}"

    def __repr__(self) -> str:
        kind = self.source if isinstance(self.source, str) else "<derived>"
        return f"FromItem({self.alias}={kind}, {self.join_type})"


class QueryNode:
    """Common behaviour of QueryBlock and SetOpBlock."""

    def output_columns(self) -> list[str]:
        raise NotImplementedError

    def clone(self) -> "QueryNode":
        raise NotImplementedError

    def to_sql(self) -> str:
        from .sqlgen import node_to_sql

        return node_to_sql(self)

    def iter_blocks(self) -> Iterator["QueryBlock"]:
        """Yield every QueryBlock in this subtree, pre-order: the block
        itself, derived tables, subqueries in predicates, set-op branches."""
        raise NotImplementedError


class QueryBlock(QueryNode):
    """A single declarative SELECT block."""

    _names = itertools.count(1)

    def __init__(
        self,
        name: Optional[str] = None,
        select_items: Optional[list[ast.SelectItem]] = None,
        distinct: bool = False,
        from_items: Optional[list[FromItem]] = None,
        where_conjuncts: Optional[list[ast.Expr]] = None,
        group_by: Optional[list[ast.Expr]] = None,
        grouping_sets: Optional[list[list[int]]] = None,
        having_conjuncts: Optional[list[ast.Expr]] = None,
        order_by: Optional[list[ast.OrderItem]] = None,
        rownum_limit: Optional[int] = None,
    ):
        self.name = name or f"qb${next(self._names)}"
        self.select_items = select_items or []
        self.distinct = distinct
        self.from_items = from_items or []
        self.where_conjuncts = where_conjuncts or []
        self.group_by = group_by or []
        #: ROLLUP / CUBE / GROUPING SETS, expanded: each entry lists the
        #: indices into ``group_by`` that are grouped in that set
        self.grouping_sets = grouping_sets
        self.having_conjuncts = having_conjuncts or []
        self.order_by = order_by or []
        self.rownum_limit = rownum_limit

    # -- structure accessors ---------------------------------------------

    @property
    def has_aggregation(self) -> bool:
        """True if this block groups (explicitly or via aggregate-only
        select list) or deduplicates."""
        return bool(self.group_by) or self.distinct or self.has_aggregates

    @property
    def has_aggregates(self) -> bool:
        return any(
            ast.contains_aggregate(item.expr) for item in self.select_items
        ) or any(ast.contains_aggregate(c) for c in self.having_conjuncts)

    @property
    def is_spj(self) -> bool:
        """True for a plain select-project-join block: no grouping,
        distinct, aggregation, window functions, rownum, or set ops."""
        if self.group_by or self.having_conjuncts or self.distinct:
            return False
        if self.has_aggregates or self.rownum_limit is not None:
            return False
        if any(
            isinstance(node, ast.WindowFunc)
            for item in self.select_items
            for node in item.expr.walk()
        ):
            return False
        return True

    def aliases(self) -> set[str]:
        return {item.alias for item in self.from_items}

    def from_item(self, alias: str) -> FromItem:
        alias = alias.lower()
        for item in self.from_items:
            if item.alias == alias:
                return item
        raise TransformError(f"no from-item {alias!r} in block {self.name}")

    def output_columns(self) -> list[str]:
        columns: list[str] = []
        for item in self.select_items:
            if isinstance(item.expr, ast.Star):
                for from_item in self.from_items:
                    if item.expr.qualifier in (None, from_item.alias):
                        columns.extend(from_item.output_columns())
            else:
                columns.append(item.alias or _default_column_name(item.expr))
        return columns

    def select_expr_for(self, column: str) -> ast.Expr:
        """The select expression that produces output column *column*."""
        column = column.lower()
        for item in self.select_items:
            name = item.alias or _default_column_name(item.expr)
            if name == column:
                return item.expr
        raise TransformError(
            f"block {self.name} has no output column {column!r}"
        )

    # -- predicates and subqueries -----------------------------------------

    def all_conjuncts(self) -> list[ast.Expr]:
        result = list(self.where_conjuncts)
        result.extend(self.having_conjuncts)
        for item in self.from_items:
            result.extend(item.join_conjuncts)
        return result

    def subquery_exprs(self) -> list[ast.SubqueryExpr]:
        """SubqueryExpr nodes in WHERE/HAVING/join conjuncts and the select
        list (scalar subqueries), in deterministic order."""
        found: list[ast.SubqueryExpr] = []
        for conjunct in self.all_conjuncts():
            for node in conjunct.walk():
                if isinstance(node, ast.SubqueryExpr):
                    found.append(node)
        for item in self.select_items:
            for node in item.expr.walk():
                if isinstance(node, ast.SubqueryExpr):
                    found.append(node)
        return found

    def derived_from_items(self) -> list[FromItem]:
        return [item for item in self.from_items if item.is_derived]

    def iter_blocks(self) -> Iterator["QueryBlock"]:
        yield self
        for item in self.from_items:
            if item.is_derived:
                yield from item.subquery.iter_blocks()
        for sub in self.subquery_exprs():
            if isinstance(sub.query, QueryNode):
                yield from sub.query.iter_blocks()

    def bound_aliases_recursive(self) -> set[str]:
        """Aliases defined by this block and every nested block."""
        bound = set()
        for block in self.iter_blocks():
            if isinstance(block, QueryBlock):
                bound |= block.aliases()
        return bound

    def correlation_refs(self) -> list[ast.ColumnRef]:
        """Column references inside this subtree that are *not* bound by
        this block or any nested block — i.e. correlations to outer query
        blocks."""
        bound = self.bound_aliases_recursive()
        refs: list[ast.ColumnRef] = []

        def scan_block(block: QueryBlock) -> None:
            exprs: list[ast.Expr] = [item.expr for item in block.select_items]
            exprs.extend(block.all_conjuncts())
            exprs.extend(block.group_by)
            exprs.extend(o.expr for o in block.order_by)
            for expr in exprs:
                for node in expr.walk():
                    if isinstance(node, ast.ColumnRef) and node.qualifier \
                            and node.qualifier not in bound:
                        refs.append(node)

        for block in self.iter_blocks():
            if isinstance(block, QueryBlock):
                scan_block(block)
        return refs

    @property
    def is_correlated(self) -> bool:
        return bool(self.correlation_refs())

    # -- copying -------------------------------------------------------------

    def clone(self) -> "QueryBlock":
        return QueryBlock(
            name=self.name,
            select_items=[item.clone() for item in self.select_items],
            distinct=self.distinct,
            from_items=[item.clone() for item in self.from_items],
            where_conjuncts=[c.clone() for c in self.where_conjuncts],
            group_by=[g.clone() for g in self.group_by],
            grouping_sets=(
                [list(s) for s in self.grouping_sets]
                if self.grouping_sets is not None
                else None
            ),
            having_conjuncts=[h.clone() for h in self.having_conjuncts],
            order_by=[o.clone() for o in self.order_by],
            rownum_limit=self.rownum_limit,
        )

    def __repr__(self) -> str:
        return f"QueryBlock({self.name}, from={[i.alias for i in self.from_items]})"


class SetOpBlock(QueryNode):
    """UNION / UNION ALL / INTERSECT / MINUS over two or more branches.

    UNION ALL nodes are flattened to n-ary (join factorization iterates
    over all branches); the other operators stay binary.
    """

    def __init__(self, op: str, branches: list[QueryNode],
                 order_by: Optional[list[ast.OrderItem]] = None,
                 name: Optional[str] = None):
        if op not in ("UNION", "UNION ALL", "INTERSECT", "MINUS"):
            raise TransformError(f"unknown set operator {op!r}")
        self.op = op
        self.branches = branches
        self.order_by = order_by or []
        self.name = name or f"setop${next(QueryBlock._names)}"

    def output_columns(self) -> list[str]:
        return self.branches[0].output_columns()

    def iter_blocks(self) -> Iterator[QueryBlock]:
        for branch in self.branches:
            yield from branch.iter_blocks()

    def correlation_refs(self) -> list[ast.ColumnRef]:
        refs: list[ast.ColumnRef] = []
        for branch in self.branches:
            refs.extend(branch.correlation_refs())
        return refs

    @property
    def is_correlated(self) -> bool:
        return bool(self.correlation_refs())

    def clone(self) -> "SetOpBlock":
        return SetOpBlock(
            self.op,
            [b.clone() for b in self.branches],
            [o.clone() for o in self.order_by],
            name=self.name,
        )

    def __repr__(self) -> str:
        return f"SetOpBlock({self.op}, {len(self.branches)} branches)"


def _default_column_name(expr: ast.Expr) -> str:
    """Output column name for an un-aliased select expression."""
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    return "?column?"
