"""Build a semantic query tree from parser output.

Responsibilities:

* flatten ANSI join syntax into the block's from-item list (RIGHT joins
  are mirrored into LEFT; inner-join ON conditions become ordinary WHERE
  conjuncts);
* resolve every column reference to a from-item alias, climbing outer
  scopes for correlated subqueries;
* expand ``*`` select items into explicit column references;
* recursively build subquery bodies, replacing the parser statement inside
  each :class:`~repro.sql.ast.SubqueryExpr` with a built query node;
* extract Oracle ``ROWNUM < n`` predicates into the block's row limit;
* normalise predicates (NOT pushing, quantifier rewrites).
"""

from __future__ import annotations

from typing import Optional

from ..catalog.schema import Catalog
from ..errors import ResolutionError, UnsupportedError
from ..sql import ast
from . import exprutil
from .blocks import FromItem, QueryBlock, QueryNode, SetOpBlock


def build_query_tree(stmt: ast.Statement, catalog: Catalog) -> QueryNode:
    """Build and resolve the query tree for a parsed statement."""
    return _Builder(catalog).build_node(stmt, parent=None)


class _Scope:
    """Name-resolution scope: the from-items of one enclosing block."""

    def __init__(self, parent: Optional["_Scope"]):
        self.parent = parent
        self.items: dict[str, list[str]] = {}

    def add(self, alias: str, columns: list[str]) -> None:
        if alias in self.items:
            raise ResolutionError(f"duplicate alias {alias!r} in FROM clause")
        self.items[alias] = columns

    def resolve_unqualified(self, name: str) -> Optional[str]:
        """Return the alias that defines column *name*, searching this
        scope before outer scopes.  Raises on ambiguity within a scope."""
        matches = [
            alias for alias, columns in self.items.items() if name in columns
        ]
        if len(matches) > 1:
            raise ResolutionError(f"ambiguous column reference {name!r}")
        if matches:
            return matches[0]
        if self.parent is not None:
            return self.parent.resolve_unqualified(name)
        return None

    def knows_alias(self, alias: str) -> bool:
        if alias in self.items:
            return True
        return self.parent is not None and self.parent.knows_alias(alias)

    def columns_of(self, alias: str) -> Optional[list[str]]:
        if alias in self.items:
            return self.items[alias]
        if self.parent is not None:
            return self.parent.columns_of(alias)
        return None


class _Builder:
    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    # -- top level -----------------------------------------------------------

    def build_node(self, stmt: ast.Statement, parent: Optional[_Scope]) -> QueryNode:
        if isinstance(stmt, ast.SetOpStmt):
            return self._build_setop(stmt, parent)
        return self._build_select(stmt, parent)

    def _build_setop(self, stmt: ast.SetOpStmt, parent: Optional[_Scope]) -> SetOpBlock:
        branches: list[QueryNode] = []

        def collect(node: ast.Statement, op: str) -> None:
            # Flatten same-op UNION ALL chains into one n-ary node.
            if isinstance(node, ast.SetOpStmt) and node.op == op == "UNION ALL" \
                    and not node.order_by:
                collect(node.left, op)
                collect(node.right, op)
            else:
                branches.append(self.build_node(node, parent))

        if stmt.op == "UNION ALL":
            collect(stmt.left, stmt.op)
            collect(stmt.right, stmt.op)
        else:
            branches.append(self.build_node(stmt.left, parent))
            branches.append(self.build_node(stmt.right, parent))
        arity = len(branches[0].output_columns())
        for branch in branches[1:]:
            if len(branch.output_columns()) != arity:
                raise ResolutionError(
                    "set operation branches have different column counts"
                )
        order_by = [
            self._resolve_setop_order_item(o, branches[0]) for o in stmt.order_by
        ]
        return SetOpBlock(stmt.op, branches, order_by)

    def _resolve_setop_order_item(
        self, item: ast.OrderItem, first_branch: QueryNode
    ) -> ast.OrderItem:
        columns = first_branch.output_columns()
        if isinstance(item.expr, ast.Literal) and isinstance(item.expr.value, int):
            pos = item.expr.value
            if not 1 <= pos <= len(columns):
                raise ResolutionError(f"ORDER BY position {pos} out of range")
            return ast.OrderItem(ast.ColumnRef(None, columns[pos - 1]), item.descending)
        return item.clone()

    # -- SELECT blocks ---------------------------------------------------------

    def _build_select(self, stmt: ast.SelectStmt, parent: Optional[_Scope]) -> QueryBlock:
        block = QueryBlock()
        scope = _Scope(parent)
        extra_conjuncts: list[ast.Expr] = []
        for table_expr in stmt.from_items:
            self._add_table_expr(block, scope, table_expr, extra_conjuncts, parent)

        # WHERE: resolve, normalise, split into conjuncts, extract ROWNUM.
        conjuncts = list(extra_conjuncts)
        if stmt.where is not None:
            where = self._resolve_expr(stmt.where, scope, block)
            conjuncts.extend(ast.conjuncts_of(exprutil.normalize_predicate(where)))
        block.where_conjuncts, block.rownum_limit = _extract_rownum(conjuncts)

        # Select list with star expansion and alias assignment.
        block.distinct = stmt.distinct
        block.select_items = self._build_select_items(stmt.select_items, scope, block)

        block.group_by = [
            self._resolve_expr(e, scope, block, select_items=block.select_items)
            for e in stmt.group_by
        ]
        if stmt.grouping_sets is not None:
            # The engine rolls grouping columns up to NULL per set, which
            # requires each grouping expression to be a plain column.
            for expr in block.group_by:
                if not isinstance(expr, ast.ColumnRef):
                    raise UnsupportedError(
                        "ROLLUP/CUBE/GROUPING SETS support plain column "
                        "grouping expressions only"
                    )
            block.grouping_sets = [list(s) for s in stmt.grouping_sets]
        if stmt.having is not None:
            having = self._resolve_expr(stmt.having, scope, block,
                                        select_items=block.select_items)
            block.having_conjuncts = ast.conjuncts_of(
                exprutil.normalize_predicate(having)
            )
        block.order_by = [
            self._resolve_order_item(o, scope, block) for o in stmt.order_by
        ]
        return block

    def _add_table_expr(
        self,
        block: QueryBlock,
        scope: _Scope,
        table_expr: ast.TableExpr,
        extra_conjuncts: list[ast.Expr],
        parent: Optional[_Scope],
    ) -> None:
        if isinstance(table_expr, ast.TableName):
            table = self._catalog.table(table_expr.name)
            alias = table_expr.alias or table.name
            item = FromItem(alias, table.name, table=table)
            block.from_items.append(item)
            # Base tables expose the ROWID pseudo-column (group-by view
            # merging groups on it, as Q11 in the paper does).
            scope.add(alias, table.column_names + ["rowid"])
            return
        if isinstance(table_expr, ast.DerivedTable):
            node = self.build_node(table_expr.query, parent)
            alias = table_expr.alias or FromItem.fresh_alias("vw")
            item = FromItem(alias, node)
            block.from_items.append(item)
            scope.add(alias, node.output_columns())
            return
        if isinstance(table_expr, ast.JoinExpr):
            self._add_join_expr(block, scope, table_expr, extra_conjuncts, parent)
            return
        raise UnsupportedError(
            f"unsupported FROM element {type(table_expr).__name__}"
        )

    def _add_join_expr(
        self,
        block: QueryBlock,
        scope: _Scope,
        join: ast.JoinExpr,
        extra_conjuncts: list[ast.Expr],
        parent: Optional[_Scope],
    ) -> None:
        if join.kind == "FULL":
            raise UnsupportedError("FULL OUTER JOIN is not supported")
        if join.kind == "RIGHT":
            # Mirror into a LEFT join: swap operands.
            join = ast.JoinExpr(join.right, join.left, "LEFT", join.condition)

        self._add_table_expr(block, scope, join.left, extra_conjuncts, parent)
        before_aliases = {item.alias for item in block.from_items}
        self._add_table_expr(block, scope, join.right, extra_conjuncts, parent)
        new_items = [
            item for item in block.from_items if item.alias not in before_aliases
        ]
        if join.kind == "CROSS":
            return
        condition = self._resolve_expr(join.condition, scope, block)
        condition = exprutil.normalize_predicate(condition)
        on_conjuncts = ast.conjuncts_of(condition)
        if join.kind == "INNER":
            extra_conjuncts.extend(on_conjuncts)
            return
        # LEFT join: the entire right operand becomes the null-supplying
        # side.  We only support a single from-item on the right (a table
        # or derived table), which covers the paper's query classes.
        if len(new_items) != 1:
            raise UnsupportedError(
                "outer join with a compound right operand is not supported; "
                "wrap it in an inline view"
            )
        right_item = new_items[0]
        right_item.join_type = "LEFT"
        right_item.join_conjuncts = on_conjuncts

    # -- select list ----------------------------------------------------------

    def _build_select_items(
        self,
        items: list[ast.SelectItem],
        scope: _Scope,
        block: QueryBlock,
    ) -> list[ast.SelectItem]:
        result: list[ast.SelectItem] = []
        used_names: set[str] = set()
        for item in items:
            if isinstance(item.expr, ast.Star):
                for from_item in block.from_items:
                    if item.expr.qualifier not in (None, from_item.alias):
                        continue
                    for column in from_item.output_columns():
                        result.append(
                            ast.SelectItem(
                                ast.ColumnRef(from_item.alias, column),
                                _unique_name(column, used_names),
                            )
                        )
                if item.expr.qualifier and not any(
                    f.alias == item.expr.qualifier for f in block.from_items
                ):
                    raise ResolutionError(
                        f"unknown alias {item.expr.qualifier!r} in select list"
                    )
                continue
            expr = self._resolve_expr(item.expr, scope, block)
            name = item.alias or _derived_name(expr, len(result))
            result.append(ast.SelectItem(expr, _unique_name(name, used_names)))
        return result

    def _resolve_order_item(
        self, item: ast.OrderItem, scope: _Scope, block: QueryBlock
    ) -> ast.OrderItem:
        if isinstance(item.expr, ast.Literal) and isinstance(item.expr.value, int):
            pos = item.expr.value
            if not 1 <= pos <= len(block.select_items):
                raise ResolutionError(f"ORDER BY position {pos} out of range")
            return ast.OrderItem(
                block.select_items[pos - 1].expr.clone(), item.descending
            )
        expr = self._resolve_expr(
            item.expr, scope, block, select_items=block.select_items
        )
        return ast.OrderItem(expr, item.descending)

    # -- expression resolution -------------------------------------------------

    def _resolve_expr(
        self,
        expr: ast.Expr,
        scope: _Scope,
        block: QueryBlock,
        select_items: Optional[list[ast.SelectItem]] = None,
    ) -> ast.Expr:
        def replace(node: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(node, ast.ColumnRef):
                return self._resolve_column(node, scope, select_items)
            if isinstance(node, ast.SubqueryExpr) and not isinstance(
                node.query, QueryNode
            ):
                built = self.build_node(node.query, scope)
                self._check_subquery_arity(node, built)
                return ast.SubqueryExpr(
                    node.kind,
                    built,
                    node.left.clone() if node.left is not None else None,
                    node.op,
                    node.quantifier,
                    node.negated,
                )
            return None

        return exprutil.map_expr(expr, replace)

    def _check_subquery_arity(self, node: ast.SubqueryExpr, built: QueryNode) -> None:
        arity = len(built.output_columns())
        if node.kind in ("IN", "QUANTIFIED"):
            left_arity = (
                len(node.left.items) if isinstance(node.left, ast.RowExpr) else 1
            )
            if arity != left_arity:
                raise ResolutionError(
                    f"subquery returns {arity} columns, expected {left_arity}"
                )
        elif node.kind == "SCALAR" and arity != 1:
            raise ResolutionError("scalar subquery must return one column")

    def _resolve_column(
        self,
        ref: ast.ColumnRef,
        scope: _Scope,
        select_items: Optional[list[ast.SelectItem]],
    ) -> Optional[ast.Expr]:
        if ref.qualifier is not None:
            columns = scope.columns_of(ref.qualifier)
            if columns is None:
                raise ResolutionError(f"unknown alias {ref.qualifier!r}")
            if ref.name not in columns:
                raise ResolutionError(
                    f"no column {ref.name!r} in {ref.qualifier!r}"
                )
            return None
        if ref.name == "rownum":
            return _RownumRef()
        alias = scope.resolve_unqualified(ref.name)
        if alias is not None:
            return ast.ColumnRef(alias, ref.name)
        # GROUP BY / HAVING / ORDER BY may reference select aliases.
        if select_items is not None:
            for item in select_items:
                if item.alias == ref.name:
                    return item.expr.clone()
        raise ResolutionError(f"cannot resolve column {ref.name!r}")


class _RownumRef(ast.ColumnRef):
    """Marker for a resolved ROWNUM pseudo-column reference."""

    def __init__(self) -> None:
        super().__init__(None, "rownum")

    def clone(self) -> "_RownumRef":
        return _RownumRef()


def _extract_rownum(conjuncts: list[ast.Expr]) -> tuple[list[ast.Expr], Optional[int]]:
    """Pull ``ROWNUM < n`` / ``ROWNUM <= n`` out of the conjunct list and
    return the remaining conjuncts plus the row limit."""
    remaining: list[ast.Expr] = []
    limit: Optional[int] = None
    for conjunct in conjuncts:
        bound = _rownum_bound(conjunct)
        if bound is None:
            if any(isinstance(n, _RownumRef) for n in conjunct.walk()):
                raise UnsupportedError(
                    "ROWNUM is only supported as 'ROWNUM < n' or 'ROWNUM <= n'"
                )
            remaining.append(conjunct)
        else:
            limit = bound if limit is None else min(limit, bound)
    return remaining, limit


def _rownum_bound(conjunct: ast.Expr) -> Optional[int]:
    if not isinstance(conjunct, ast.BinOp):
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op
    if isinstance(right, _RownumRef) and isinstance(left, ast.Literal):
        left, right = right, left
        op = ast.MIRRORED_COMPARISON[op]
    if not (isinstance(left, _RownumRef) and isinstance(right, ast.Literal)):
        return None
    if not isinstance(right.value, int):
        return None
    if op == "<":
        return max(0, right.value - 1)
    if op == "<=":
        return max(0, right.value)
    if op == "=" and right.value == 1:
        return 1
    return None


def _derived_name(expr: ast.Expr, position: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    return f"col_{position + 1}"


def _unique_name(name: str, used: set[str]) -> str:
    candidate = name
    suffix = 1
    while candidate in used:
        suffix += 1
        candidate = f"{name}_{suffix}"
    used.add(candidate)
    return candidate
