"""Render query-tree nodes back to SQL text.

The output is the "transformed query" display the paper uses (Q10, Q11,
Q13, ...).  Blocks containing only inner joins produce standard SQL that
re-parses; semijoin and antijoin from-items — which have no standard SQL
spelling — are rendered with the paper's non-standard notation
(``T1.c S= T2.c`` for semijoin, ``A=`` for antijoin, ``NA=`` for the
null-aware variant, ``(+)`` suffix for outer-join conjuncts), clearly
display-only.

The rendered text doubles as the block's *structural signature* for cost
annotation reuse (§3.4.2): two sub-trees that render identically are
semantically identical and may share cost annotations.
"""

from __future__ import annotations

from ..errors import UnsupportedError
from ..sql import ast
from ..sql.render import render_expr
from .blocks import FromItem, QueryBlock, QueryNode, SetOpBlock


def node_to_sql(node: QueryNode) -> str:
    if isinstance(node, QueryBlock):
        return _block_to_sql(node)
    if isinstance(node, SetOpBlock):
        parts = [node_to_sql(b) for b in node.branches]
        sep = f" {node.op} "
        text = sep.join(
            f"({p})" if isinstance(b, SetOpBlock) else p
            for p, b in zip(parts, node.branches)
        )
        if node.order_by:
            text += " ORDER BY " + _order_to_sql(node.order_by)
        return text
    raise UnsupportedError(f"cannot render node {type(node).__name__}")


def signature(node: QueryNode) -> str:
    """Stable structural signature for cost-annotation reuse."""
    return node_to_sql(node)


def _block_to_sql(block: QueryBlock) -> str:
    parts = ["SELECT"]
    if block.distinct:
        parts.append("DISTINCT")
    select = ", ".join(
        render_expr(item.expr)
        + (f" AS {item.alias}" if item.alias and _needs_alias(item) else "")
        for item in block.select_items
    )
    parts.append(select)
    parts.append("FROM")
    parts.append(", ".join(_from_item_to_sql(item) for item in block.from_items))

    conjuncts = [render_expr(c) for c in block.where_conjuncts]
    for item in block.from_items:
        conjuncts.extend(_join_conjuncts_to_sql(item))
    if block.rownum_limit is not None:
        conjuncts.append(f"ROWNUM <= {block.rownum_limit}")
    if conjuncts:
        parts.append("WHERE " + " AND ".join(conjuncts))
    if block.grouping_sets is not None:
        sets = ", ".join(
            "(" + ", ".join(render_expr(block.group_by[i]) for i in s) + ")"
            for s in block.grouping_sets
        )
        parts.append(f"GROUP BY GROUPING SETS ({sets})")
    elif block.group_by:
        parts.append("GROUP BY " + ", ".join(render_expr(g) for g in block.group_by))
    if block.having_conjuncts:
        parts.append(
            "HAVING " + " AND ".join(render_expr(h) for h in block.having_conjuncts)
        )
    if block.order_by:
        parts.append("ORDER BY " + _order_to_sql(block.order_by))
    return " ".join(parts)


def _needs_alias(item: ast.SelectItem) -> bool:
    return not (
        isinstance(item.expr, ast.ColumnRef) and item.expr.name == item.alias
    )


def _from_item_to_sql(item: FromItem) -> str:
    if item.is_base_table:
        if item.alias != item.table_name:
            return f"{item.table_name} {item.alias}"
        return item.table_name
    return f"({node_to_sql(item.subquery)}) {item.alias}"


_JOIN_MARKERS = {"SEMI": "S=", "ANTI": "A=", "ANTI_NA": "NA="}


def _join_conjuncts_to_sql(item: FromItem) -> list[str]:
    """Render a non-inner from-item's ON conjuncts in the WHERE clause
    using the paper's notation."""
    if item.join_type == "INNER":
        return []
    rendered: list[str] = []
    for conjunct in item.join_conjuncts:
        text = render_expr(conjunct)
        if item.join_type == "LEFT":
            rendered.append(f"{text} (+{item.alias})")
        else:
            marker = _JOIN_MARKERS[item.join_type]
            if (
                isinstance(conjunct, ast.BinOp)
                and conjunct.op == "="
                and isinstance(conjunct.right, ast.ColumnRef)
                and conjunct.right.qualifier == item.alias
            ):
                rendered.append(
                    f"{render_expr(conjunct.left)} {marker} "
                    f"{render_expr(conjunct.right)}"
                )
            else:
                rendered.append(f"{marker}[{text}]")
    return rendered or [f"{_JOIN_MARKERS.get(item.join_type, '(+)')}[{item.alias}: TRUE]"]


def _order_to_sql(order_by: list[ast.OrderItem]) -> str:
    return ", ".join(
        render_expr(o.expr) + (" DESC" if o.descending else "") for o in order_by
    )
