"""Expression rewriting utilities used by transformations.

All rewriters return new trees (inputs are never mutated) so that a
failed transformation attempt on a deep copy cannot corrupt the original
query tree.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sql import ast


def map_expr(expr: ast.Expr, fn: Callable[[ast.Expr], Optional[ast.Expr]]) -> ast.Expr:
    """Rebuild *expr* bottom-up, replacing any node for which *fn* returns
    a non-None expression.  ``fn`` sees each (already rebuilt) node; it is
    not applied to subquery bodies."""
    rebuilt = _rebuild_children(expr, fn)
    replacement = fn(rebuilt)
    return replacement if replacement is not None else rebuilt


def _rebuild_children(expr: ast.Expr, fn) -> ast.Expr:
    if isinstance(expr, (ast.ColumnRef, ast.Literal, ast.Star)):
        return expr.clone()
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(expr.op, map_expr(expr.left, fn), map_expr(expr.right, fn))
    if isinstance(expr, ast.And):
        return ast.And([map_expr(op, fn) for op in expr.operands])
    if isinstance(expr, ast.Or):
        return ast.Or([map_expr(op, fn) for op in expr.operands])
    if isinstance(expr, ast.Not):
        return ast.Not(map_expr(expr.operand, fn))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(map_expr(expr.operand, fn), expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(
            map_expr(expr.operand, fn),
            map_expr(expr.low, fn),
            map_expr(expr.high, fn),
            expr.negated,
        )
    if isinstance(expr, ast.Like):
        return ast.Like(
            map_expr(expr.operand, fn), map_expr(expr.pattern, fn), expr.negated
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            map_expr(expr.operand, fn),
            [map_expr(item, fn) for item in expr.items],
            expr.negated,
        )
    if isinstance(expr, ast.RowExpr):
        return ast.RowExpr([map_expr(item, fn) for item in expr.items])
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name, [map_expr(arg, fn) for arg in expr.args], expr.distinct
        )
    if isinstance(expr, ast.WindowFunc):
        return ast.WindowFunc(
            map_expr(expr.func, fn),
            [map_expr(e, fn) for e in expr.partition_by],
            [ast.OrderItem(map_expr(o.expr, fn), o.descending) for o in expr.order_by],
            expr.frame.clone() if expr.frame else None,
        )
    if isinstance(expr, ast.Case):
        return ast.Case(
            [(map_expr(c, fn), map_expr(r, fn)) for c, r in expr.whens],
            map_expr(expr.default, fn) if expr.default is not None else None,
        )
    if isinstance(expr, ast.SubqueryExpr):
        query = expr.query.clone() if hasattr(expr.query, "clone") else expr.query
        return ast.SubqueryExpr(
            expr.kind,
            query,
            map_expr(expr.left, fn) if expr.left is not None else None,
            expr.op,
            expr.quantifier,
            expr.negated,
        )
    return expr.clone()


def substitute_columns(
    expr: ast.Expr, mapping: dict[tuple[str, str], ast.Expr]
) -> ast.Expr:
    """Replace ColumnRefs by expressions, keyed by (qualifier, name).

    This is the core of view merging: references to the view's output
    columns are replaced by the view's select expressions.
    """

    def replace(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.ColumnRef) and node.qualifier:
            target = mapping.get((node.qualifier, node.name))
            if target is not None:
                return target.clone()
        return None

    return map_expr(expr, replace)


def rename_qualifiers(expr: ast.Expr, mapping: dict[str, str]) -> ast.Expr:
    """Rewrite alias qualifiers per *mapping*; also descends into
    subquery bodies so correlated references are renamed too."""

    def replace(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.ColumnRef) and node.qualifier in mapping:
            return ast.ColumnRef(mapping[node.qualifier], node.name)
        if isinstance(node, ast.SubqueryExpr) and hasattr(node.query, "iter_blocks"):
            rename_qualifiers_in_node(node.query, mapping)
        return None

    return map_expr(expr, replace)


def rename_qualifiers_in_node(node, mapping: dict[str, str]) -> None:
    """In-place alias rename across a query-tree node (used after a clone;
    never on shared trees)."""
    from .blocks import QueryBlock

    for block in node.iter_blocks():
        if not isinstance(block, QueryBlock):
            continue
        block.select_items = [
            ast.SelectItem(rename_qualifiers(i.expr, mapping), i.alias)
            for i in block.select_items
        ]
        block.where_conjuncts = [
            rename_qualifiers(c, mapping) for c in block.where_conjuncts
        ]
        block.having_conjuncts = [
            rename_qualifiers(c, mapping) for c in block.having_conjuncts
        ]
        block.group_by = [rename_qualifiers(g, mapping) for g in block.group_by]
        block.order_by = [
            ast.OrderItem(rename_qualifiers(o.expr, mapping), o.descending)
            for o in block.order_by
        ]
        for item in block.from_items:
            item.join_conjuncts = [
                rename_qualifiers(c, mapping) for c in item.join_conjuncts
            ]


def substitute_columns_in_node(node, mapping: dict[tuple[str, str], ast.Expr]) -> None:
    """In-place column substitution across a query-tree node, descending
    into nested blocks (their correlated references to the substituted
    view must be rewritten too)."""
    from .blocks import QueryBlock

    for block in node.iter_blocks():
        if not isinstance(block, QueryBlock):
            continue
        block.select_items = [
            ast.SelectItem(substitute_columns(i.expr, mapping), i.alias)
            for i in block.select_items
        ]
        block.where_conjuncts = [
            substitute_columns(c, mapping) for c in block.where_conjuncts
        ]
        block.having_conjuncts = [
            substitute_columns(c, mapping) for c in block.having_conjuncts
        ]
        block.group_by = [substitute_columns(g, mapping) for g in block.group_by]
        block.order_by = [
            ast.OrderItem(substitute_columns(o.expr, mapping), o.descending)
            for o in block.order_by
        ]
        for item in block.from_items:
            item.join_conjuncts = [
                substitute_columns(c, mapping) for c in item.join_conjuncts
            ]


def aliases_referenced(expr: ast.Expr) -> set[str]:
    """Alias qualifiers referenced by *expr*, including inside subquery
    bodies (their correlation references)."""
    result: set[str] = set()
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef) and node.qualifier:
            result.add(node.qualifier)
        if isinstance(node, ast.SubqueryExpr) and hasattr(node.query, "iter_blocks"):
            result |= {ref.qualifier for ref in node.query.correlation_refs()
                       if ref.qualifier}
    return result


def single_alias_of(expr: ast.Expr) -> Optional[str]:
    """If *expr* references exactly one alias, return it; else None."""
    refs = aliases_referenced(expr)
    if len(refs) == 1:
        return next(iter(refs))
    return None


def equality_columns(conjunct: ast.Expr) -> Optional[tuple[ast.ColumnRef, ast.ColumnRef]]:
    """If *conjunct* is ``col = col`` between two different aliases,
    return the pair; else None."""
    if (
        isinstance(conjunct, ast.BinOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
        and conjunct.left.qualifier != conjunct.right.qualifier
    ):
        return conjunct.left, conjunct.right
    return None


def normalize_predicate(expr: ast.Expr) -> ast.Expr:
    """Canonicalise a predicate: flatten AND/OR, push NOT inward where a
    simple complement exists, fold ``NOT NOT``, and normalise quantified
    subqueries (``= ANY`` to IN, ``<> ALL`` to NOT IN)."""
    expr = _push_not(expr, negate=False)
    return expr


def _push_not(expr: ast.Expr, negate: bool) -> ast.Expr:
    if isinstance(expr, ast.Not):
        return _push_not(expr.operand, not negate)
    if isinstance(expr, ast.And):
        operands = [_push_not(op, negate) for op in expr.operands]
        node: ast.Expr = ast.Or(operands) if negate else ast.And(operands)
        return _flatten_bool(node)
    if isinstance(expr, ast.Or):
        operands = [_push_not(op, negate) for op in expr.operands]
        node = ast.And(operands) if negate else ast.Or(operands)
        return _flatten_bool(node)
    if isinstance(expr, ast.BinOp) and expr.is_comparison and negate:
        return ast.BinOp(
            ast.NEGATED_COMPARISON[expr.op],
            _normalize_sub(expr.left),
            _normalize_sub(expr.right),
        )
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_normalize_sub(expr.operand),
                          expr.negated != negate)
    if isinstance(expr, ast.SubqueryExpr):
        return _normalize_subquery(expr, negate)
    if isinstance(expr, (ast.InList, ast.Between, ast.Like)) and negate:
        clone = expr.clone()
        clone.negated = not clone.negated
        return clone
    if negate:
        return ast.Not(_normalize_sub(expr))
    return _normalize_sub(expr)


def _flatten_bool(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.And):
        flat: list[ast.Expr] = []
        for op in expr.operands:
            if isinstance(op, ast.And):
                flat.extend(op.operands)
            else:
                flat.append(op)
        return flat[0] if len(flat) == 1 else ast.And(flat)
    if isinstance(expr, ast.Or):
        flat = []
        for op in expr.operands:
            if isinstance(op, ast.Or):
                flat.extend(op.operands)
            else:
                flat.append(op)
        return flat[0] if len(flat) == 1 else ast.Or(flat)
    return expr


def _normalize_sub(expr: ast.Expr) -> ast.Expr:
    """Normalise subquery expressions nested inside a scalar expression."""

    def replace(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.SubqueryExpr):
            return _normalize_subquery(node, negate=False)
        return None

    return map_expr(expr, replace)


def _normalize_subquery(expr: ast.SubqueryExpr, negate: bool) -> ast.SubqueryExpr:
    kind = expr.kind
    op = expr.op
    quantifier = expr.quantifier
    negated = expr.negated != negate
    left = expr.left.clone() if expr.left is not None else None
    query = expr.query.clone() if hasattr(expr.query, "clone") else expr.query
    if kind == "QUANTIFIED":
        if op == "=" and quantifier == "ANY":
            return ast.SubqueryExpr("IN", query, left=left, negated=negated)
        if op == "<>" and quantifier == "ALL":
            return ast.SubqueryExpr("IN", query, left=left, negated=not negated)
        if negate:
            # NOT (x < ANY q) == x >= ALL q; NOT (x < ALL q) == x >= ANY q
            flipped = ast.NEGATED_COMPARISON[op]
            other = "ALL" if quantifier == "ANY" else "ANY"
            return ast.SubqueryExpr(
                "QUANTIFIED", query, left=left, op=flipped, quantifier=other
            )
    return ast.SubqueryExpr(kind, query, left=left, op=op,
                            quantifier=quantifier, negated=negated)
