"""Bind-variable utilities over query trees.

Bind placeholders survive parsing as :class:`~repro.sql.ast.BindParam`
nodes and stay in the tree (and the physical plan) through optimization,
so one cached plan serves any bind values.  The helpers here support the
service layer's bind peeking (Oracle-style: the optimizer estimates
selectivities from the first execution's values) and plan-cache
dependency tracking.
"""

from __future__ import annotations

from typing import Iterator

from ..sql import ast
from .blocks import QueryBlock, QueryNode


def iter_exprs(tree: QueryNode) -> Iterator[ast.Expr]:
    """Yield every top-level expression in every block of *tree*:
    select items, WHERE/HAVING/join conjuncts, group-by and order-by
    expressions.  Subquery bodies are covered because ``iter_blocks``
    yields their blocks too."""
    for block in tree.iter_blocks():
        if not isinstance(block, QueryBlock):
            continue
        for item in block.select_items:
            yield item.expr
        yield from block.all_conjuncts()
        yield from block.group_by
        for order in block.order_by:
            yield order.expr


def bind_params(tree: QueryNode) -> list[ast.BindParam]:
    """Every BindParam node in *tree*, in deterministic order."""
    found: list[ast.BindParam] = []
    for expr in iter_exprs(tree):
        for node in expr.walk():
            if isinstance(node, ast.BindParam):
                found.append(node)
    return found


def bind_keys(tree: QueryNode) -> set[str]:
    """The set of bind keys *tree* requires values for."""
    return {param.key for param in bind_params(tree)}


def apply_peeks(tree: QueryNode, binds: dict) -> None:
    """Record *binds* as peeked values on every BindParam in *tree*.

    Keys absent from *binds* are left unpeeked; selectivity estimation
    then falls back to default constants for those predicates."""
    for param in bind_params(tree):
        if param.key in binds:
            param.peeked = binds[param.key]


def has_peeked_binds(tree: QueryNode) -> bool:
    """True when any BindParam in *tree* carries a peeked value.

    Peeked values steer selectivity estimation but are *not* part of the
    structural signature, so cross-statement plan reuse (the subplan
    memo) must be disabled for peeked statements."""
    return any(param.has_peek for param in bind_params(tree))


def clear_peeks(tree: QueryNode) -> None:
    """Remove peeked values from every BindParam in *tree*."""
    for param in bind_params(tree):
        param.peeked = ast.NO_PEEK


def referenced_tables(tree: QueryNode) -> set[str]:
    """Base-table names referenced anywhere in *tree* (plan-cache
    dependency set)."""
    tables: set[str] = set()
    for block in tree.iter_blocks():
        if isinstance(block, QueryBlock):
            for item in block.from_items:
                if item.is_base_table:
                    tables.add(item.table_name.lower())
    return tables
