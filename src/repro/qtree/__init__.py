"""Query-tree intermediate representation (declarative query blocks)."""

from .blocks import FromItem, QueryBlock, QueryNode, SetOpBlock
from .builder import build_query_tree
from .sqlgen import node_to_sql, signature

__all__ = [
    "FromItem",
    "QueryBlock",
    "QueryNode",
    "SetOpBlock",
    "build_query_tree",
    "node_to_sql",
    "signature",
]
