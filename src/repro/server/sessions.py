"""Server-side session state: prepared statements, open cursors, and
the per-session statement queue.

A :class:`ServerSession` is the server's unit of isolation and
fairness:

* each session's statements run **in order** — the drain loop claims at
  most one worker per session at a time, so a session can never starve
  the pool by itself, and a statement sees every effect of the ones the
  same session submitted before it;
* prepared statements and open fetch cursors are session-scoped; they
  disappear with the session (disconnect or idle reap);
* the session records its in-flight statement's
  :class:`~repro.resilience.CancelToken` so a concurrent HTTP request
  can cancel it.

:class:`SessionRegistry` owns the id → session map behind a lock; every
lookup refreshes the session's idle clock, and the reaper scans for
sessions past the idle timeout with no pending work.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Optional

from ..errors import SessionNotFound
from ..resilience import CancelToken
from ..service import PreparedStatement, Session

#: process-wide id streams; uuid-free so test output stays deterministic
_session_ids = itertools.count(1)
_statement_ids = itertools.count(1)
_cursor_ids = itertools.count(1)


class WorkItem:
    """One admitted statement waiting for (or occupying) a worker."""

    __slots__ = ("fn", "token", "future", "deadline")

    def __init__(
        self,
        fn: Callable[[CancelToken], dict],
        token: CancelToken,
        future: "Future[dict]",
        deadline: Optional[float],
    ) -> None:
        #: callable(token) -> JSON-able payload, run on the worker
        self.fn = fn
        self.token = token
        self.future = future
        #: monotonic-clock instant after which the statement is dead
        self.deadline = deadline


class Cursor:
    """Server-side fetch state: the materialised rows of one executed
    statement, consumed in pages."""

    __slots__ = ("id", "columns", "rows", "position")

    def __init__(self, columns: list, rows: list) -> None:
        self.id = f"c{next(_cursor_ids)}"
        self.columns = columns
        self.rows = rows
        self.position = 0

    def fetch(self, n: int) -> tuple[list, bool]:
        """Next *n* rows plus whether more remain."""
        page = self.rows[self.position:self.position + n]
        self.position += len(page)
        return page, self.position < len(self.rows)


class ServerSession:
    """One connected client's server-side state."""

    def __init__(self, session: Session,
                 statement_timeout: Optional[float] = None) -> None:
        self.id = f"s{next(_session_ids)}"
        #: the service-layer session (shared plan cache underneath)
        self.session = session
        #: session-default statement timeout (request may override)
        self.statement_timeout = statement_timeout
        self.statements: dict[str, PreparedStatement] = {}
        self.cursors: dict[str, Cursor] = {}
        #: guards queue / draining / active_token / cursors / statements
        self.lock = threading.Lock()
        self.queue: deque[WorkItem] = deque()
        #: True while a drain loop owns a worker on this session's behalf
        self.draining = False
        #: token of the statement currently executing (cancel target)
        self.active_token: Optional[CancelToken] = None
        self.last_used = time.monotonic()
        self.closed = False
        self.statements_executed = 0

    def touch(self) -> None:
        self.last_used = time.monotonic()

    def pending(self) -> int:
        """Statements admitted and not yet finished (caller holds lock)."""
        return len(self.queue) + (1 if self.draining else 0)  # staticcheck: ignore[lock.discipline] documented caller-holds-lock helper

    def register_statement(self, prepared: PreparedStatement) -> str:
        statement_id = f"q{next(_statement_ids)}"
        with self.lock:
            self.statements[statement_id] = prepared
        return statement_id

    def statement(self, statement_id: str) -> PreparedStatement:
        with self.lock:
            prepared = self.statements.get(statement_id)
        if prepared is None:
            raise SessionNotFound(
                f"no prepared statement {statement_id!r} in session {self.id}"
            )
        return prepared

    def register_cursor(self, cursor: Cursor) -> None:
        with self.lock:
            self.cursors[cursor.id] = cursor

    def cursor(self, cursor_id: str) -> Cursor:
        with self.lock:
            cursor = self.cursors.get(cursor_id)
        if cursor is None:
            raise SessionNotFound(
                f"no open cursor {cursor_id!r} in session {self.id}"
            )
        return cursor

    def close_cursor(self, cursor_id: str) -> None:
        with self.lock:
            self.cursors.pop(cursor_id, None)


class SessionRegistry:
    """Thread-safe id → :class:`ServerSession` map with idle reaping."""

    def __init__(self, idle_timeout: float) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[str, ServerSession] = {}
        self.idle_timeout = idle_timeout
        self._reaped_total = 0

    @property
    def reaped_total(self) -> int:
        with self._lock:
            return self._reaped_total

    def add(self, session: ServerSession) -> None:
        with self._lock:
            self._sessions[session.id] = session

    def get(self, session_id: str) -> ServerSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionNotFound(f"no session {session_id!r}")
        with session.lock:
            closed = session.closed
        if closed:
            raise SessionNotFound(f"no session {session_id!r}")
        session.touch()
        return session

    def remove(self, session_id: str) -> Optional[ServerSession]:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is not None:
            # under session.lock: the drain loop checks `closed` while
            # holding it, and must never observe a half-removed session
            with session.lock:
                session.closed = True
        return session

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def reap_idle(self, now: Optional[float] = None) -> list[str]:
        """Drop sessions idle past the timeout with no pending work.

        A session mid-statement (or with a queued backlog) is never
        reaped, however stale its clock — the reap would orphan running
        work; its clock refreshes when the statement finishes anyway."""
        now = time.monotonic() if now is None else now
        with self._lock:
            candidates = list(self._sessions.values())
        reaped = []
        for session in candidates:
            if now - session.last_used < self.idle_timeout:
                continue
            with session.lock:
                if session.pending():
                    continue
                session.closed = True
            reaped.append(session.id)
        with self._lock:
            for session_id in reaped:
                self._sessions.pop(session_id, None)
            self._reaped_total += len(reaped)
        return reaped
