"""Concurrent multi-session query-serving front end.

Turns the embedded engine into a small server: an HTTP/JSON protocol
(stdlib ``ThreadingHTTPServer``) over a transport-independent app core,
with per-connection sessions, prepared statements and paged fetch,
snapshot reads (statement-level read consistency over the storage
layer's copy-on-write table versions), and admission control in front
of a bounded worker pool.  ``python -m repro serve`` is the CLI entry
point; see DESIGN.md §13 for the architecture.
"""

from __future__ import annotations

from .admission import AdmissionController, ServerConfig
from .app import ReproServer
from .http import ReproHTTPServer, make_http_server, run_server, serve
from .sessions import ServerSession, SessionRegistry

__all__ = [
    "AdmissionController",
    "ReproHTTPServer",
    "ReproServer",
    "ServerConfig",
    "ServerSession",
    "SessionRegistry",
    "make_http_server",
    "run_server",
    "serve",
]
