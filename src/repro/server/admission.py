"""Admission control for the query-serving front end.

The server multiplexes every session's statements over one bounded
worker pool; without admission control a burst of clients turns into an
unbounded backlog where every statement times out.  The controller
enforces two limits *before* work is enqueued:

* a **global** cap on pending statements (running + queued) of
  ``workers + max_queue_depth`` — beyond it new statements are refused
  with :class:`~repro.errors.AdmissionRejected` (HTTP 429) so clients
  back off instead of piling up;
* a **per-session** queue-depth cap, so one chatty session cannot
  monopolise the global queue.

A third limit applies at dequeue time: a statement whose deadline burned
while it sat in the queue fails with
:class:`~repro.errors.StatementTimeout` (HTTP 408) without ever touching
the optimizer — its deadline would have fired mid-parse anyway, and the
worker slot is better spent on a statement that can still finish.

Layering with the optimizer's own :class:`~repro.resilience.SearchGovernor`:
admission bounds *how many* statements are in flight; the governor (fed
the same per-request deadline through the statement's
:class:`~repro.resilience.CancelToken`) bounds how long each admitted
statement may optimize.  Together they keep tail latency bounded from
both ends.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..errors import AdmissionRejected


@dataclass
class ServerConfig:
    """Knobs of the serving front end."""

    host: str = "127.0.0.1"
    port: int = 8390
    #: worker threads executing statements (all sessions multiplexed)
    workers: int = 4
    #: admitted-but-not-running statements allowed beyond the workers
    max_queue_depth: int = 32
    #: pending statements allowed per session (running + queued)
    session_queue_depth: int = 8
    #: seconds of inactivity before a session is reaped
    idle_timeout: float = 300.0
    #: how often the reaper thread scans for idle sessions
    reap_interval: float = 5.0
    #: default per-statement wall-clock timeout (None = unbounded);
    #: requests may override per call, sessions per connect
    statement_timeout: Optional[float] = None
    #: graceful-shutdown drain window: in-flight statements get this many
    #: seconds to finish before they are cancelled (new statements are
    #: refused with 503 :class:`~repro.errors.ServerShuttingDown` the
    #: moment shutdown starts)
    shutdown_grace: float = 5.0

    @property
    def max_pending(self) -> int:
        """Global cap on running + queued statements."""
        return self.workers + self.max_queue_depth


class AdmissionController:
    """Thread-safe pending-statement accounting with refusal limits.

    ``admit()`` reserves a pending slot or raises; every reservation is
    paired with exactly one ``finish()`` (the server's drain loop calls
    it in a ``finally``), so a statement that fails, times out, or is
    cancelled can never leak its slot."""

    def __init__(self, config: ServerConfig) -> None:
        self._config = config
        self._lock = threading.Lock()
        #: statements admitted and not yet finished (queued + running)
        self.pending = 0
        #: statements currently occupying a worker
        self.running = 0
        self.admitted_total = 0
        self.rejected_global = 0
        self.rejected_session = 0
        #: admitted statements whose deadline burned in the queue
        self.queue_timeouts = 0

    def admit(self, session_pending: int) -> None:
        """Reserve a pending slot; *session_pending* is the admitting
        session's current backlog (running + queued)."""
        with self._lock:
            if self.pending >= self._config.max_pending:
                self.rejected_global += 1
                raise AdmissionRejected(
                    f"server saturated: {self.pending} statements pending "
                    f"(limit {self._config.max_pending}); retry later"
                )
            if session_pending >= self._config.session_queue_depth:
                self.rejected_session += 1
                raise AdmissionRejected(
                    f"session queue full: {session_pending} statements "
                    f"pending (limit {self._config.session_queue_depth})"
                )
            self.pending += 1
            self.admitted_total += 1

    def start(self) -> None:
        """An admitted statement began occupying a worker."""
        with self._lock:
            self.running += 1

    def finish(self, was_running: bool = True) -> None:
        """An admitted statement left the system (done, failed,
        cancelled, or expired in the queue)."""
        with self._lock:
            self.pending -= 1
            if was_running:
                self.running -= 1

    def record_queue_timeout(self) -> None:
        with self._lock:
            self.queue_timeouts += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "pending": self.pending,
                "running": self.running,
                "max_pending": self._config.max_pending,
                "admitted_total": self.admitted_total,
                "rejected_global": self.rejected_global,
                "rejected_session": self.rejected_session,
                "queue_timeouts": self.queue_timeouts,
            }
