"""The multi-session query-serving application.

:class:`ReproServer` is the transport-independent core of the server:
the HTTP layer (:mod:`repro.server.http`) and tests call its methods
directly with plain dict/list payloads.  It owns

* one :class:`~repro.database.Database` + shared
  :class:`~repro.service.QueryService` (all sessions share the plan
  cache — two clients preparing the same text share one cursor);
* the :class:`~repro.server.sessions.SessionRegistry` plus an idle
  reaper thread;
* a bounded ``ThreadPoolExecutor`` the per-session statement queues
  drain into, behind the
  :class:`~repro.server.admission.AdmissionController`.

Concurrency model
-----------------

Every statement is admitted (or refused with 429 semantics), appended
to its session's FIFO queue, and executed by the worker pool; a session
occupies at most one worker at a time, so sessions progress fairly and
a session's statements are totally ordered.  The submitting thread
blocks on the statement's future — the HTTP layer therefore behaves
like a synchronous database protocol while the pool bounds actual
parallelism.

Reads run against a :meth:`~repro.database.Database.read_snapshot`
pinned when the statement starts: concurrent DDL / INSERT / ANALYZE
publish new copy-on-write table versions atomically, so a read sees
either none or all of a batch — never a torn intermediate — and the
plan cache validates dependencies against the pinned versions.

Each statement carries a :class:`~repro.resilience.CancelToken` whose
deadline is armed at *admission* (queue wait burns it); the token is
threaded through the optimizer's search governor and the executor's
loops, so a deadline or a cancel request aborts the statement wherever
it is, with a typed error, without poisoning the session's queue or the
shared plan cache.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional

from ..database import Database, OptimizerConfig
from ..errors import (
    ReproError,
    ServerShuttingDown,
    SessionNotFound,
    StatementTimeout,
)
from ..resilience import CancelToken
from ..service import QueryService
from .admission import AdmissionController, ServerConfig
from .sessions import Cursor, ServerSession, SessionRegistry, WorkItem


class ReproServer:
    """Transport-independent serving core over one database."""

    def __init__(
        self,
        database: Optional[Database] = None,
        service: Optional[QueryService] = None,
        config: Optional[ServerConfig] = None,
    ) -> None:
        if service is not None:
            self.service = service
            self.database = service.database
        else:
            self.database = database or Database()
            self.service = QueryService(self.database)
        self.config = config or ServerConfig()
        self.admission = AdmissionController(self.config)
        self.sessions = SessionRegistry(self.config.idle_timeout)
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-worker",
        )
        self._closed = threading.Event()
        self._draining = threading.Event()
        self._reaper: Optional[threading.Thread] = None
        self.started = time.monotonic()
        metrics = self.database.metrics
        if metrics is not None:
            metrics.register_collector("server", self.stats)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the idle-session reaper (idempotent)."""
        if self._reaper is not None:
            return
        self._reaper = threading.Thread(
            target=self._reap_loop, name="repro-reaper", daemon=True
        )
        self._reaper.start()

    def close(self) -> None:
        """Stop the reaper and the worker pool (pending work finishes)."""
        self._closed.set()
        self._pool.shutdown(wait=True)

    def shutdown(self, grace: Optional[float] = None) -> dict:
        """Graceful shutdown: refuse new work, drain or cancel, persist.

        The sequence — the contract SIGTERM/SIGINT ride on:

        1. flip the draining flag, so every subsequent submission is
           refused with :class:`~repro.errors.ServerShuttingDown` (503);
        2. wait up to *grace* seconds (default
           ``config.shutdown_grace``) for in-flight and queued
           statements to finish on their own;
        3. statements still pending when the grace window closes get
           their cancel tokens fired — they unwind with
           ``StatementCancelled`` at the next cooperative check, so the
           pool shutdown below cannot hang on a long optimization;
        4. stop the reaper and the worker pool (waits for the unwound
           workers);
        5. if the database is durable, checkpoint it and close the WAL —
           a restart then recovers from the checkpoint alone.

        Idempotent: a second call returns immediately."""
        if self._draining.is_set():
            return {"drained": True, "cancelled": 0, "checkpointed": False}
        self._draining.set()
        if grace is None:
            grace = self.config.shutdown_grace
        deadline = time.monotonic() + max(grace, 0.0)
        while self.admission.snapshot()["pending"] > 0:
            if time.monotonic() >= deadline:
                break
            time.sleep(0.02)
        cancelled = self._cancel_all_sessions()
        self.close()
        checkpointed = False
        manager = self.database.durability
        if manager is not None and not manager.closed:
            self.database.checkpoint()
            self.database.close()
            checkpointed = True
        self._count("server.shutdowns")
        return {
            "drained": cancelled == 0,
            "cancelled": cancelled,
            "checkpointed": checkpointed,
        }

    def _cancel_all_sessions(self) -> int:
        """Fire the cancel token of every active and queued statement."""
        cancelled = 0
        for session_id in self.sessions.ids():
            try:
                session = self.sessions.get(session_id)
            except SessionNotFound:
                continue  # reaped or disconnected since ids() snapshot
            with session.lock:
                if session.active_token is not None:
                    session.active_token.cancel()
                    cancelled += 1
                for item in session.queue:
                    item.token.cancel()
                    cancelled += 1
        return cancelled

    def _reap_loop(self) -> None:
        while not self._closed.wait(self.config.reap_interval):
            self.sessions.reap_idle()

    # -- session lifecycle -------------------------------------------------

    def connect(self, options: Optional[dict] = None) -> dict:
        """Open a session.  *options* may set ``mode``
        ("cbqt"/"heuristic") and a session-default ``timeout``."""
        options = options or {}
        config: Optional[OptimizerConfig] = None
        mode = options.get("mode")
        if mode == "heuristic":
            config = OptimizerConfig.heuristic_mode()
        elif mode not in (None, "cbqt"):
            raise ReproError(f"unknown session mode {mode!r}")
        timeout = options.get("timeout", self.config.statement_timeout)
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise ReproError("session timeout must be positive")
        session = ServerSession(self.service.session(config), timeout)
        self.sessions.add(session)
        self._count("server.connects")
        return {"session_id": session.id}

    def disconnect(self, session_id: str) -> dict:
        session = self.sessions.remove(session_id)
        if session is None:
            raise SessionNotFound(f"no session {session_id!r}")
        with session.lock:
            # cancel in-flight and queued work; the drain loop surfaces
            # StatementCancelled on their futures and moves on
            if session.active_token is not None:
                session.active_token.cancel()
            for item in session.queue:
                item.token.cancel()
            session.statements.clear()
            session.cursors.clear()
        self._count("server.disconnects")
        return {"closed": session_id}

    # -- statement API -----------------------------------------------------

    def prepare(self, session_id: str, sql: str) -> dict:
        """Parse-check *sql* and register a prepared handle."""
        session = self.sessions.get(session_id)
        if _statement_head(sql) not in ("SELECT", "("):
            raise ReproError("prepare expects a SELECT statement")
        self.database.parse(sql)  # typed error now, not at first execute
        prepared = self.service.prepare(sql, session.session.config)
        statement_id = session.register_statement(prepared)
        return {"statement_id": statement_id, "sql": sql}

    def execute(
        self,
        session_id: str,
        sql: Optional[str] = None,
        statement_id: Optional[str] = None,
        binds: object = None,
        timeout: Optional[float] = None,
        analyze: bool = False,
        fetch_size: Optional[int] = None,
    ) -> dict:
        """Run one statement (by text or prepared handle) to completion.

        SELECTs run against a read snapshot pinned at statement start;
        ``CREATE TABLE`` / ``CREATE INDEX`` text routes to DDL.  With
        *fetch_size* the rows stay server-side in a cursor and the reply
        carries the first page plus a ``cursor_id`` for /fetch."""
        session = self.sessions.get(session_id)
        if statement_id is not None:
            sql = session.statement(statement_id).sql
        if not sql:
            raise ReproError("execute needs 'sql' or 'statement_id'")
        head = _statement_head(sql)
        if head == "CREATE":
            return self._run(session, timeout, lambda token: self._do_ddl(sql))
        if head not in ("SELECT", "EXPLAIN", "("):
            raise ReproError(
                f"unsupported statement {head!r}; use /insert for rows"
            )
        return self._run(
            session,
            timeout,
            lambda token: self._do_query(
                session, sql, binds, token, analyze, fetch_size
            ),
        )

    def fetch(self, session_id: str, cursor_id: str, n: int = 100) -> dict:
        """Next page of an open cursor; exhaustion auto-closes it."""
        session = self.sessions.get(session_id)
        cursor = session.cursor(cursor_id)
        if n <= 0:
            raise ReproError("fetch size must be positive")
        rows, more = cursor.fetch(n)
        if not more:
            session.close_cursor(cursor_id)
        return {
            "cursor_id": cursor_id,
            "columns": cursor.columns,
            "rows": [list(row) for row in rows],
            "more": more,
        }

    def cancel(self, session_id: str, drain: bool = False) -> dict:
        """Cancel the session's in-flight statement (and, with *drain*,
        everything queued behind it).  Safe from any thread; the victim
        unwinds with :class:`~repro.errors.StatementCancelled` at its
        next cooperative check point and the session keeps serving."""
        session = self.sessions.get(session_id)
        cancelled = 0
        with session.lock:
            if session.active_token is not None:
                session.active_token.cancel()
                cancelled += 1
            if drain:
                for item in session.queue:
                    item.token.cancel()
                    cancelled += 1
        self._count("server.cancels")
        return {"cancelled": cancelled}

    def explain(self, session_id: str, sql: str, binds: object = None) -> dict:
        session = self.sessions.get(session_id)
        plan = self._run(
            session, None,
            lambda token: {"plan": self.service.explain(
                sql, binds, session.session.config
            )},
        )
        return plan

    # -- data API ----------------------------------------------------------

    def ddl(self, session_id: str, sql: str) -> dict:
        session = self.sessions.get(session_id)
        return self._run(session, None, lambda token: self._do_ddl(sql))

    def insert(self, session_id: str, table: str, rows: list) -> dict:
        session = self.sessions.get(session_id)
        if not isinstance(rows, list) or not all(
            isinstance(row, dict) for row in rows
        ):
            raise ReproError("insert expects a list of column->value rows")

        def work(token: CancelToken) -> dict:
            count = self.database.insert(table, rows)
            return {"inserted": count, "table": table.lower()}

        return self._run(session, None, work)

    def analyze(self, session_id: str, table: Optional[str] = None) -> dict:
        session = self.sessions.get(session_id)

        def work(token: CancelToken) -> dict:
            self.database.analyze(table)
            return {"analyzed": table.lower() if table else "all"}

        return self._run(session, None, work)

    # -- admin API ---------------------------------------------------------

    def stats(self) -> dict:
        """Server-level accounting (also absorbed into the metrics
        registry as the ``server`` collector)."""
        return {
            "sessions": len(self.sessions),
            "sessions_reaped": self.sessions.reaped_total,
            "uptime_seconds": time.monotonic() - self.started,
            "workers": self.config.workers,
            "draining": self._draining.is_set(),
            **self.admission.snapshot(),
        }

    def metrics(self) -> dict:
        return self.database.snapshot()

    def cache(self) -> dict:
        return self.service.cache_stats()

    def quarantine(self) -> dict:
        return self.database.quarantine.snapshot()

    # -- internals ---------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        metrics = self.database.metrics
        if metrics is not None:
            metrics.counter(name).inc(n)

    def _run(
        self,
        session: ServerSession,
        timeout: Optional[float],
        fn: Callable[[CancelToken], dict],
    ) -> dict:
        """Admit, enqueue, and wait for one unit of session work."""
        future = self._submit(session, timeout, fn)
        started = time.perf_counter()
        try:
            payload = future.result()
        finally:
            metrics = self.database.metrics
            if metrics is not None:
                metrics.histogram("server.statement_seconds").record(
                    time.perf_counter() - started
                )
        session.touch()
        with session.lock:
            session.statements_executed += 1
        self._count("server.statements")
        return payload

    def _submit(
        self,
        session: ServerSession,
        timeout: Optional[float],
        fn: Callable[[CancelToken], dict],
    ) -> Future:
        if timeout is None:
            timeout = session.statement_timeout
        token = CancelToken()
        deadline = None
        if timeout is not None:
            # the deadline covers queue wait + optimize + execute; it is
            # the same clock the SearchGovernor and executor loops poll
            token.set_deadline(timeout)
            deadline = time.monotonic() + timeout
        future: Future = Future()
        item = WorkItem(fn, token, future, deadline)
        if self._draining.is_set():
            raise ServerShuttingDown(
                "server is shutting down; no new statements accepted"
            )
        with session.lock:
            if session.closed:
                raise SessionNotFound(f"no session {session.id!r}")
            self.admission.admit(session.pending())
            session.queue.append(item)
            schedule = not session.draining
            if schedule:
                session.draining = True
        if schedule:
            self._pool.submit(self._drain, session)
        return future

    def _drain(self, session: ServerSession) -> None:
        """Run the session's queued statements in order on this worker.

        One failure — cancellation, timeout, optimizer error — resolves
        only its own future; the loop continues with the next item, so a
        cancelled statement never poisons the session's queue."""
        while True:
            with session.lock:
                if not session.queue:
                    session.draining = False
                    return
                item = session.queue.popleft()
            self.admission.start()
            try:
                if item.deadline is not None and time.monotonic() >= item.deadline:
                    self.admission.record_queue_timeout()
                    raise StatementTimeout(
                        "statement deadline expired while queued"
                    )
                with session.lock:
                    session.active_token = item.token
                item.future.set_result(item.fn(item.token))
            except BaseException as exc:  # noqa: B036 - resolved via future  # staticcheck: ignore[error.swallow] nothing swallowed: set_exception re-raises in the waiter
                self._count("server.statement_errors")
                item.future.set_exception(exc)
            finally:
                with session.lock:
                    session.active_token = None
                self.admission.finish()

    def _do_ddl(self, sql: str) -> dict:
        self.database.execute_ddl(sql)
        return {"ok": True}

    def _do_query(
        self,
        session: ServerSession,
        sql: str,
        binds: object,
        token: CancelToken,
        analyze: bool,
        fetch_size: Optional[int],
    ) -> dict:
        head = _statement_head(sql)
        explain_analyze = False
        if head == "EXPLAIN":
            rest = sql.lstrip()[len("EXPLAIN"):].lstrip()
            if rest.upper().startswith("ANALYZE"):
                sql = rest[len("ANALYZE"):].lstrip()
                analyze = explain_analyze = True
            else:
                return {"plan": self.service.explain(
                    rest, binds, session.session.config
                )}
        snapshot = self.database.read_snapshot()
        result = self.service.execute(
            sql,
            binds,
            session.session.config,
            token=token,
            analyze=analyze,
            snapshot=snapshot,
        )
        payload = {
            "columns": result.columns,
            "row_count": len(result.rows),
            "cache_status": result.cache_status,
            "optimize_seconds": result.optimize_seconds,
            "execute_seconds": result.execute_seconds,
        }
        if explain_analyze:
            payload["explain_analyze"] = result.explain_analyze()
        if fetch_size is not None:
            if fetch_size <= 0:
                raise ReproError("fetch_size must be positive")
            cursor = Cursor(result.columns, result.rows)
            page, more = cursor.fetch(fetch_size)
            payload["rows"] = [list(row) for row in page]
            payload["more"] = more
            if more:
                session.register_cursor(cursor)
                payload["cursor_id"] = cursor.id
        else:
            payload["rows"] = [list(row) for row in result.rows]
            payload["more"] = False
        return payload


def _statement_head(sql: str) -> str:
    stripped = sql.lstrip()
    if stripped.startswith("("):
        return "("
    parts = stripped.split(None, 1)
    return parts[0].upper() if parts else ""
