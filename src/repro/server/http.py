"""HTTP/JSON transport over :class:`~repro.server.app.ReproServer`.

Stdlib only: a ``ThreadingHTTPServer`` whose handler threads call the
app synchronously — the app's admission controller and worker pool
bound actual concurrency, so an unbounded number of keep-alive
connections cannot overload the optimizer.

Routes (all request/response bodies are JSON)::

    POST   /sessions                     -> {"session_id": ...}
    DELETE /sessions/<id>                -> {"closed": ...}
    POST   /sessions/<id>/statements     {"sql"} -> {"statement_id"}
    POST   /sessions/<id>/execute        {"sql"|"statement_id", "binds"?,
                                          "timeout"?, "analyze"?,
                                          "fetch_size"?} -> rows + stats
    POST   /sessions/<id>/fetch          {"cursor_id", "n"?} -> next page
    POST   /sessions/<id>/cancel         {"drain"?} -> {"cancelled": n}
    POST   /sessions/<id>/explain        {"sql", "binds"?} -> {"plan"}
    POST   /sessions/<id>/ddl            {"sql"} -> {"ok": true}
    POST   /sessions/<id>/insert         {"table", "rows"} -> {"inserted"}
    POST   /sessions/<id>/analyze        {"table"?} -> {"analyzed"}
    GET    /healthz | /metrics | /cache | /quarantine | /sessions

Typed engine errors map onto transport status codes; the body always
carries ``{"error": {"type", "message"}}`` so clients can branch on the
engine's exception taxonomy rather than parse prose:

==============================  ======
:class:`SessionNotFound`        404
:class:`AdmissionRejected`      429 (back off and retry)
:class:`StatementTimeout`       408
:class:`StatementCancelled`     409
:class:`ServerShuttingDown`     503 (graceful shutdown in progress;
                                reconnect after the restart)
:class:`VerificationError`      500 (an engine invariant broke — a
                                server bug, never the client's request)
other :class:`ReproError`       400
anything else                   500
==============================  ======
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..errors import (
    AdmissionRejected,
    ReproError,
    ServerShuttingDown,
    SessionNotFound,
    StatementCancelled,
    StatementTimeout,
    VerificationError,
)
from .admission import ServerConfig
from .app import ReproServer

#: request bodies beyond this are refused (a denial-of-service guard,
#: not a data limit — bulk loads should batch their /insert calls)
MAX_BODY_BYTES = 16 * 1024 * 1024


def _status_for(exc: BaseException) -> int:
    if isinstance(exc, SessionNotFound):
        return 404
    if isinstance(exc, AdmissionRejected):
        return 429
    if isinstance(exc, StatementTimeout):
        return 408
    if isinstance(exc, StatementCancelled):
        return 409
    if isinstance(exc, ServerShuttingDown):
        return 503
    if isinstance(exc, VerificationError):
        # an invariant violation is a server-side bug, not a bad request
        return 500
    if isinstance(exc, ReproError):
        return 400
    return 500


class ReproHTTPServer(ThreadingHTTPServer):
    """One listening socket over one :class:`ReproServer` app."""

    daemon_threads = True
    # a client holding a keep-alive connection must not pin a handler
    # thread forever between requests
    timeout = 60

    def __init__(self, app: ReproServer, host: str, port: int) -> None:
        self.app = app
        super().__init__((host, port), RequestHandler)


class RequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ReproHTTPServer

    #: set True (e.g. by the CLI's --verbose) to restore stderr request
    #: logging; quiet by default so the load bench isn't I/O bound
    verbose = False

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, exc: BaseException) -> None:
        self._reply(_status_for(exc), {
            "error": {"type": type(exc).__name__, "message": str(exc)}
        })

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ReproError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise ReproError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ReproError("request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        try:
            handled = self._route(method)
        except VerificationError as exc:
            # deliberate: reported as a 500 so one broken statement does
            # not take the transport down, but never folded into the
            # generic 400 typed-error path
            self._error(exc)
            return
        except Exception as exc:  # typed errors become status codes
            self._error(exc)
            return
        if not handled:
            self._reply(404, {"error": {
                "type": "NotFound",
                "message": f"no route {method} {self.path}",
            }})

    # -- routing -----------------------------------------------------------

    def _route(self, method: str) -> bool:
        app = self.server.app
        path = self.path.split("?", 1)[0].rstrip("/")
        parts = [p for p in path.split("/") if p]

        if method == "GET":
            admin = {
                "healthz": lambda: {"ok": True, **app.stats()},
                "metrics": app.metrics,
                "cache": app.cache,
                "quarantine": app.quarantine,
                "sessions": lambda: {"sessions": app.sessions.ids()},
            }
            if len(parts) == 1 and parts[0] in admin:
                self._reply(200, admin[parts[0]]())
                return True
            return False

        if method == "DELETE":
            if len(parts) == 2 and parts[0] == "sessions":
                self._reply(200, app.disconnect(parts[1]))
                return True
            return False

        if method != "POST":
            return False
        if parts == ["sessions"]:
            self._reply(200, app.connect(self._body()))
            return True
        if len(parts) != 3 or parts[0] != "sessions":
            return False
        session_id, verb = parts[1], parts[2]
        body = self._body()
        if verb == "statements":
            payload = app.prepare(session_id, _require(body, "sql"))
        elif verb == "execute":
            payload = app.execute(
                session_id,
                sql=body.get("sql"),
                statement_id=body.get("statement_id"),
                binds=body.get("binds"),
                timeout=_number(body, "timeout"),
                analyze=bool(body.get("analyze", False)),
                fetch_size=_integer(body, "fetch_size"),
            )
        elif verb == "fetch":
            payload = app.fetch(
                session_id,
                _require(body, "cursor_id"),
                _integer(body, "n", 100),
            )
        elif verb == "cancel":
            payload = app.cancel(session_id, bool(body.get("drain", False)))
        elif verb == "explain":
            payload = app.explain(
                session_id, _require(body, "sql"), body.get("binds")
            )
        elif verb == "ddl":
            payload = app.ddl(session_id, _require(body, "sql"))
        elif verb == "insert":
            payload = app.insert(
                session_id, _require(body, "table"), body.get("rows") or []
            )
        elif verb == "analyze":
            payload = app.analyze(session_id, body.get("table"))
        else:
            return False
        self._reply(200, payload)
        return True

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


def _require(body: dict, key: str) -> str:
    value = body.get(key)
    if not value or not isinstance(value, str):
        raise ReproError(f"request needs a non-empty {key!r} field")
    return value


def _number(body: dict, key: str) -> Optional[float]:
    value = body.get(key)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ReproError(f"{key!r} must be a number")
    return float(value)


def _integer(body: dict, key: str, default: Optional[int] = None) -> Optional[int]:
    value = body.get(key, default)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise ReproError(f"{key!r} must be an integer")
    return value


def make_http_server(
    app: ReproServer,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> ReproHTTPServer:
    """Bind a listening HTTP server over *app* (port 0 picks a free
    port; the bound address is ``server.server_address``) and start the
    app's idle reaper."""
    config = app.config
    server = ReproHTTPServer(
        app,
        config.host if host is None else host,
        config.port if port is None else port,
    )
    app.start()
    return server


def run_server(
    server: ReproHTTPServer,
    grace: Optional[float] = None,
) -> dict:
    """Serve until SIGTERM/SIGINT, then shut down gracefully.

    Signal handlers are installed only when running on the main thread
    (test harnesses drive servers from worker threads, where the stdlib
    forbids ``signal.signal``).  A handler cannot call
    ``server.shutdown()`` from the serving thread — that deadlocks — so
    it hands off to a short-lived helper thread that stops the accept
    loop; the graceful drain/cancel/checkpoint sequence
    (:meth:`ReproServer.shutdown`) then runs below, after
    ``serve_forever`` returns."""
    app = server.app

    def request_stop(signum: int, frame: object) -> None:
        threading.Thread(
            target=server.shutdown, name="repro-shutdown", daemon=True
        ).start()

    previous = {}
    on_main = threading.current_thread() is threading.main_thread()
    if on_main:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, request_stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        outcome = app.shutdown(grace)
    return outcome


def serve(
    app: Optional[ReproServer] = None,
    config: Optional[ServerConfig] = None,
) -> None:
    """Blocking entry point: serve until interrupted."""
    app = app or ReproServer(config=config)
    run_server(make_http_server(app))
