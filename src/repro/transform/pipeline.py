"""Sequential transformation ordering (§3.1).

"In Oracle, transformations are generally applied in a sequential manner;
each transformation is applied on the entire query tree followed by
another transformation."  This module fixes that order for both the
heuristic phase and the cost-based phase, mirroring the paper's list:
SPJ view merging, join elimination, subquery unnesting, group-by
(distinct) view merging, predicate move around, set operator into join,
group-by placement, predicate pullup, join factorization, disjunction
into union-all, and join predicate pushdown.

Re-application: a transformation can synthesise constructs that make
earlier ones applicable again (e.g. set-op conversion creates an SPJ
view).  The heuristic phase therefore runs to a fixpoint, and the CBQT
driver re-runs SPJ merging after any cost-based transformation that
created new SPJ views.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..catalog.schema import Catalog
from ..qtree.blocks import QueryNode
from ..resilience import blame
from .base import Transformation, apply_everywhere

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..analysis import TransformationAuditor
    from ..obs.trace import Tracer
from .costbased import (
    GroupByPlacement,
    GroupByViewMerging,
    JoinFactorization,
    JoinPredicatePushdown,
    OrExpansion,
    PredicatePullup,
    SetOpIntoJoin,
    StarTransformation,
    UnnestSubqueryToView,
)
from .heuristic import (
    GroupPruning,
    JoinElimination,
    PredicateMoveAround,
    SpjViewMerging,
    SubqueryMergeUnnesting,
)

#: heuristic phase, in sequential order
HEURISTIC_ORDER = (
    SpjViewMerging,
    JoinElimination,
    SubqueryMergeUnnesting,
    PredicateMoveAround,
    GroupPruning,
)

#: cost-based phase, in sequential order
COST_BASED_ORDER = (
    UnnestSubqueryToView,
    GroupByViewMerging,
    SetOpIntoJoin,
    GroupByPlacement,
    PredicatePullup,
    JoinFactorization,
    OrExpansion,
    StarTransformation,
    JoinPredicatePushdown,
)


def build_heuristic_transformations(catalog: Catalog) -> list[Transformation]:
    return [cls(catalog) for cls in HEURISTIC_ORDER]


def build_cost_based_transformations(catalog: Catalog) -> list[Transformation]:
    return [cls(catalog) for cls in COST_BASED_ORDER]


def apply_heuristic_phase(
    root: QueryNode,
    catalog: Catalog,
    enabled: set[str] | None = None,
    rounds: int = 4,
    auditor: "Optional[TransformationAuditor]" = None,
    tracer: "Optional[Tracer]" = None,
) -> QueryNode:
    """Run the heuristic transformations to a fixpoint.

    *enabled* restricts to the named transformations (None = all).
    When an *auditor* is given (paranoid mode), the query tree is
    re-verified after every transformation that rewrote it, so a
    violation is blamed on the exact heuristic rule that introduced it.
    When a *tracer* is armed, every rewriting rule application emits a
    ``heuristic.rule`` event with the tree's before/after structural
    signatures; the untraced path computes neither.
    """
    transformations = [
        t for t in build_heuristic_transformations(catalog)
        if enabled is None or t.name in enabled
    ]
    for round_no in range(rounds):
        changed = False
        for transformation in transformations:
            targets = transformation.find_targets(root)
            if targets:
                if tracer is not None:
                    from ..qtree import signature

                    before_sig = signature(root)
                root = apply_everywhere(transformation, root)
                changed = True
                if tracer is not None:
                    tracer.emit(
                        "heuristic.rule",
                        rule=transformation.name,
                        round=round_no,
                        targets=len(targets),
                        before=before_sig,
                        after=signature(root),
                    )
                if auditor is not None:
                    with blame(transformation.name):
                        auditor.audit_tree(root, transformation.name)
        if not changed:
            break
    return root
