"""Filter predicate move-around (§2.1.3).

Two imperative rules, both applied to fixpoint:

* **Transitive predicate generation** ("moving across"): from
  ``a.x = b.y`` and a single-column filter on ``a.x``, derive the same
  filter on ``b.y``.  This plants copies of a predicate next to every
  equivalent column so that the pushdown rule below can sink them into
  views, and it opens index access on either side of a join.

* **Pushdown into views**: a single-alias filter on an inline view's
  output column moves inside the view (into every branch of a UNION ALL
  view).  For views computing window functions the predicate may be
  pushed only when the referenced columns appear in every window's
  PARTITION BY list — the paper's Q7 -> Q8 example; pushing through the
  window's ORDER BY is not attempted.  For group-by views the predicate
  must be on group-by output columns.  Views guarded by ROWNUM are left
  alone.

Predicates containing subqueries or expensive functions are never moved
by this rule (the cost-based predicate pull-up owns those).
"""

from __future__ import annotations

from ...errors import TransformError
from ...qtree import exprutil
from ...qtree.blocks import QueryBlock, QueryNode, SetOpBlock
from ...sql import ast
from ...sql.render import render_expr
from ..base import TargetRef, Transformation


class PredicateMoveAround(Transformation):
    name = "predicate_move_around"
    cost_based = False

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        # One synthetic target per block that has work to do; apply()
        # processes the whole block (transitivity + pushdown) at once.
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            if self._pushdown_candidates(block) or self._safe_transitive(block):
                targets.append(TargetRef(block.name, "block", "*"))
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        self._apply_transitivity(block)
        for conjunct, item in self._pushdown_candidates(block):
            block.where_conjuncts.remove(conjunct)
            self._push_into_view(conjunct, item)
        return root

    # -- transitivity ---------------------------------------------------------

    def _new_transitive(self, block: QueryBlock) -> list[ast.Expr]:
        """Filters derivable from equi-join equivalence classes that are
        not yet present."""
        equalities = []
        filters = []
        for conjunct in block.where_conjuncts:
            pair = exprutil.equality_columns(conjunct)
            if pair is not None:
                equalities.append(pair)
                continue
            column = self._single_column_literal_filter(conjunct)
            if column is not None:
                filters.append((conjunct, column))

        classes = _equivalence_classes(equalities)
        existing = {render_expr(c) for c in block.where_conjuncts}
        derived = []
        for conjunct, column in filters:
            for group in classes:
                if column not in group:
                    continue
                for other in group:
                    if other == column:
                        continue
                    candidate = exprutil.substitute_columns(
                        conjunct, {(column.qualifier, column.name): other}
                    )
                    if render_expr(candidate) not in existing:
                        existing.add(render_expr(candidate))
                        derived.append(candidate)
        return derived

    def _safe_transitive(self, block: QueryBlock) -> list[ast.Expr]:
        """Derived filters that are safe to add: copies on a
        null-supplying alias would change outer-join semantics, so only
        filters on inner aliases qualify."""
        safe = []
        for conjunct in self._new_transitive(block):
            refs = exprutil.aliases_referenced(conjunct)
            if all(
                block.from_item(alias).is_inner
                for alias in refs
                if alias in block.aliases()
            ):
                safe.append(conjunct)
        return safe

    def _apply_transitivity(self, block: QueryBlock) -> None:
        block.where_conjuncts.extend(self._safe_transitive(block))

    @staticmethod
    def _single_column_literal_filter(conjunct: ast.Expr):
        """Match a filter whose only column reference is one qualified
        column compared with literals (=, range, IN-list, BETWEEN)."""
        if ast.contains_subquery(conjunct):
            return None
        if not isinstance(conjunct, (ast.BinOp, ast.Between, ast.InList)):
            return None
        columns = {
            (c.qualifier, c.name) for c in ast.column_refs_in(conjunct)
        }
        if len(columns) != 1:
            return None
        qualifier, name = next(iter(columns))
        if qualifier is None:
            return None
        # Everything else must be literal.
        for node in conjunct.walk():
            if isinstance(node, (ast.FuncCall, ast.Case, ast.WindowFunc)):
                return None
        return ast.ColumnRef(qualifier, name)

    # -- pushdown into views ------------------------------------------------------

    def _pushdown_candidates(self, block: QueryBlock):
        candidates = []
        for conjunct in block.where_conjuncts:
            if ast.contains_subquery(conjunct):
                continue
            if any(
                isinstance(n, ast.FuncCall)
                and self._catalog.is_expensive_function(n.name)
                for n in conjunct.walk()
            ):
                continue
            refs = exprutil.aliases_referenced(conjunct) & block.aliases()
            if len(refs) != 1:
                continue
            alias = next(iter(refs))
            try:
                item = block.from_item(alias)
            except TransformError:
                continue
            if not item.is_derived or not item.is_inner:
                continue
            if self._pushable(conjunct, item):
                candidates.append((conjunct, item))
        return candidates

    def _pushable(self, conjunct: ast.Expr, item) -> bool:
        columns = [
            c.name for c in ast.column_refs_in(conjunct)
            if c.qualifier == item.alias
        ]
        return _node_accepts_pushdown(item.subquery, columns)

    def _push_into_view(self, conjunct: ast.Expr, item) -> None:
        _push_conjunct(conjunct, item.alias, item.subquery)


def _node_accepts_pushdown(node: QueryNode, columns: list[str]) -> bool:
    if isinstance(node, SetOpBlock):
        if node.op != "UNION ALL":
            # Pushing into UNION/INTERSECT/MINUS is legal for filters;
            # we allow it (duplicate-removal commutes with filtering).
            pass
        return all(_node_accepts_pushdown(b, columns) for b in node.branches)
    assert isinstance(node, QueryBlock)
    if node.rownum_limit is not None:
        return False
    if node.grouping_sets is not None:
        # filtering below a ROLLUP would change the rolled-up totals;
        # group pruning (§2.1.4) handles these predicates instead
        return False
    output = node.output_columns()
    for column in columns:
        if column not in output:
            return False
        expr = node.select_expr_for(column)
        if ast.contains_aggregate(expr):
            return False
        if isinstance(expr, ast.WindowFunc):
            return False
        if node.group_by and not any(
            render_expr(expr) == render_expr(g) for g in node.group_by
        ):
            return False
    # Window functions elsewhere in the view: every pushed column must be
    # in every window's PARTITION BY (Q7/Q8).
    windows = [
        n
        for sel in node.select_items
        for n in sel.expr.walk()
        if isinstance(n, ast.WindowFunc)
    ]
    for window in windows:
        partition = {render_expr(e) for e in window.partition_by}
        for column in columns:
            expr = node.select_expr_for(column)
            if render_expr(expr) not in partition:
                return False
    return True


def _push_conjunct(conjunct: ast.Expr, alias: str, node: QueryNode) -> None:
    if isinstance(node, SetOpBlock):
        for branch in node.branches:
            _push_conjunct(conjunct, alias, branch)
        return
    assert isinstance(node, QueryBlock)
    mapping = {
        (alias, name): node.select_expr_for(name)
        for name in {
            c.name
            for c in ast.column_refs_in(conjunct)
            if c.qualifier == alias
        }
    }
    node.where_conjuncts.append(
        exprutil.substitute_columns(conjunct, mapping)
    )


def _equivalence_classes(
    pairs: list[tuple[ast.ColumnRef, ast.ColumnRef]]
) -> list[set[ast.ColumnRef]]:
    classes: list[set[ast.ColumnRef]] = []
    for left, right in pairs:
        touching = [g for g in classes if left in g or right in g]
        merged = {left, right}
        for group in touching:
            merged |= group
            classes.remove(group)
        classes.append(merged)
    return classes
