"""Join elimination (§2.1.2).

Removes a table whose join provably has no effect on the result:

* **PK-FK join** (Q4): the child table's foreign key equi-joins the
  parent's full primary/unique key, and no other part of the query
  references the parent.  Every child row matches exactly one parent row
  (FK integrity), so the join neither filters (beyond NULL FK values) nor
  duplicates.  If the FK columns are nullable, ``IS NOT NULL`` predicates
  are added to preserve the inner join's null-filtering.
* **Unique-key outer join** (Q5): a LEFT-joined table whose ON condition
  equi-joins one of its unique keys and whose columns are otherwise
  unreferenced.  The outer join retains all left rows and cannot
  duplicate, so the table is simply dropped.

"It is obvious that pruning a redundant join will improve the
performance of the query, and therefore join elimination is always
performed, if it is valid." — §2.1.2.
"""

from __future__ import annotations

from ...errors import TransformError
from ...qtree import exprutil
from ...qtree.blocks import FromItem, QueryBlock, QueryNode
from ...sql import ast
from ..base import TargetRef, Transformation


class JoinElimination(Transformation):
    name = "join_elimination"
    cost_based = False

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            for item in block.from_items:
                if self._eliminable(block, item) is not None:
                    targets.append(TargetRef(block.name, "view", item.alias))
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        item = block.from_item(str(target.key))
        plan = self._eliminable(block, item)
        if plan is None:
            raise TransformError(f"{self.name}: join is not eliminable")
        kind, join_conjunct_ids, null_checks = plan
        block.from_items.remove(item)
        if kind == "pkfk":
            block.where_conjuncts = [
                c for c in block.where_conjuncts if id(c) not in join_conjunct_ids
            ]
            block.where_conjuncts.extend(null_checks)
        return root

    # -- analysis ---------------------------------------------------------------

    def _eliminable(self, block: QueryBlock, item: FromItem):
        if not item.is_base_table:
            return None
        if self._referenced_outside_join(block, item):
            return None
        if item.join_type == "LEFT":
            return self._outer_join_eliminable(block, item)
        if item.is_inner:
            return self._pkfk_eliminable(block, item)
        return None

    def _referenced_outside_join(self, block: QueryBlock, item: FromItem) -> bool:
        """Does anything other than the candidate join condition reference
        the table?"""
        alias = item.alias
        exprs: list[ast.Expr] = [sel.expr for sel in block.select_items]
        exprs.extend(block.group_by)
        exprs.extend(block.having_conjuncts)
        exprs.extend(o.expr for o in block.order_by)
        for other in block.from_items:
            if other is not item:
                exprs.extend(other.join_conjuncts)
        for expr in exprs:
            if alias in exprutil.aliases_referenced(expr):
                return True
        if item.is_inner:
            # WHERE conjuncts other than simple equi-joins also count.
            for conjunct in block.where_conjuncts:
                if alias not in exprutil.aliases_referenced(conjunct):
                    continue
                if self._equi_join_on(conjunct, alias) is None:
                    return True
        # Correlated references from nested blocks.
        for nested in block.iter_blocks():
            if nested is block or not isinstance(nested, QueryBlock):
                continue
            for ref in nested.correlation_refs():
                if ref.qualifier == alias:
                    return True
        return False

    @staticmethod
    def _equi_join_on(conjunct: ast.Expr, alias: str):
        """Match ``other.col = alias.col`` (either orientation); returns
        (other_ref, alias_ref) or None."""
        pair = exprutil.equality_columns(conjunct)
        if pair is None:
            return None
        left, right = pair
        if right.qualifier == alias and left.qualifier != alias:
            return left, right
        if left.qualifier == alias and right.qualifier != alias:
            return right, left
        return None

    def _pkfk_eliminable(self, block: QueryBlock, item: FromItem):
        alias = item.alias
        parent = self._catalog.table(item.table_name)
        join_pairs = []
        conjunct_ids = set()
        for conjunct in block.where_conjuncts:
            if alias not in exprutil.aliases_referenced(conjunct):
                continue
            matched = self._equi_join_on(conjunct, alias)
            if matched is None:
                return None
            join_pairs.append(matched)
            conjunct_ids.add(id(conjunct))
        if not join_pairs:
            return None
        parent_cols = tuple(sorted(ref.name for _other, ref in join_pairs))
        keys = [tuple(sorted(k)) for k in parent.all_keys()]
        if parent_cols not in keys:
            return None
        # All child sides must come from ONE table with a declared FK.
        child_aliases = {other.qualifier for other, _ref in join_pairs}
        if len(child_aliases) != 1:
            return None
        child_alias = next(iter(child_aliases))
        try:
            child_item = block.from_item(child_alias)
        except TransformError:
            return None
        if not child_item.is_base_table:
            return None
        child_table = self._catalog.table(child_item.table_name)
        fk = None
        for candidate in child_table.foreign_keys:
            if candidate.ref_table != parent.name:
                continue
            if tuple(sorted(candidate.ref_columns)) != parent_cols:
                continue
            child_cols = tuple(sorted(other.name for other, _r in join_pairs))
            if tuple(sorted(candidate.columns)) == child_cols:
                fk = candidate
                break
        if fk is None:
            return None
        null_checks = []
        for other, _ref in join_pairs:
            column = child_table.column(other.name)
            if not column.not_null:
                null_checks.append(ast.IsNull(other.clone(), negated=True))
        return "pkfk", conjunct_ids, null_checks

    def _outer_join_eliminable(self, block: QueryBlock, item: FromItem):
        alias = item.alias
        table = self._catalog.table(item.table_name)
        # WHERE conjuncts must not reference the null-supplied table.
        for conjunct in block.where_conjuncts:
            if alias in exprutil.aliases_referenced(conjunct):
                return None
        joined_cols = []
        for conjunct in item.join_conjuncts:
            matched = self._equi_join_on(conjunct, alias)
            if matched is None:
                return None
            _other, ref = matched
            joined_cols.append(ref.name)
        if not joined_cols:
            return None
        if not table.is_unique_key(joined_cols):
            return None
        return "outer", set(), []
