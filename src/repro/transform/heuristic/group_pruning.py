"""Group pruning (§2.1.4).

An inline view computing ROLLUP / CUBE / GROUPING SETS produces one
output stream per grouping set; rolled-up grouping columns come out NULL.
A null-rejecting outer predicate on such a column (equality, range, IN,
LIKE, IS NOT NULL, ...) can never be satisfied by the sets that roll the
column up, so those sets are removed from the view — the paper's Q9,
where a filter on ``city_id`` prunes the ``(country_id)`` and
``(country_id, state_id)`` groups.

Pruning keys on predicates over grouping columns and on GROUPING()
indicator predicates (``GROUPING(c) = 0`` keeps only sets grouping c;
``GROUPING(c) = 1`` keeps only sets rolling it up).

This transformation is imperative: dropping an aggregation pass can only
help.  It runs after predicate move-around has planted filter copies
"into close proximity to the group-by query" (§2.1.4).
"""

from __future__ import annotations

from typing import Optional

from ...errors import TransformError
from ...qtree import exprutil
from ...qtree.blocks import FromItem, QueryBlock, QueryNode
from ...sql import ast
from ...sql.render import render_expr
from ..base import TargetRef, Transformation


class GroupPruning(Transformation):
    name = "group_pruning"
    cost_based = False

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            for item in block.from_items:
                if self._prunable_sets(block, item):
                    targets.append(TargetRef(block.name, "view", item.alias))
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        item = block.from_item(str(target.key))
        pruned = self._prunable_sets(block, item)
        if not pruned:
            raise TransformError(f"{self.name}: nothing to prune")
        view = item.subquery
        assert isinstance(view, QueryBlock)
        remaining = [
            s for i, s in enumerate(view.grouping_sets) if i not in pruned
        ]
        if remaining:
            view.grouping_sets = remaining
            if len(remaining) == 1 and set(remaining[0]) == set(
                range(len(view.group_by))
            ):
                view.grouping_sets = None  # plain GROUP BY again
        else:
            # every set contradicts the predicates: the view is empty;
            # degrade to a plain (never-satisfied) GROUP BY so pruning
            # terminates
            view.grouping_sets = None
            view.where_conjuncts.append(ast.Literal(False))
        return root

    # -- analysis ----------------------------------------------------------------

    def _prunable_sets(self, block: QueryBlock, item: FromItem) -> set[int]:
        """Indices of grouping sets the outer predicates rule out."""
        if not item.is_derived or not item.is_inner:
            return set()
        view = item.subquery
        if not isinstance(view, QueryBlock) or not view.grouping_sets:
            return set()

        # map view output column name -> index into view.group_by
        group_index: dict[str, int] = {}
        rendered_groups = [render_expr(g) for g in view.group_by]
        for name, sel in zip(view.output_columns(), view.select_items):
            rendered = render_expr(sel.expr)
            for i, g in enumerate(rendered_groups):
                if rendered == g:
                    group_index[name] = i

        must_group: set[int] = set()
        must_rollup: set[int] = set()
        for conjunct in block.where_conjuncts:
            refs = exprutil.aliases_referenced(conjunct)
            if refs != {item.alias}:
                continue
            grouping_pred = self._grouping_indicator(
                conjunct, item.alias, group_index, view, rendered_groups
            )
            if grouping_pred is not None:
                index, wants_grouped = grouping_pred
                (must_group if wants_grouped else must_rollup).add(index)
                continue
            for column in self._null_rejected_columns(conjunct, item.alias):
                index = group_index.get(column)
                if index is not None:
                    must_group.add(index)

        if not must_group and not must_rollup:
            return set()
        pruned = set()
        for i, set_indices in enumerate(view.grouping_sets):
            kept = set(set_indices)
            if not must_group <= kept or (must_rollup & kept):
                pruned.add(i)
        return pruned

    @staticmethod
    def _grouping_indicator(
        conjunct: ast.Expr,
        alias: str,
        group_index: dict[str, int],
        view: QueryBlock,
        rendered_groups: list[str],
    ) -> Optional[tuple[int, bool]]:
        """Match ``GROUPING(v.col) = 0|1`` or ``v.gs = 0|1`` where the
        view's ``gs`` output is a GROUPING(col) indicator."""
        if not (isinstance(conjunct, ast.BinOp) and conjunct.op == "="):
            return None
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.Literal):
            left, right = right, left
        if not (isinstance(right, ast.Literal) and right.value in (0, 1)):
            return None
        # v.gs form: the output column selects GROUPING(col) in the view.
        if isinstance(left, ast.ColumnRef) and left.qualifier == alias:
            try:
                left = view.select_expr_for(left.name)
            except TransformError:
                return None
        if not (
            isinstance(left, ast.FuncCall)
            and left.name == "GROUPING"
            and len(left.args) == 1
            and isinstance(left.args[0], ast.ColumnRef)
        ):
            return None
        rendered = render_expr(left.args[0])
        for i, g in enumerate(rendered_groups):
            if rendered == g:
                return i, right.value == 0
        return None

    @staticmethod
    def _null_rejected_columns(conjunct: ast.Expr, alias: str) -> set[str]:
        """Columns of *alias* that cannot be NULL if *conjunct* is true.

        Conservative: only predicate shapes whose NULL-input result is
        known to be not-true qualify; disjunctions qualify only when every
        disjunct rejects the column."""
        if isinstance(conjunct, ast.Or):
            per_disjunct = [
                GroupPruning._null_rejected_columns(d, alias)
                for d in conjunct.operands
            ]
            return set.intersection(*per_disjunct) if per_disjunct else set()
        if isinstance(conjunct, ast.BinOp) and conjunct.is_comparison:
            return {
                c.name for c in ast.column_refs_in(conjunct)
                if c.qualifier == alias
            }
        if isinstance(conjunct, (ast.Between, ast.Like)) and not conjunct.negated:
            return {
                c.name for c in ast.column_refs_in(conjunct)
                if c.qualifier == alias
            }
        if isinstance(conjunct, ast.InList) and not conjunct.negated:
            return {
                c.name for c in ast.column_refs_in(conjunct.operand)
                if c.qualifier == alias
            }
        if isinstance(conjunct, ast.IsNull) and conjunct.negated:
            if isinstance(conjunct.operand, ast.ColumnRef) and \
                    conjunct.operand.qualifier == alias:
                return {conjunct.operand.name}
        return set()
