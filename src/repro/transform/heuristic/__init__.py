"""Heuristic (imperative) transformations — §2.1 of the paper."""

from .group_pruning import GroupPruning
from .join_elimination import JoinElimination
from .predicate_move_around import PredicateMoveAround
from .subquery_merge import SubqueryMergeUnnesting
from .view_merge_spj import SpjViewMerging

__all__ = [
    "GroupPruning",
    "JoinElimination",
    "PredicateMoveAround",
    "SubqueryMergeUnnesting",
    "SpjViewMerging",
]
