"""Imperative subquery unnesting: merge into semijoin / antijoin (§2.1.1).

The category of unnesting "that merges a subquery into its outer query"
is applied imperatively in Oracle; the category that must generate inline
views is cost-based (§2.2.1) and lives in
:mod:`repro.transform.costbased.unnest_view`.

This rule handles single-table SPJ subqueries appearing as a top-level
WHERE conjunct:

* ``EXISTS`` -> semijoin, ``NOT EXISTS`` -> antijoin;
* ``IN`` -> semijoin on connecting equalities;
* ``NOT IN`` -> antijoin when both sides are provably non-null, else the
  null-aware antijoin variant (§2.1.1's "next release" feature);
* ``<op> ANY`` -> semijoin on ``left <op> subcol``;
* ``<op> ALL`` -> null-aware antijoin on the negated comparison.

Subqueries "correlated to non-parents, whose correlations appear in
disjunction" are skipped, matching the paper's restrictions.
"""

from __future__ import annotations

from typing import Optional

from ...errors import TransformError
from ...qtree import exprutil
from ...qtree.blocks import FromItem, QueryBlock, QueryNode
from ...sql import ast
from ..base import TargetRef, Transformation, ensure_unique_aliases


class SubqueryMergeUnnesting(Transformation):
    name = "subquery_merge"
    cost_based = False

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            for i, conjunct in enumerate(block.where_conjuncts):
                if self._unnestable(block, conjunct):
                    targets.append(TargetRef(block.name, "conjunct", i))
        return targets

    def _unnestable(self, block: QueryBlock, conjunct: ast.Expr) -> bool:
        if not isinstance(conjunct, ast.SubqueryExpr):
            return False
        return subquery_merge_applicable(block, conjunct, self._catalog)

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        index = int(target.key)  # type: ignore[arg-type]
        if index >= len(block.where_conjuncts):
            raise TransformError(f"{self.name}: conjunct index out of range")
        conjunct = block.where_conjuncts[index]
        if not isinstance(conjunct, ast.SubqueryExpr) or not \
                subquery_merge_applicable(block, conjunct, self._catalog):
            raise TransformError(f"{self.name}: target is not unnestable")
        del block.where_conjuncts[index]
        merge_subquery_as_join(block, conjunct, self._catalog)
        return root


def subquery_merge_applicable(
    block: QueryBlock, sub: ast.SubqueryExpr, catalog
) -> bool:
    """True when *sub* (a top-level conjunct of *block*) can be merged
    into a single-table semi/antijoin."""
    if not isinstance(sub.query, QueryBlock):
        return False
    inner = sub.query
    if sub.kind not in ("EXISTS", "IN", "QUANTIFIED"):
        return False
    if not inner.is_spj or len(inner.from_items) != 1:
        return False
    item = inner.from_items[0]
    if not item.is_base_table or not item.is_inner:
        return False
    # Correlation must target this block only (no non-parent correlation).
    outer_refs = {
        ref.qualifier for ref in inner.correlation_refs() if ref.qualifier
    }
    if outer_refs and not outer_refs <= block.aliases():
        return False
    # Correlated disjunctions cannot be unnested.
    for conjunct in inner.where_conjuncts:
        if isinstance(conjunct, ast.Or):
            refs = exprutil.aliases_referenced(conjunct)
            if refs - inner.aliases():
                return False
        if ast.contains_subquery(conjunct):
            return False
    # A null-aware antijoin is null-aware on *every* join conjunct, so a
    # NOT IN / ALL subquery with nullable sides can never be flat-merged:
    # a NULL in a correlation or local predicate would wrongly reject the
    # outer row.  Those cases go through the cost-based view-generating
    # unnesting instead, which keeps all non-connecting predicates inside
    # the view.
    if _join_type_for(sub, block, inner, catalog) == "ANTI_NA":
        return False
    return True


def merge_subquery_as_join(
    block: QueryBlock, sub: ast.SubqueryExpr, catalog
) -> FromItem:
    """Turn *sub* into a semi/anti-joined from-item of *block*.

    The caller has already removed the conjunct from the block's WHERE.
    """
    inner = sub.query
    assert isinstance(inner, QueryBlock)
    ensure_unique_aliases(block, inner)
    item = inner.from_items[0]

    connecting = _connecting_conjuncts(sub, inner)
    join_type = _join_type_for(sub, block, inner, catalog)

    new_item = FromItem(
        item.alias,
        item.source,
        item.table,
        join_type,
        connecting + [c.clone() for c in inner.where_conjuncts],
    )
    block.from_items.append(new_item)
    return new_item


def _connecting_conjuncts(
    sub: ast.SubqueryExpr, inner: QueryBlock
) -> list[ast.Expr]:
    if sub.kind == "EXISTS":
        return []
    left_exprs = (
        list(sub.left.items)
        if isinstance(sub.left, ast.RowExpr)
        else [sub.left]
    )
    sub_exprs = [item.expr for item in inner.select_items]
    if len(left_exprs) != len(sub_exprs):
        raise TransformError("subquery connecting-condition arity mismatch")
    if sub.kind == "IN":
        op = "="
    else:  # QUANTIFIED
        op = sub.op
        if sub.quantifier == "ALL":
            op = ast.NEGATED_COMPARISON[op]
    return [
        ast.BinOp(op, left.clone(), right.clone())
        for left, right in zip(left_exprs, sub_exprs)
    ]


def _join_type_for(
    sub: ast.SubqueryExpr, block: QueryBlock, inner: QueryBlock, catalog
) -> str:
    if sub.kind == "EXISTS":
        return "ANTI" if sub.negated else "SEMI"
    if sub.kind == "QUANTIFIED":
        if sub.quantifier == "ANY":
            return "SEMI"
        return "ANTI_NA"
    # IN / NOT IN
    if not sub.negated:
        return "SEMI"
    left_exprs = (
        list(sub.left.items)
        if isinstance(sub.left, ast.RowExpr)
        else [sub.left]
    )
    sides_non_null = all(
        _non_nullable(expr, block, catalog) for expr in left_exprs
    ) and all(
        _non_nullable(item.expr, inner, catalog) for item in inner.select_items
    )
    return "ANTI" if sides_non_null else "ANTI_NA"


def _non_nullable(expr: ast.Expr, block: QueryBlock, catalog) -> bool:
    """Conservatively prove *expr* cannot be NULL in *block*'s rows."""
    if isinstance(expr, ast.Literal):
        return expr.value is not None
    if isinstance(expr, ast.ColumnRef) and expr.qualifier:
        item = _find_item(block, expr.qualifier)
        if item is None or not item.is_base_table or not item.is_inner:
            return False
        if expr.name == "rowid":
            return True
        table = catalog.table(item.table_name)
        if not table.has_column(expr.name):
            return False
        if table.column(expr.name).not_null:
            return True
        # An IS NOT NULL / equality-with-non-null filter also proves it.
        for conjunct in block.where_conjuncts:
            if isinstance(conjunct, ast.IsNull) and conjunct.negated and \
                    conjunct.operand == expr:
                return True
        return False
    return False


def _find_item(block: QueryBlock, alias: str) -> Optional[FromItem]:
    for item in block.from_items:
        if item.alias == alias:
            return item
    return None
