"""SPJ view merging (§2.1 / §3.1 "SPJ view merging").

An inline view that is a plain select-project-join block is merged into
its containing block unconditionally: this removes a query-block boundary
and lets the physical optimizer reorder the view's tables with the outer
tables.  The paper classifies this as a heuristic (imperative)
transformation because it never repositions a DISTINCT or GROUP BY
operator (§2.1).

Legality here:

* the from-item is INNER-joined (outer-joined views are unmergeable for
  this rule — footnote 3 notwithstanding, we leave those to JPPD);
* the view is a :class:`QueryBlock` with :attr:`is_spj` true;
* the view is not laterally correlated (nothing references outer aliases;
  lateral views only arise from JPPD, which runs later anyway).

The view's ORDER BY, if any, is discarded — ordering of an inline view
without ROWNUM carries no semantics.
"""

from __future__ import annotations

from ...qtree import exprutil
from ...qtree.blocks import QueryBlock, QueryNode
from ...sql import ast
from ..base import TargetRef, Transformation, ensure_unique_aliases


class SpjViewMerging(Transformation):
    name = "spj_view_merge"
    cost_based = False

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            for item in block.from_items:
                if self._mergeable(block, item):
                    targets.append(TargetRef(block.name, "view", item.alias))
        return targets

    def _mergeable(self, block: QueryBlock, item) -> bool:
        if not item.is_derived or not item.is_inner:
            return False
        view = item.subquery
        if not isinstance(view, QueryBlock):
            return False
        if not view.is_spj:
            return False
        if view.is_correlated:
            return False
        # Under an outer ROWNUM the view's ORDER BY selects *which* rows
        # survive (the top-N pattern, Q16); merging would discard it.
        if view.order_by and block.rownum_limit is not None:
            return False
        # A subquery in the view's WHERE is fine — it moves along.
        return True

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        item = block.from_item(str(target.key))
        if not self._mergeable(block, item):
            from ...errors import TransformError

            raise TransformError(f"{self.name}: view is not mergeable")
        view = item.subquery
        assert isinstance(view, QueryBlock)

        merge_view_into(block, item, view)
        return root


def merge_view_into(block: QueryBlock, item, view: QueryBlock) -> dict[str, str]:
    """Splice *view*'s from-items and conjuncts into *block*, replacing
    references to ``item.alias`` columns by the view's select expressions.
    Shared by SPJ merging and group-by view merging.  Returns the alias
    rename map applied to the view."""
    position = block.from_items.index(item)
    block.from_items.remove(item)
    renames = ensure_unique_aliases(block, view)

    mapping: dict[tuple[str, str], ast.Expr] = {}
    for name, sel in zip(view.output_columns(), view.select_items):
        mapping[(item.alias, name)] = sel.expr

    exprutil.substitute_columns_in_node(block, mapping)

    block.from_items[position:position] = view.from_items
    block.where_conjuncts.extend(view.where_conjuncts)
    return renames
