"""Query transformations: heuristic (§2.1) and cost-based (§2.2)."""

from .base import TargetRef, Transformation, apply_everywhere, find_block
from .pipeline import (
    COST_BASED_ORDER,
    HEURISTIC_ORDER,
    apply_heuristic_phase,
    build_cost_based_transformations,
    build_heuristic_transformations,
)

__all__ = [
    "TargetRef",
    "Transformation",
    "apply_everywhere",
    "find_block",
    "COST_BASED_ORDER",
    "HEURISTIC_ORDER",
    "apply_heuristic_phase",
    "build_cost_based_transformations",
    "build_heuristic_transformations",
]
