"""Cost-based subquery unnesting that generates inline views (§2.2.1).

Two shapes:

* **Correlated aggregate subquery** (Q1 -> Q10): a conjunct
  ``outer_expr <op> (SELECT agg(..) FROM .. WHERE local = outer [AND ..])``
  becomes a group-by inline view ``(SELECT agg(..) AS agg_out, local ..
  GROUP BY local ..) V`` joined on the correlation equalities, with the
  comparison rewritten against ``V.agg_out``.

  COUNT aggregates are *not* unnested this way: a group absent from the
  view makes the join drop the outer row, while TIS would compare against
  COUNT = 0 (the classic count bug).  For the other aggregates an absent
  group yields NULL under TIS, so the comparison is unknown and the row
  is filtered either way — equivalent.

* **Multi-table EXISTS / IN** (and their negations): the subquery tables
  become a semi-/anti-joined inline view.  A plain merge would generate
  duplicate rows (§2.2.1), so the view boundary is kept and the join
  carries the connecting condition on the view's outputs.

Whether unnesting wins depends on filters in the outer query, indexes on
the correlation's local columns (which make TIS cheap), and the cost of
computing the aggregate once versus per row — precisely why the paper
makes this transformation cost-based.  The pre-10g heuristic rule
("do not unnest if the outer query has filter predicates and the local
correlation columns are indexed") is implemented in
:func:`pre10g_heuristic_says_unnest` and used when CBQT is disabled.
"""

from __future__ import annotations

from typing import Optional

from ...errors import TransformError
from ...qtree import exprutil
from ...qtree.blocks import FromItem, QueryBlock, QueryNode
from ...sql import ast
from ..base import TargetRef, Transformation, ensure_unique_aliases
from ..heuristic.subquery_merge import _join_type_for


class UnnestSubqueryToView(Transformation):
    name = "unnest_view"
    cost_based = True

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            for i, conjunct in enumerate(block.where_conjuncts):
                if self._classify(block, conjunct) is not None:
                    targets.append(TargetRef(block.name, "conjunct", i))
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        index = int(target.key)  # type: ignore[arg-type]
        if index >= len(block.where_conjuncts):
            raise TransformError(f"{self.name}: conjunct index out of range")
        conjunct = block.where_conjuncts[index]
        shape = self._classify(block, conjunct)
        if shape is None:
            raise TransformError(f"{self.name}: conjunct is not unnestable")
        del block.where_conjuncts[index]
        if shape == "aggregate":
            _unnest_aggregate(block, conjunct)
        else:
            _unnest_multi_table(block, conjunct, self._catalog)
        return root

    def target_kind(self, root: QueryNode, target: TargetRef) -> Optional[str]:
        """Classify a previously found target: "aggregate" (generates a
        mergeable group-by view) or "multi_table" (semi/anti-joined
        view)."""
        block = self._require_block(root, target)
        index = int(target.key)  # type: ignore[arg-type]
        if index >= len(block.where_conjuncts):
            return None
        return self._classify(block, block.where_conjuncts[index])

    # -- classification -------------------------------------------------------

    def _classify(self, block: QueryBlock, conjunct: ast.Expr) -> Optional[str]:
        if _aggregate_target(block, conjunct) is not None:
            return "aggregate"
        if isinstance(conjunct, ast.SubqueryExpr) and _multi_table_applicable(
            block, conjunct
        ):
            return "multi_table"
        return None


# -- aggregate subquery unnesting ---------------------------------------------


def _aggregate_target(block: QueryBlock, conjunct: ast.Expr):
    """Match ``outer_expr <op> (scalar agg subquery)`` in either
    orientation; returns (outer_expr, op, SubqueryExpr) or None."""
    if not isinstance(conjunct, ast.BinOp) or not conjunct.is_comparison:
        return None
    left, right, op = conjunct.left, conjunct.right, conjunct.op
    if isinstance(left, ast.SubqueryExpr) and not isinstance(
        right, ast.SubqueryExpr
    ):
        left, right = right, left
        op = ast.MIRRORED_COMPARISON[op]
    if not isinstance(right, ast.SubqueryExpr) or right.kind != "SCALAR":
        return None
    if ast.contains_subquery(left):
        return None
    inner = right.query
    if not isinstance(inner, QueryBlock):
        return None
    if len(inner.select_items) != 1:
        return None
    sel = inner.select_items[0].expr
    if not isinstance(sel, ast.FuncCall) or not sel.is_aggregate:
        return None
    if sel.name == "COUNT":
        return None  # count bug
    if sel.distinct:
        return None
    if inner.group_by or inner.having_conjuncts or inner.distinct:
        return None
    if inner.rownum_limit is not None or inner.order_by:
        return None
    if any(not item.is_inner for item in inner.from_items):
        return None
    # Correlations must be equality conjuncts local = outer targeting this
    # block only.
    outer_refs = {
        ref.qualifier for ref in inner.correlation_refs() if ref.qualifier
    }
    if not outer_refs:
        return None  # uncorrelated scalar subquery: TIS evaluates it once
    if not outer_refs <= block.aliases():
        return None
    inner_aliases = inner.bound_aliases_recursive()
    for c in inner.where_conjuncts:
        refs = exprutil.aliases_referenced(c)
        if refs <= inner_aliases:
            if ast.contains_subquery(c):
                return None
            continue
        if _correlation_equality(c, inner_aliases) is None:
            return None
    return left, op, right


def _correlation_equality(conjunct: ast.Expr, inner_aliases: set[str]):
    """Match ``inner.col = outer.expr``; returns (inner_ref, outer_expr)."""
    if not isinstance(conjunct, ast.BinOp) or conjunct.op != "=":
        return None
    left, right = conjunct.left, conjunct.right
    left_refs = exprutil.aliases_referenced(left)
    right_refs = exprutil.aliases_referenced(right)
    if isinstance(left, ast.ColumnRef) and left_refs <= inner_aliases \
            and right_refs and not right_refs & inner_aliases:
        return left, right
    if isinstance(right, ast.ColumnRef) and right_refs <= inner_aliases \
            and left_refs and not left_refs & inner_aliases:
        return right, left
    return None


def _unnest_aggregate(block: QueryBlock, conjunct: ast.Expr) -> FromItem:
    outer_expr, op, sub = _aggregate_target(block, conjunct)
    inner = sub.query
    assert isinstance(inner, QueryBlock)
    ensure_unique_aliases(block, inner)
    inner_aliases = inner.bound_aliases_recursive()

    correlations = []
    residual = []
    for c in inner.where_conjuncts:
        matched = _correlation_equality(c, inner_aliases)
        if matched is not None:
            correlations.append(matched)
        else:
            residual.append(c)

    agg_expr = inner.select_items[0].expr
    view = QueryBlock(
        select_items=[ast.SelectItem(agg_expr.clone(), "agg_out")],
        from_items=inner.from_items,
        where_conjuncts=residual,
    )
    alias = FromItem.fresh_alias("vw")
    join_conjuncts = []
    for i, (inner_ref, outer_side) in enumerate(correlations):
        column = f"gk_{i}"
        view.select_items.append(ast.SelectItem(inner_ref.clone(), column))
        view.group_by.append(inner_ref.clone())
        join_conjuncts.append(
            ast.BinOp("=", ast.ColumnRef(alias, column), outer_side.clone())
        )

    item = FromItem(alias, view)
    block.from_items.append(item)
    block.where_conjuncts.extend(join_conjuncts)
    block.where_conjuncts.append(
        ast.BinOp(op, outer_expr.clone(), ast.ColumnRef(alias, "agg_out"))
    )
    return item


# -- multi-table EXISTS / IN unnesting -------------------------------------------


def _multi_table_applicable(block: QueryBlock, sub: ast.SubqueryExpr) -> bool:
    if sub.kind not in ("EXISTS", "IN", "QUANTIFIED"):
        return False
    inner = sub.query
    if not isinstance(inner, QueryBlock):
        return False
    if not inner.is_spj:
        return False
    null_aware = (sub.kind == "IN" and sub.negated) or (
        sub.kind == "QUANTIFIED" and sub.quantifier == "ALL"
    )
    if len(inner.from_items) < 2 and not null_aware:
        # Single-table subqueries are flat-merged imperatively — except
        # potentially-null-aware ones, which need the view boundary.
        return False
    if any(not item.is_inner for item in inner.from_items):
        return False
    outer_refs = {
        ref.qualifier for ref in inner.correlation_refs() if ref.qualifier
    }
    if outer_refs and not outer_refs <= block.aliases():
        return False
    inner_aliases = inner.bound_aliases_recursive()
    for c in inner.where_conjuncts:
        if ast.contains_subquery(c):
            return False
        refs = exprutil.aliases_referenced(c)
        if not refs <= inner_aliases and isinstance(c, ast.Or):
            return False  # correlated disjunction
    return True


def _unnest_multi_table(block: QueryBlock, sub: ast.SubqueryExpr, catalog) -> FromItem:
    inner = sub.query
    assert isinstance(inner, QueryBlock)
    ensure_unique_aliases(block, inner)
    inner_aliases = inner.bound_aliases_recursive()
    alias = FromItem.fresh_alias("vw")
    join_type = _join_type_for(sub, block, inner, catalog)

    # Correlated conjuncts move into the join condition, with the inner
    # side exposed as view output columns — except under a null-aware
    # antijoin, where every non-connecting predicate must stay inside the
    # view (the antijoin treats UNKNOWN conjuncts as matches, which is
    # only correct for the connecting condition itself).  The view then
    # stays laterally correlated.
    local_conjuncts = []
    join_conjuncts = []
    exposed = 0
    view_selects = []
    for c in inner.where_conjuncts:
        refs = exprutil.aliases_referenced(c)
        if refs <= inner_aliases or join_type == "ANTI_NA":
            local_conjuncts.append(c)
            continue
        matched = _correlation_equality(c, inner_aliases)
        if matched is None:
            # General correlated conjunct: expose every inner column it
            # uses and rewrite it against the view.
            mapping = {}
            for ref in ast.column_refs_in(c):
                if ref.qualifier in inner_aliases and (
                    ref.qualifier, ref.name,
                ) not in mapping:
                    column = f"cc_{exposed}"
                    exposed += 1
                    view_selects.append(ast.SelectItem(ref.clone(), column))
                    mapping[(ref.qualifier, ref.name)] = ast.ColumnRef(
                        alias, column
                    )
            join_conjuncts.append(exprutil.substitute_columns(c, mapping))
        else:
            inner_ref, outer_side = matched
            column = f"cc_{exposed}"
            exposed += 1
            view_selects.append(ast.SelectItem(inner_ref.clone(), column))
            join_conjuncts.append(
                ast.BinOp("=", ast.ColumnRef(alias, column), outer_side.clone())
            )

    # Connecting condition for IN / quantified subqueries.
    if sub.kind != "EXISTS":
        left_exprs = (
            list(sub.left.items)
            if isinstance(sub.left, ast.RowExpr)
            else [sub.left]
        )
        op = "="
        if sub.kind == "QUANTIFIED":
            op = sub.op
            if sub.quantifier == "ALL":
                op = ast.NEGATED_COMPARISON[op]
        for i, (left, sel) in enumerate(zip(left_exprs, inner.select_items)):
            column = f"sq_{i}"
            view_selects.append(ast.SelectItem(sel.expr.clone(), column))
            join_conjuncts.append(
                ast.BinOp(op, left.clone(), ast.ColumnRef(alias, column))
            )

    if not view_selects:
        view_selects = [ast.SelectItem(ast.Literal(1), "one")]

    view = QueryBlock(
        select_items=view_selects,
        from_items=inner.from_items,
        where_conjuncts=local_conjuncts,
    )
    item = FromItem(alias, view, join_type=join_type,
                    join_conjuncts=join_conjuncts)
    block.from_items.append(item)
    return item


# -- the pre-10g heuristic (§2.2.1) ------------------------------------------------


def pre10g_heuristic_says_unnest(block: QueryBlock, sub_block: QueryBlock,
                                 catalog) -> bool:
    """The simplified pre-10g rule: "if there exist filter predicates in
    the outer query and there are indexes on the local columns in the
    subquery correlation, then the subquery should not be unnested"."""
    has_outer_filters = any(
        not ast.contains_subquery(c)
        and len(exprutil.aliases_referenced(c) & block.aliases()) == 1
        for c in block.where_conjuncts
    )
    inner_aliases = sub_block.bound_aliases_recursive()
    local_indexed = False
    for c in sub_block.where_conjuncts:
        matched = _correlation_equality(c, inner_aliases)
        if matched is None:
            continue
        inner_ref, _outer = matched
        for item in sub_block.from_items:
            if item.alias != inner_ref.qualifier or not item.is_base_table:
                continue
            if catalog.indexes_on(item.table_name, inner_ref.name):
                local_indexed = True
    return not (has_outer_filters and local_indexed)
