"""Join predicate pushdown — JPPD (§2.2.3).

Pushes equality join predicates connecting an inline view to outer tables
*inside* the view, where they act as correlation: the view becomes
lateral, must be joined by nested loops after the tables it references,
and gains index access paths on the pushed columns (Q12 -> Q13).

Applies to the view kinds the paper lists: group-by and distinct views
(mergeable) and UNION/UNION ALL or semi-/anti-/outer-joined views
(unmergeable).  For a set-op view the predicate is pushed into every
branch.

Additional optimization from the paper: when the pushed equi-join
predicates cover *all* of a DISTINCT view's select columns (or all
group-by items of an aggregate-free group-by view), the duplicate
elimination is removed, and — when the view's outputs are not referenced
anywhere else — the join converts to a semijoin, exactly as Q13's
``e1.dept_id S= d.dept_id``.

Pushdown on aggregate output columns is illegal and never attempted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import TransformError
from ...qtree import exprutil
from ...qtree.blocks import FromItem, QueryBlock, QueryNode, SetOpBlock
from ...sql import ast
from ...sql.render import render_expr
from ..base import TargetRef, Transformation


@dataclass
class _Pushable:
    """One conjunct eligible for pushdown into a given view."""

    conjunct: ast.Expr
    in_join_condition: bool  # True: lives in the item's ON list
    view_column: str
    outer_expr: ast.Expr


class JoinPredicatePushdown(Transformation):
    name = "jppd"
    cost_based = True

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            for item in block.from_items:
                if self._pushables(block, item):
                    targets.append(TargetRef(block.name, "view", item.alias))
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        item = block.from_item(str(target.key))
        pushables = self._pushables(block, item)
        if not pushables:
            raise TransformError(f"{self.name}: no pushable join predicates")
        push_join_predicates(block, item, pushables)
        return root

    # -- eligibility ---------------------------------------------------------------

    def _pushables(self, block: QueryBlock, item: FromItem) -> list[_Pushable]:
        if not item.is_derived:
            return []
        if item.join_type == "ANTI_NA":
            # The null-aware antijoin's condition must see NULLs; pushing
            # it inside the view as an equality would filter them out.
            return []
        node = item.subquery
        if not _view_accepts_jppd(node):
            return []
        if _is_lateral(block, item):
            return []  # already pushed into
        result: list[_Pushable] = []
        if item.is_inner:
            source = [(c, False) for c in block.where_conjuncts]
        else:
            source = [(c, True) for c in item.join_conjuncts]
        for conjunct, in_join in source:
            pushable = self._match_pushable(block, item, conjunct, in_join)
            if pushable is not None:
                result.append(pushable)
        return result

    def _match_pushable(self, block, item, conjunct, in_join):
        pair = exprutil.equality_columns(conjunct)
        if pair is None:
            return None
        left, right = pair
        if left.qualifier == item.alias:
            view_ref, outer_ref = left, right
        elif right.qualifier == item.alias:
            view_ref, outer_ref = right, left
        else:
            return None
        if outer_ref.qualifier == item.alias:
            return None
        if outer_ref.qualifier not in block.aliases():
            return None  # correlation parameter from an outer block
        # The outer side must itself be freely available before the view
        # (it will become a lateral dependency).
        other = block.from_item(outer_ref.qualifier)
        if not other.is_inner and item.is_inner:
            return None
        if not _column_pushable(item.subquery, view_ref.name):
            return None
        return _Pushable(conjunct, in_join, view_ref.name, outer_ref)


def _is_lateral(block: QueryBlock, item: FromItem) -> bool:
    return any(
        ref.qualifier in block.aliases()
        for ref in item.subquery.correlation_refs()
    )


def _view_accepts_jppd(node: QueryNode) -> bool:
    if isinstance(node, SetOpBlock):
        return all(
            isinstance(b, QueryBlock) and _view_accepts_jppd(b)
            for b in node.branches
        )
    assert isinstance(node, QueryBlock)
    if node.rownum_limit is not None:
        return False
    if node.grouping_sets is not None:
        # pushing a predicate below a ROLLUP changes the rolled-up
        # aggregates; group pruning owns these views
        return False
    return True


def _column_pushable(node: QueryNode, column: str) -> bool:
    if isinstance(node, SetOpBlock):
        return all(_column_pushable(b, column) for b in node.branches)
    assert isinstance(node, QueryBlock)
    if column not in node.output_columns():
        return False
    expr = node.select_expr_for(column)
    if ast.contains_aggregate(expr) or isinstance(expr, ast.WindowFunc):
        return False
    if node.group_by and not any(
        render_expr(expr) == render_expr(g) for g in node.group_by
    ):
        return False
    return True


def push_join_predicates(
    block: QueryBlock, item: FromItem, pushables: list[_Pushable]
) -> None:
    """Apply JPPD for the given conjuncts."""
    node = item.subquery

    for pushable in pushables:
        if pushable.in_join_condition:
            item.join_conjuncts.remove(pushable.conjunct)
        else:
            block.where_conjuncts.remove(pushable.conjunct)
        _push_into(node, pushable)

    _maybe_remove_duplicate_elimination(block, item, pushables)


def _push_into(node: QueryNode, pushable: _Pushable) -> None:
    if isinstance(node, SetOpBlock):
        for branch in node.branches:
            _push_into(branch, pushable)
        return
    assert isinstance(node, QueryBlock)
    inner_expr = node.select_expr_for(pushable.view_column)
    node.where_conjuncts.append(
        ast.BinOp("=", inner_expr.clone(), pushable.outer_expr.clone())
    )


def _maybe_remove_duplicate_elimination(
    block: QueryBlock, item: FromItem, pushables: list[_Pushable]
) -> None:
    """Drop DISTINCT / aggregate-free GROUP BY when the pushed equalities
    pin every deduplication key, converting to a semijoin when the view's
    outputs are no longer referenced (§2.2.3, Q13)."""
    node = item.subquery
    if not isinstance(node, QueryBlock):
        return
    pushed_columns = {p.view_column for p in pushables}
    if node.has_aggregates:
        return
    if node.distinct:
        keys = set(node.output_columns())
    elif node.group_by:
        keys = {
            name
            for name, sel in zip(node.output_columns(), node.select_items)
            if any(render_expr(sel.expr) == render_expr(g) for g in node.group_by)
        }
        if len(keys) != len(node.group_by):
            return
    else:
        return
    if not keys <= pushed_columns:
        return

    # Deduplication keys are all pinned by equality: duplicates can only
    # multiply outer rows, so either dedupe or semijoin.
    referenced = _view_columns_referenced(block, item)
    if referenced:
        return  # outputs still needed; keep DISTINCT/GROUP BY
    node.distinct = False
    node.group_by = []
    if item.join_type == "INNER":
        item.join_type = "SEMI"


def _view_columns_referenced(block: QueryBlock, item: FromItem) -> bool:
    exprs: list[ast.Expr] = [sel.expr for sel in block.select_items]
    exprs.extend(block.where_conjuncts)
    exprs.extend(block.group_by)
    exprs.extend(block.having_conjuncts)
    exprs.extend(o.expr for o in block.order_by)
    for other in block.from_items:
        exprs.extend(other.join_conjuncts)
    for expr in exprs:
        if item.alias in exprutil.aliases_referenced(expr):
            return True
    for nested in block.iter_blocks():
        if nested is block or not isinstance(nested, QueryBlock):
            continue
        if any(ref.qualifier == item.alias for ref in nested.correlation_refs()):
            return True
    return False
