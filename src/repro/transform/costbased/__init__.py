"""Cost-based transformations — §2.2 of the paper."""

from .groupby_merge import GroupByViewMerging
from .groupby_placement import GroupByPlacement
from .join_factorization import JoinFactorization
from .jppd import JoinPredicatePushdown
from .or_expansion import OrExpansion
from .predicate_pullup import PredicatePullup
from .setop_to_join import SetOpIntoJoin
from .star_transformation import StarTransformation
from .unnest_view import UnnestSubqueryToView

__all__ = [
    "GroupByViewMerging",
    "GroupByPlacement",
    "JoinFactorization",
    "JoinPredicatePushdown",
    "OrExpansion",
    "PredicatePullup",
    "SetOpIntoJoin",
    "StarTransformation",
    "UnnestSubqueryToView",
]
