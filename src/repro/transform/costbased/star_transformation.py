"""Star transformation (named in the paper's sequential order, §3.1).

For a star-shaped block — a fact table equijoined on its foreign keys to
several filtered dimension tables — the transformation adds redundant
subquery predicates on the fact table's join keys::

    fact.dim1_id IN (SELECT d.pk FROM dim1 d WHERE <dim1 filters>)
    fact.dim2_id IN (SELECT d.pk FROM dim2 d WHERE <dim2 filters>)

The added predicates are implied by the existing joins and filters, so
the rewrite is always sound; their value is that the fact table can be
reduced *before* the dimension joins run.  Oracle combines bitmap indexes
of the rowid sets; in this engine the subqueries evaluate once each
(tuple-iteration semantics with a cached result set) and filter the fact
scan, which models the same early-reduction effect.

Whether the extra subquery evaluations pay for the join-input reduction
depends on the dimension filters' selectivity — a cost-based decision.

Recognition requires declared foreign keys from the fact table to each
dimension's primary/unique key, at least two qualifying dimensions, and
at least one plain filter on each dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import TransformError
from ...qtree import exprutil
from ...qtree.blocks import FromItem, QueryBlock, QueryNode
from ...sql import ast
from ..base import TargetRef, Transformation

#: minimum number of filtered dimensions for a star shape
MIN_DIMENSIONS = 2


@dataclass
class _Dimension:
    item: FromItem
    fact_fk_column: str
    dim_pk_column: str
    filters: list[ast.Expr]


class StarTransformation(Transformation):
    name = "star_transformation"
    cost_based = True

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            for item in block.from_items:
                if self._dimensions_for(block, item):
                    targets.append(TargetRef(block.name, "fact", item.alias))
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        fact = block.from_item(str(target.key))
        dimensions = self._dimensions_for(block, fact)
        if not dimensions:
            raise TransformError(f"{self.name}: block is not star-shaped")
        for dimension in dimensions:
            block.where_conjuncts.append(
                self._key_filter_subquery(fact, dimension)
            )
        return root

    # -- recognition ---------------------------------------------------------------

    def _dimensions_for(self, block: QueryBlock, fact: FromItem) -> list[_Dimension]:
        if not fact.is_base_table or not fact.is_inner:
            return []
        fact_table = self._catalog.table(fact.table_name)
        if not fact_table.foreign_keys:
            return []
        # Already star-transformed? (an IN-subquery on a fact FK column)
        for conjunct in block.where_conjuncts:
            if isinstance(conjunct, ast.SubqueryExpr) and conjunct.kind == "IN" \
                    and isinstance(conjunct.left, ast.ColumnRef) \
                    and conjunct.left.qualifier == fact.alias:
                return []

        dimensions = []
        for item in block.from_items:
            if item is fact or not item.is_base_table or not item.is_inner:
                continue
            matched = self._join_edge(block, fact, item)
            if matched is None:
                continue
            fk_column, pk_column = matched
            filters = [
                c for c in block.where_conjuncts
                if exprutil.aliases_referenced(c) == {item.alias}
                and not ast.contains_subquery(c)
            ]
            if not filters:
                continue
            dimensions.append(_Dimension(item, fk_column, pk_column, filters))
        if len(dimensions) < MIN_DIMENSIONS:
            return []
        return dimensions

    def _join_edge(self, block: QueryBlock, fact: FromItem, dim: FromItem):
        """Match a declared-FK equijoin fact.fk = dim.pk in the WHERE."""
        fact_table = self._catalog.table(fact.table_name)
        dim_table = self._catalog.table(dim.table_name)
        for conjunct in block.where_conjuncts:
            pair = exprutil.equality_columns(conjunct)
            if pair is None:
                continue
            left, right = pair
            if left.qualifier == dim.alias and right.qualifier == fact.alias:
                left, right = right, left
            if not (left.qualifier == fact.alias and right.qualifier == dim.alias):
                continue
            if not dim_table.is_unique_key([right.name]):
                continue
            for fk in fact_table.foreign_keys:
                if (
                    fk.ref_table == dim_table.name
                    and fk.columns == (left.name,)
                    and fk.ref_columns == (right.name,)
                ):
                    return left.name, right.name
        return None

    # -- rewrite ---------------------------------------------------------------

    @staticmethod
    def _key_filter_subquery(fact: FromItem, dimension: _Dimension) -> ast.Expr:
        alias = FromItem.fresh_alias("st")
        rename = {dimension.item.alias: alias}
        subquery = QueryBlock(
            select_items=[
                ast.SelectItem(
                    ast.ColumnRef(alias, dimension.dim_pk_column),
                    dimension.dim_pk_column,
                )
            ],
            from_items=[
                FromItem(alias, dimension.item.source, dimension.item.table)
            ],
            where_conjuncts=[
                exprutil.rename_qualifiers(c, rename)
                for c in dimension.filters
            ],
        )
        return ast.SubqueryExpr(
            "IN",
            subquery,
            left=ast.ColumnRef(fact.alias, dimension.fact_fk_column),
        )
