"""Expensive-predicate pullup (§2.2.6).

Pulls an expensive filter predicate (one containing a registered
procedural / user-defined function, or a subquery) out of an inline view
into the containing block, when the containing block has a ROWNUM
predicate and the view contains a blocking operator (ORDER BY, GROUP BY,
DISTINCT, window functions).  The expensive predicate is then evaluated
lazily above the blocking operator, and the COUNT STOPKEY stops it after
N qualifying rows instead of running it over the whole input (Q16 -> Q17).

Filter-then-sort and sort-then-filter produce the same ordered stream, so
the rewrite is always legal when the predicate's columns are exposable as
view outputs; whether it *wins* depends on the predicate's selectivity —
a selective predicate evaluated late forces the stop key to read far more
sorted rows — which is why the decision is cost-based.

With ``n`` expensive predicates the CBQT state space enumerates all
2^n pull combinations (the paper's "three ways" for Q16's two
predicates, plus the untransformed state).
"""

from __future__ import annotations

from ...errors import TransformError
from ...qtree.blocks import FromItem, QueryBlock, QueryNode
from ...qtree import exprutil
from ...sql import ast
from ..base import TargetRef, Transformation


class PredicatePullup(Transformation):
    name = "predicate_pullup"
    cost_based = True

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            if block.rownum_limit is None:
                continue
            for item in block.from_items:
                for index in self._pullable_indexes(block, item):
                    targets.append(
                        TargetRef(block.name, "view_conjunct",
                                  (item.alias, index))
                    )
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        alias, index = target.key  # type: ignore[misc]
        item = block.from_item(str(alias))
        if index not in self._pullable_indexes(block, item):
            raise TransformError(f"{self.name}: predicate is not pullable")
        pull_predicate(block, item, int(index))
        return root

    # -- eligibility -------------------------------------------------------------

    def _pullable_indexes(self, block: QueryBlock, item: FromItem) -> list[int]:
        if not item.is_derived or not item.is_inner:
            return []
        view = item.subquery
        if not isinstance(view, QueryBlock):
            return []
        if not _has_blocking_operator(view):
            return []
        if view.rownum_limit is not None:
            return []
        indexes = []
        for i, conjunct in enumerate(view.where_conjuncts):
            if not self._is_expensive(conjunct):
                continue
            if self._conjunct_exposable(view, conjunct):
                indexes.append(i)
        return indexes

    def _is_expensive(self, conjunct: ast.Expr) -> bool:
        if ast.contains_subquery(conjunct):
            return True
        return any(
            isinstance(n, ast.FuncCall)
            and self._catalog.is_expensive_function(n.name)
            for n in conjunct.walk()
        )

    @staticmethod
    def _conjunct_exposable(view: QueryBlock, conjunct: ast.Expr) -> bool:
        # Every column used by the conjunct must belong to the view's own
        # from-items (no correlation), and pulling past GROUP BY requires
        # the columns to be group-by expressions.
        refs = exprutil.aliases_referenced(conjunct)
        if not refs <= view.bound_aliases_recursive():
            return False
        if view.grouping_sets is not None:
            return False
        if view.group_by or view.has_aggregates or view.distinct:
            from ...sql.render import render_expr

            grouped = {render_expr(g) for g in view.group_by}
            for ref in ast.column_refs_in(conjunct):
                if render_expr(ref) not in grouped:
                    return False
        return True


def pull_predicate(block: QueryBlock, item: FromItem, index: int) -> None:
    """Move view conjunct *index* into *block*, exposing the columns it
    needs as (hidden) view outputs."""
    view = item.subquery
    assert isinstance(view, QueryBlock)
    conjunct = view.where_conjuncts.pop(index)

    output = view.output_columns()
    mapping: dict[tuple[str, str], ast.Expr] = {}
    for ref in ast.column_refs_in(conjunct):
        key = (ref.qualifier, ref.name)
        if key in mapping:
            continue
        # Reuse an existing output column when one selects exactly this
        # column; otherwise append a hidden output.
        existing = None
        for name, sel in zip(output, view.select_items):
            if isinstance(sel.expr, ast.ColumnRef) and sel.expr == ref:
                existing = name
                break
        if existing is None:
            existing = f"pp_{len(view.select_items)}"
            view.select_items.append(ast.SelectItem(ref.clone(), existing))
            output.append(existing)
        mapping[key] = ast.ColumnRef(item.alias, existing)

    block.where_conjuncts.append(
        exprutil.substitute_columns(conjunct, mapping)
    )


def _has_blocking_operator(view: QueryBlock) -> bool:
    if view.order_by or view.group_by or view.distinct or view.has_aggregates:
        return True
    return any(
        isinstance(n, ast.WindowFunc)
        for sel in view.select_items
        for n in sel.expr.walk()
    )
