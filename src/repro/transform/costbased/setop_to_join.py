"""MINUS / INTERSECT into anti-/semijoin (§2.2.7).

``L INTERSECT R`` becomes a semijoined, DISTINCT query over L;
``L MINUS R`` becomes the antijoined equivalent.  Two semantic gaps the
paper calls out are handled explicitly:

* **NULLs match** in set operations but not in joins: the join condition
  is the null-safe ``l.c = r.c OR (l.c IS NULL AND r.c IS NULL)`` per
  column.
* **Duplicate elimination**: set operators return sets; the rewritten
  query applies DISTINCT at the join output.  (The paper notes the
  alternative of deduplicating the inputs — that choice is the
  distinct-placement problem; output-side dedup is what we generate and
  the input-side variant is left to the physical DISTINCT.)

The payoff is access to hash/merge semijoins and to join reordering,
instead of the executor's materialise-both-sides set algorithm.
"""

from __future__ import annotations

from ...errors import TransformError
from ...qtree.blocks import FromItem, QueryBlock, QueryNode, SetOpBlock
from ...sql import ast
from ..base import TargetRef, Transformation, iter_nodes_with_replacers


class SetOpIntoJoin(Transformation):
    name = "setop_to_join"
    cost_based = True

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for node, _replace in iter_nodes_with_replacers(root):
            if isinstance(node, SetOpBlock) and node.op in ("INTERSECT", "MINUS"):
                targets.append(TargetRef(node.name, "setop", node.name))
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        for node, replace in iter_nodes_with_replacers(root):
            if isinstance(node, SetOpBlock) and node.name == target.key:
                new_block = convert_setop(node)
                if replace is None:
                    return new_block
                replace(new_block)
                return root
        raise TransformError(f"{self.name}: set-op {target.key!r} not found")


def convert_setop(node: SetOpBlock) -> QueryBlock:
    left, right = node.branches
    left_alias = FromItem.fresh_alias("so_l")
    right_alias = FromItem.fresh_alias("so_r")
    columns = node.output_columns()

    join_conjuncts = [
        _null_safe_eq(
            ast.ColumnRef(left_alias, column),
            ast.ColumnRef(right_alias, _branch_column(right, i)),
        )
        for i, column in enumerate(columns)
    ]
    join_type = "SEMI" if node.op == "INTERSECT" else "ANTI"

    outer = QueryBlock(
        select_items=[
            ast.SelectItem(ast.ColumnRef(left_alias, column), column)
            for column in columns
        ],
        distinct=True,
        from_items=[
            FromItem(left_alias, left),
            FromItem(
                right_alias, right, join_type=join_type,
                join_conjuncts=join_conjuncts,
            ),
        ],
        order_by=[o.clone() for o in node.order_by],
    )
    _repoint_order_by(outer, left_alias, columns)
    return outer


def _branch_column(node: QueryNode, position: int) -> str:
    return node.output_columns()[position]


def _null_safe_eq(left: ast.Expr, right: ast.Expr) -> ast.Expr:
    return ast.Or([
        ast.BinOp("=", left, right),
        ast.And([
            ast.IsNull(left.clone()),
            ast.IsNull(right.clone()),
        ]),
    ])


def _repoint_order_by(block: QueryBlock, alias: str, columns: list[str]) -> None:
    rewritten = []
    for item in block.order_by:
        if isinstance(item.expr, ast.ColumnRef) and item.expr.qualifier is None \
                and item.expr.name in columns:
            rewritten.append(
                ast.OrderItem(ast.ColumnRef(alias, item.expr.name),
                              item.descending)
            )
        else:
            rewritten.append(item)
    block.order_by = rewritten
