"""Join factorization (§2.2.5).

For a UNION ALL whose branches all join one common table with compatible
predicates, the table is pulled out of the branches into a containing
query block and joined once to the residual UNION ALL view (Q14 -> Q15),
saving one scan of the common table per extra branch.

Conditions for a table ``t`` (matched by table name + alias across
branches):

* every branch is an SPJ query block containing ``t`` INNER-joined;
* ``t``'s single-table predicates render identically in every branch;
* every join predicate connecting ``t`` to the branch's other tables is
  an equality ``t.col = other_expr`` — it is replaced by a view output
  column carrying the branch-specific ``other_expr``.  Predicates that
  cannot be pulled this way keep the factorization from applying (the
  paper's "leave them inside and use JPPD" refinement is future work in
  the paper as well);
* select items referencing ``t`` must be identical in all branches (they
  are then produced by the factored table directly).

The transformed node is a new query block, so when the UNION ALL was the
root the root changes — callers use the returned node.
"""

from __future__ import annotations

from ...errors import TransformError
from ...qtree import exprutil
from ...qtree.blocks import FromItem, QueryBlock, QueryNode, SetOpBlock
from ...sql import ast
from ...sql.render import render_expr
from ..base import TargetRef, Transformation, iter_nodes_with_replacers


class JoinFactorization(Transformation):
    name = "join_factorization"
    cost_based = True

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for node, _replace in iter_nodes_with_replacers(root):
            if isinstance(node, SetOpBlock) and node.op == "UNION ALL":
                if _common_tables(node):
                    targets.append(TargetRef(node.name, "setop", node.name))
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        replaced = None
        for node, replace in iter_nodes_with_replacers(root):
            if isinstance(node, SetOpBlock) and node.name == target.key:
                commons = _common_tables(node)
                if not commons:
                    raise TransformError(f"{self.name}: nothing to factor")
                new_block = factor_out(node, commons[0])
                if replace is None:
                    return new_block  # the set-op was the root
                replace(new_block)
                replaced = new_block
                break
        if replaced is None:
            raise TransformError(f"{self.name}: set-op {target.key!r} not found")
        return root


def _common_tables(node: SetOpBlock) -> list[str]:
    """Aliases (with identical table and local predicates) present in all
    branches and eligible for factoring."""
    if len(node.branches) < 2:
        return []
    branches = node.branches
    if not all(
        isinstance(b, QueryBlock) and b.is_spj and b.rownum_limit is None
        for b in branches
    ):
        return []
    first = branches[0]
    assert isinstance(first, QueryBlock)
    result = []
    for item in first.from_items:
        if not item.is_base_table or not item.is_inner:
            continue
        if all(
            _matching_item(b, item) is not None for b in branches[1:]
        ) and _factorable(node, item.alias) is not None:
            result.append(item.alias)
    return result


def _matching_item(block: QueryBlock, item: FromItem):
    for candidate in block.from_items:
        if (
            candidate.alias == item.alias
            and candidate.is_base_table
            and candidate.is_inner
            and candidate.table_name == item.table_name
        ):
            return candidate
    return None


def _branch_conjuncts(block: QueryBlock, alias: str):
    """Split a branch's conjuncts into (local-to-alias, joins-with-alias,
    others); None if any alias conjunct is not factorable."""
    local: list[ast.Expr] = []
    joins: list[tuple[ast.ColumnRef, ast.Expr, ast.Expr]] = []
    others: list[ast.Expr] = []
    for conjunct in block.where_conjuncts:
        refs = exprutil.aliases_referenced(conjunct)
        if alias not in refs:
            others.append(conjunct)
            continue
        if ast.contains_subquery(conjunct):
            return None
        if refs == {alias}:
            local.append(conjunct)
            continue
        matched = _t_equality(conjunct, alias)
        if matched is None:
            return None
        joins.append(matched + (conjunct,))
    return local, joins, others


def _t_equality(conjunct: ast.Expr, alias: str):
    """Match ``alias.col = expr-not-referencing-alias``."""
    if not isinstance(conjunct, ast.BinOp) or conjunct.op != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(right, ast.ColumnRef) and right.qualifier == alias:
        left, right = right, left
    if not (isinstance(left, ast.ColumnRef) and left.qualifier == alias):
        return None
    if alias in exprutil.aliases_referenced(right):
        return None
    return (left, right)


def _factorable(node: SetOpBlock, alias: str) -> Optional[str]:
    """Returns the factorization mode: ``"pulled"`` when the join
    predicates can be pulled out into the containing block (identical
    shape across branches), ``"lateral"`` when they must stay inside the
    UNION ALL view (the paper's "many cases where the common tables can
    be factorised out but the corresponding join predicates cannot be
    pulled out ... left inside the UNION ALL view, which is then joined
    by the technique described in the join predicate pushdown section",
    §2.2.5), or None when the table cannot be factored at all."""
    signatures = []
    join_shapes = []
    select_shapes = []
    pullable = True
    for branch in node.branches:
        assert isinstance(branch, QueryBlock)
        split = _branch_conjuncts(branch, alias)
        if split is None:
            # join conjuncts that are not simple t-equalities can still
            # stay inside a lateral view, as long as they are ordinary
            # conjuncts (no subqueries touching the factored table)
            if any(
                alias in exprutil.aliases_referenced(c)
                and ast.contains_subquery(c)
                for c in branch.where_conjuncts
            ):
                return None
            pullable = False
            local = [
                c for c in branch.where_conjuncts
                if exprutil.aliases_referenced(c) == {alias}
                and not ast.contains_subquery(c)
            ]
            joins = []
        else:
            local, joins, _others = split
        signatures.append(sorted(render_expr(c) for c in local))
        join_shapes.append(
            sorted((render_expr(col), "=") for col, _expr, _c in joins)
        )
        shape = []
        for sel in branch.select_items:
            refs = exprutil.aliases_referenced(sel.expr)
            if alias in refs:
                if refs != {alias}:
                    return None
                shape.append(render_expr(sel.expr))
            else:
                shape.append(None)
        select_shapes.append(shape)
    if len({tuple(s) for s in signatures}) != 1:
        return None
    if len({tuple(s) for s in select_shapes}) != 1:
        return None
    if pullable and len({tuple(s) for s in join_shapes}) == 1:
        return "pulled"
    return "lateral"


def factor_out(node: SetOpBlock, alias: str) -> QueryBlock:
    """Build the factored query block around the residual UNION ALL."""
    mode = _factorable(node, alias)
    if mode == "lateral":
        return _factor_out_lateral(node, alias)
    view_alias = FromItem.fresh_alias("jf")
    first = node.branches[0]
    assert isinstance(first, QueryBlock)
    factored_item = _matching_item(first, first.from_item(alias))
    assert factored_item is not None

    first_split = _branch_conjuncts(first, alias)
    assert first_split is not None
    local_conjuncts = [c.clone() for c in first_split[0]]

    # Outer select: positions produced by t directly vs by the view.
    outer_selects: list[ast.SelectItem] = []
    view_width = 0
    view_positions: list[int] = []
    for i, sel in enumerate(first.select_items):
        if alias in exprutil.aliases_referenced(sel.expr):
            outer_selects.append(ast.SelectItem(sel.expr.clone(), sel.alias))
        else:
            column = f"c_{view_width}"
            view_width += 1
            view_positions.append(i)
            outer_selects.append(
                ast.SelectItem(ast.ColumnRef(view_alias, column), sel.alias)
            )

    # Join conjuncts: t.col = V.j_k, with each branch exposing its own
    # expression under j_k.
    join_templates = []
    for col, _expr, _conjunct in sorted(
        first_split[1], key=lambda t: render_expr(t[0])
    ):
        join_templates.append(col)

    outer_joins = [
        ast.BinOp("=", col.clone(), ast.ColumnRef(view_alias, f"j_{k}"))
        for k, col in enumerate(join_templates)
    ]

    new_branches: list[QueryNode] = []
    for branch in node.branches:
        assert isinstance(branch, QueryBlock)
        split = _branch_conjuncts(branch, alias)
        assert split is not None
        _local, joins, others = split
        selects = [
            ast.SelectItem(branch.select_items[i].expr.clone(), f"c_{k}")
            for k, i in enumerate(view_positions)
        ]
        joins_sorted = sorted(joins, key=lambda t: render_expr(t[0]))
        for k, (_col, expr, _conjunct) in enumerate(joins_sorted):
            selects.append(ast.SelectItem(expr.clone(), f"j_{k}"))
        new_branches.append(
            QueryBlock(
                select_items=selects,
                from_items=[
                    item.clone()
                    for item in branch.from_items
                    if item.alias != alias
                ],
                where_conjuncts=[c.clone() for c in others],
            )
        )

    view = SetOpBlock("UNION ALL", new_branches)
    # Set-op ORDER BY items name output columns; re-point them at the new
    # outer select expressions.
    by_name = {
        name: sel.expr
        for name, sel in zip(node.output_columns(), outer_selects)
    }
    order_by = []
    for o in node.order_by:
        if isinstance(o.expr, ast.ColumnRef) and o.expr.qualifier is None \
                and o.expr.name in by_name:
            order_by.append(ast.OrderItem(by_name[o.expr.name].clone(),
                                          o.descending))
        else:
            order_by.append(o.clone())
    outer = QueryBlock(
        select_items=outer_selects,
        from_items=[
            FromItem(alias, factored_item.source, factored_item.table),
            FromItem(view_alias, view),
        ],
        where_conjuncts=local_conjuncts + outer_joins,
        order_by=order_by,
    )
    return outer


def _factor_out_lateral(node: SetOpBlock, alias: str) -> QueryBlock:
    """Factorization with the join predicates *left inside* the UNION ALL
    view: the branches keep their conjuncts referencing the factored
    table, which becomes a correlation into the containing block — the
    view is lateral and joins by nested loops after the factored table
    (the JPPD technique, §2.2.5's "next release" refinement)."""
    view_alias = FromItem.fresh_alias("jf")
    first = node.branches[0]
    assert isinstance(first, QueryBlock)
    factored_item = _matching_item(first, first.from_item(alias))
    assert factored_item is not None

    local_rendered = {
        render_expr(c)
        for c in first.where_conjuncts
        if exprutil.aliases_referenced(c) == {alias}
    }

    outer_selects: list[ast.SelectItem] = []
    view_width = 0
    view_positions: list[int] = []
    for i, sel in enumerate(first.select_items):
        if alias in exprutil.aliases_referenced(sel.expr):
            outer_selects.append(ast.SelectItem(sel.expr.clone(), sel.alias))
        else:
            column = f"c_{view_width}"
            view_width += 1
            view_positions.append(i)
            outer_selects.append(
                ast.SelectItem(ast.ColumnRef(view_alias, column), sel.alias)
            )

    local_conjuncts = []
    new_branches: list[QueryNode] = []
    for branch_index, branch in enumerate(node.branches):
        assert isinstance(branch, QueryBlock)
        keep: list[ast.Expr] = []
        for conjunct in branch.where_conjuncts:
            refs = exprutil.aliases_referenced(conjunct)
            if refs == {alias}:
                if branch_index == 0:
                    local_conjuncts.append(conjunct.clone())
                continue  # shared local predicate moves to the outer block
            keep.append(conjunct.clone())
        selects = [
            ast.SelectItem(branch.select_items[i].expr.clone(), f"c_{k}")
            for k, i in enumerate(view_positions)
        ]
        new_branches.append(
            QueryBlock(
                select_items=selects,
                from_items=[
                    item.clone()
                    for item in branch.from_items
                    if item.alias != alias
                ],
                where_conjuncts=keep,
            )
        )

    view = SetOpBlock("UNION ALL", new_branches)
    by_name = {
        name: sel.expr
        for name, sel in zip(node.output_columns(), outer_selects)
    }
    order_by = []
    for o in node.order_by:
        if isinstance(o.expr, ast.ColumnRef) and o.expr.qualifier is None \
                and o.expr.name in by_name:
            order_by.append(
                ast.OrderItem(by_name[o.expr.name].clone(), o.descending)
            )
        else:
            order_by.append(o.clone())
    return QueryBlock(
        select_items=outer_selects,
        from_items=[
            FromItem(alias, factored_item.source, factored_item.table),
            FromItem(view_alias, view),
        ],
        where_conjuncts=local_conjuncts,
        order_by=order_by,
    )
