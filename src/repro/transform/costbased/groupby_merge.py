"""Group-by and distinct view merging (§2.2.2, "group-by pull-up").

Merges an inline view containing GROUP BY (or SELECT DISTINCT) into its
containing block, delaying the aggregation until after the outer joins
(Q10 -> Q11 in the paper).  The merged block groups on the view's
grouping expressions plus the ROWID of every other from-item of the outer
block, which keeps exactly one output row per (outer row x view group) —
the same device the paper shows with ``j.rowid`` in Q11.

Outer predicates referencing the view's aggregate outputs move into the
merged block's HAVING, rewritten against the real aggregate expressions.

Delayed aggregation may be better (joins and filters shrink the data
before aggregation) or worse (early aggregation shrinks the join input) —
"these tradeoffs are the reason why this decision must be cost-based".

Legality conditions enforced here:

* the view is INNER-joined and not laterally correlated;
* the view has no HAVING, ROWNUM, window functions, or nested set-ops
  (HAVING could be supported by moving it along; kept out for clarity);
* the containing block has no aggregation of its own (merging would nest
  two aggregation levels) and no ROWNUM;
* every other from-item of the outer block is a base table or a derived
  table (whose output columns stand in for ROWID);
* aggregate outputs of the view are referenced only in places that can
  move to HAVING (WHERE conjuncts / select list), never in join
  conditions of non-inner items.
"""

from __future__ import annotations

from ...errors import TransformError
from ...qtree import exprutil
from ...qtree.blocks import FromItem, QueryBlock, QueryNode
from ...sql import ast
from ..base import TargetRef, Transformation, ensure_unique_aliases


class GroupByViewMerging(Transformation):
    name = "groupby_merge"
    cost_based = True

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            for item in block.from_items:
                if self._mergeable(block, item):
                    targets.append(TargetRef(block.name, "view", item.alias))
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        item = block.from_item(str(target.key))
        if not self._mergeable(block, item):
            raise TransformError(f"{self.name}: view is not mergeable")
        merge_groupby_view(block, item)
        return root

    # -- legality ----------------------------------------------------------------

    def _mergeable(self, block: QueryBlock, item: FromItem) -> bool:
        if not item.is_derived or not item.is_inner:
            return False
        view = item.subquery
        if not isinstance(view, QueryBlock):
            return False
        if not (view.group_by or view.distinct or view.has_aggregates):
            return False
        if view.having_conjuncts or view.rownum_limit is not None:
            return False
        if view.grouping_sets is not None:
            return False  # rollup views cannot be flattened into a join
        if view.is_correlated:
            return False
        if any(
            isinstance(n, ast.WindowFunc)
            for sel in view.select_items
            for n in sel.expr.walk()
        ):
            return False
        if view.distinct and (view.group_by or view.has_aggregates):
            return False
        # Outer block must not itself aggregate, group, or limit.
        if block.group_by or block.having_conjuncts or block.has_aggregates:
            return False
        if block.rownum_limit is not None:
            return False
        if block.distinct:
            return False

        agg_columns = self._aggregate_columns(view)
        # Aggregate outputs may not appear in non-inner join conditions or
        # inside subqueries (they must be movable to HAVING).
        for other in block.from_items:
            for conjunct in other.join_conjuncts:
                if self._references_columns(conjunct, item.alias, agg_columns):
                    return False
        for conjunct in block.where_conjuncts:
            if ast.contains_subquery(conjunct) and self._references_columns(
                conjunct, item.alias, agg_columns
            ):
                return False
        for order in block.order_by:
            if self._references_columns(order.expr, item.alias, agg_columns):
                # ORDER BY on an aggregate output is fine (it stays in the
                # select list) — allowed.
                continue
        return True

    @staticmethod
    def _aggregate_columns(view: QueryBlock) -> set[str]:
        return {
            name
            for name, sel in zip(view.output_columns(), view.select_items)
            if ast.contains_aggregate(sel.expr)
        }

    @staticmethod
    def _references_columns(expr: ast.Expr, alias: str, columns: set[str]) -> bool:
        return any(
            ref.qualifier == alias and ref.name in columns
            for ref in ast.column_refs_in(expr)
        )


def merge_groupby_view(block: QueryBlock, item: FromItem) -> None:
    """Perform the merge.  See class docstring for the construction."""
    view = item.subquery
    assert isinstance(view, QueryBlock)
    position = block.from_items.index(item)
    block.from_items.remove(item)
    ensure_unique_aliases(block, view)

    agg_columns = {
        name
        for name, sel in zip(view.output_columns(), view.select_items)
        if ast.contains_aggregate(sel.expr)
    }
    mapping: dict[tuple[str, str], ast.Expr] = {}
    for name, sel in zip(view.output_columns(), view.select_items):
        mapping[(item.alias, name)] = sel.expr

    # Split outer WHERE: conjuncts touching aggregate outputs -> HAVING.
    stays: list[ast.Expr] = []
    moves_to_having: list[ast.Expr] = []
    for conjunct in block.where_conjuncts:
        if GroupByViewMerging._references_columns(
            conjunct, item.alias, agg_columns
        ):
            moves_to_having.append(conjunct)
        else:
            stays.append(conjunct)
    block.where_conjuncts = stays

    # Grouping keys: the view's group-by expressions (or its select
    # expressions for a DISTINCT view) plus a key per remaining from-item.
    group_by: list[ast.Expr] = []
    if view.group_by:
        group_by.extend(g.clone() for g in view.group_by)
    elif view.distinct:
        group_by.extend(sel.expr.clone() for sel in view.select_items)
    for other in block.from_items:
        if other.is_base_table:
            group_by.append(ast.ColumnRef(other.alias, "rowid"))
        else:
            group_by.extend(
                ast.ColumnRef(other.alias, column)
                for column in other.output_columns()
            )

    exprutil.substitute_columns_in_node(block, mapping)
    block.having_conjuncts = [
        exprutil.substitute_columns(c, mapping) for c in moves_to_having
    ]
    block.group_by = group_by
    block.from_items[position:position] = view.from_items
    block.where_conjuncts.extend(view.where_conjuncts)
