"""Group-by placement / eager aggregation (§2.2.4).

Pushes the GROUP BY of a block down past its joins onto one from-item
(the one the aggregate arguments come from), creating a pre-aggregating
inline view — Yan & Larson's eager aggregation [23, 24], which the paper
adopts as its group-by pushdown.

Given ``SELECT g.., agg(t.x) FROM t, R.. WHERE .. GROUP BY g..`` where all
aggregate arguments reference only ``t``, the transformation produces::

    SELECT g.., agg'(vt.px) FROM (SELECT keys, t-group-cols,
                                         partial aggs, COUNT(*) cnt
                                  FROM t WHERE t-local preds
                                  GROUP BY keys, t-group-cols) vt, R..
    WHERE ..  GROUP BY g..

with the partial-aggregate rewrites SUM->SUM, MIN->MIN, MAX->MAX,
COUNT(x)->SUM(cnt_x), COUNT(*)->SUM(cnt), AVG->SUM(sum_x)/SUM(cnt_x).
The view groups on every ``t`` column referenced outside the aggregates
(join keys, group-by columns), so the outer query is unchanged apart from
re-pointing those references at the view.

This is always semantically valid (each view row stands for ``cnt`` base
rows; joins replicate whole groups); whether it *pays* depends on how
much the pre-aggregation shrinks ``t`` versus the group-count blowup —
"in Oracle, the GBP transformation is never applied using heuristics"
(§4.3).

DISTINCT aggregates are not eligible (their partials do not compose).
"""

from __future__ import annotations

from ...errors import TransformError
from ...qtree import exprutil
from ...qtree.blocks import FromItem, QueryBlock, QueryNode
from ...sql import ast
from ..base import TargetRef, Transformation


class GroupByPlacement(Transformation):
    name = "groupby_placement"
    cost_based = True

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for block in root.iter_blocks():
            if not isinstance(block, QueryBlock):
                continue
            alias = self._eligible_alias(block)
            if alias is not None:
                targets.append(TargetRef(block.name, "view", alias))
        return targets

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        block = self._require_block(root, target)
        if self._eligible_alias(block) != target.key:
            raise TransformError(f"{self.name}: target no longer eligible")
        push_group_by(block, str(target.key))
        return root

    # -- eligibility ---------------------------------------------------------------

    def _eligible_alias(self, block: QueryBlock):
        if not block.group_by or not block.has_aggregates:
            return None
        if block.rownum_limit is not None or block.distinct:
            return None
        if block.grouping_sets is not None:
            return None
        if len(block.from_items) < 2:
            return None
        if any(
            isinstance(n, ast.WindowFunc)
            for sel in block.select_items
            for n in sel.expr.walk()
        ):
            return None
        aggregates = _aggregate_calls(block)
        if not aggregates:
            return None
        target_aliases: set[str] = set()
        for call in aggregates:
            if call.distinct:
                return None
            if call.args and isinstance(call.args[0], ast.Star):
                continue  # COUNT(*) composes with any target
            refs = exprutil.aliases_referenced(call.args[0]) if call.args else set()
            if len(refs) != 1:
                return None
            target_aliases |= refs
        if len(target_aliases) > 1:
            return None
        if target_aliases:
            candidates = [next(iter(target_aliases))]
        else:
            # COUNT(*)-only query: any inner base table can pre-aggregate.
            candidates = [
                item.alias for item in block.from_items if item.is_base_table
            ]
        for alias in candidates:
            if self._alias_pushable(block, alias):
                return alias
        return None

    def _alias_pushable(self, block: QueryBlock, alias: str) -> bool:
        try:
            item = block.from_item(alias)
        except TransformError:
            return False
        if not item.is_base_table or not item.is_inner:
            return False
        # Every conjunct referencing the item must be free of subqueries
        # (they would need re-correlation through the view).
        for conjunct in block.where_conjuncts:
            refs = exprutil.aliases_referenced(conjunct) & block.aliases()
            if alias not in refs:
                continue
            if ast.contains_subquery(conjunct):
                return False
        for other in block.from_items:
            if other is item:
                continue
            for conjunct in other.join_conjuncts:
                if alias in exprutil.aliases_referenced(conjunct):
                    return False  # keep it simple: no outer-join interplay
        # HAVING may reference aggregates (rewritten) and group-by columns.
        return True


def _aggregate_calls(block: QueryBlock) -> list[ast.FuncCall]:
    calls: list[ast.FuncCall] = []

    def collect(expr: ast.Expr) -> None:
        if isinstance(expr, ast.WindowFunc):
            return
        if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
            calls.append(expr)
            return
        for child in expr.children():
            collect(child)

    for sel in block.select_items:
        collect(sel.expr)
    for conjunct in block.having_conjuncts:
        collect(conjunct)
    for order in block.order_by:
        collect(order.expr)
    return calls


def push_group_by(block: QueryBlock, alias: str) -> FromItem:
    """Apply eager aggregation onto from-item *alias* of *block*."""
    item = block.from_item(alias)
    view_alias = FromItem.fresh_alias("gbp")

    # Partition the block's conjuncts.
    local: list[ast.Expr] = []
    rest: list[ast.Expr] = []
    for conjunct in block.where_conjuncts:
        refs = exprutil.aliases_referenced(conjunct) & block.aliases()
        if refs == {alias} and not ast.contains_subquery(conjunct):
            local.append(conjunct)
        else:
            rest.append(conjunct)
    block.where_conjuncts = rest

    # Columns of `alias` referenced outside aggregate arguments become the
    # view's grouping keys.
    key_columns = _non_aggregate_columns(block, alias)

    view = QueryBlock(
        from_items=[FromItem(item.alias, item.source, item.table)],
        where_conjuncts=local,
    )
    mapping: dict[tuple[str, str], ast.Expr] = {}
    for i, column in enumerate(sorted(key_columns)):
        out = f"k_{i}"
        view.select_items.append(
            ast.SelectItem(ast.ColumnRef(alias, column), out)
        )
        view.group_by.append(ast.ColumnRef(alias, column))
        mapping[(alias, column)] = ast.ColumnRef(view_alias, out)

    # Partial aggregates + rewrite of the outer aggregate calls.
    partials: dict[str, str] = {}  # rendered partial -> output column

    def partial_column(call: ast.FuncCall) -> str:
        from ...sql.render import render_expr

        key = render_expr(call)
        out = partials.get(key)
        if out is None:
            out = f"p_{len(partials)}"
            partials[key] = out
            view.select_items.append(ast.SelectItem(call, out))
        return out

    def rewrite_aggregates(expr: ast.Expr):
        def replace(node: ast.Expr):
            if isinstance(node, ast.WindowFunc):
                return node.clone()
            if not (isinstance(node, ast.FuncCall) and node.is_aggregate):
                return None
            if node.args and isinstance(node.args[0], ast.Star):
                out = partial_column(ast.FuncCall("COUNT", [ast.Star()]))
                return ast.FuncCall("SUM", [ast.ColumnRef(view_alias, out)])
            arg = node.args[0]
            if node.name in ("MIN", "MAX"):
                out = partial_column(ast.FuncCall(node.name, [arg.clone()]))
                return ast.FuncCall(node.name, [ast.ColumnRef(view_alias, out)])
            if node.name == "SUM":
                out = partial_column(ast.FuncCall("SUM", [arg.clone()]))
                return ast.FuncCall("SUM", [ast.ColumnRef(view_alias, out)])
            if node.name == "COUNT":
                out = partial_column(ast.FuncCall("COUNT", [arg.clone()]))
                return ast.FuncCall("SUM", [ast.ColumnRef(view_alias, out)])
            if node.name == "AVG":
                sum_out = partial_column(ast.FuncCall("SUM", [arg.clone()]))
                cnt_out = partial_column(ast.FuncCall("COUNT", [arg.clone()]))
                return ast.BinOp(
                    "/",
                    ast.FuncCall("SUM", [ast.ColumnRef(view_alias, sum_out)]),
                    ast.FuncCall("SUM", [ast.ColumnRef(view_alias, cnt_out)]),
                )
            raise TransformError(f"cannot push aggregate {node.name}")

        return exprutil.map_expr(expr, replace)

    block.select_items = [
        ast.SelectItem(rewrite_aggregates(sel.expr), sel.alias)
        for sel in block.select_items
    ]
    block.having_conjuncts = [
        rewrite_aggregates(c) for c in block.having_conjuncts
    ]
    block.order_by = [
        ast.OrderItem(rewrite_aggregates(o.expr), o.descending)
        for o in block.order_by
    ]

    # Re-point remaining references at the view.
    exprutil.substitute_columns_in_node(block, mapping)
    block.group_by = [exprutil.substitute_columns(g, mapping) for g in block.group_by]

    position = block.from_items.index(item)
    block.from_items[position] = FromItem(view_alias, view)
    return block.from_items[position]


def _non_aggregate_columns(block: QueryBlock, alias: str) -> set[str]:
    """Columns of *alias* referenced anywhere outside aggregate args."""
    columns: set[str] = set()

    def scan(expr: ast.Expr) -> None:
        if isinstance(expr, ast.FuncCall) and expr.is_aggregate:
            return
        if isinstance(expr, ast.ColumnRef):
            if expr.qualifier == alias:
                columns.add(expr.name)
            return
        for child in expr.children():
            scan(child)
        if isinstance(expr, ast.SubqueryExpr) and hasattr(
            expr.query, "correlation_refs"
        ):
            for ref in expr.query.correlation_refs():
                if ref.qualifier == alias:
                    columns.add(ref.name)

    for sel in block.select_items:
        scan(sel.expr)
    for conjunct in block.where_conjuncts:
        scan(conjunct)
    for conjunct in block.having_conjuncts:
        scan(conjunct)
    for g in block.group_by:
        scan(g)
    for o in block.order_by:
        scan(o.expr)
    return columns
