"""Disjunction into UNION ALL — OR-expansion (§2.2.8).

A top-level OR conjunct ``d1 OR d2 OR ... OR dk`` in an SPJ block is
expanded into a UNION ALL of k copies of the block, branch *i* keeping
``d_i AND LNNVL(d_1) AND .. AND LNNVL(d_{i-1})``.  ``LNNVL(p)`` is true
when *p* is false or unknown (Oracle's function), which makes the
branches disjoint without changing NULL semantics, so no duplicate
elimination is needed.

Without the expansion the disjunction is applied as a post-filter over
what may be a Cartesian product; each expanded branch instead lets the
optimizer drive an index from its own disjunct.  The expansion multiplies
the number of blocks to optimize and scans the non-driving tables once
per branch — hence cost-based.

Only SPJ blocks are expanded (aggregation above a UNION ALL would need an
extra rollup), and the disjunct count is capped.
"""

from __future__ import annotations

from ...errors import TransformError
from ...qtree.blocks import QueryBlock, QueryNode, SetOpBlock
from ...sql import ast
from ..base import TargetRef, Transformation, iter_nodes_with_replacers

#: do not expand disjunctions wider than this
MAX_DISJUNCTS = 8


class OrExpansion(Transformation):
    name = "or_expansion"
    cost_based = True

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        targets = []
        for node, _replace in iter_nodes_with_replacers(root):
            if not isinstance(node, QueryBlock):
                continue
            for i, conjunct in enumerate(node.where_conjuncts):
                if self._expandable(node, conjunct):
                    targets.append(TargetRef(node.name, "conjunct", i))
        return targets

    def _expandable(self, block: QueryBlock, conjunct: ast.Expr) -> bool:
        if not isinstance(conjunct, ast.Or):
            return False
        if not 2 <= len(conjunct.operands) <= MAX_DISJUNCTS:
            return False
        if ast.contains_subquery(conjunct):
            return False
        if not block.is_spj:
            return False
        if block.order_by:
            return False
        if any(not item.is_inner for item in block.from_items):
            return False
        return True

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        for node, replace in iter_nodes_with_replacers(root):
            if not isinstance(node, QueryBlock) or node.name != target.block:
                continue
            index = int(target.key)  # type: ignore[arg-type]
            if index >= len(node.where_conjuncts):
                raise TransformError(f"{self.name}: conjunct index out of range")
            conjunct = node.where_conjuncts[index]
            if not self._expandable(node, conjunct):
                raise TransformError(f"{self.name}: conjunct is not expandable")
            del node.where_conjuncts[index]
            expanded = expand_or(node, conjunct)
            if replace is None:
                return expanded
            replace(expanded)
            return root
        raise TransformError(f"{self.name}: block {target.block!r} not found")


def expand_or(block: QueryBlock, disjunction: ast.Or) -> SetOpBlock:
    """Build the UNION ALL of per-disjunct copies of *block*."""
    branches: list[QueryNode] = []
    for i, disjunct in enumerate(disjunction.operands):
        branch = block.clone()
        # Block names must stay unique within one tree so TargetRef paths
        # of later transformations resolve unambiguously.
        for nested in branch.iter_blocks():
            nested.name = f"{nested.name}$or{i + 1}"
        branch.where_conjuncts.append(disjunct.clone())
        for earlier in disjunction.operands[:i]:
            branch.where_conjuncts.append(
                ast.FuncCall("LNNVL", [earlier.clone()])
            )
        branches.append(branch)
    return SetOpBlock("UNION ALL", branches)
