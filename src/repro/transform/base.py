"""Transformation framework base classes.

A :class:`Transformation` can *find* the objects it applies to in a query
tree and *apply* itself to one of them.  Objects are addressed by
:class:`TargetRef` — a stable path (block name + kind + key) that survives
the deep copies the cost-based framework makes, because
:meth:`QueryBlock.clone` preserves block names, from-item aliases, and
conjunct order.

Heuristic transformations (§2.1) are applied imperatively wherever legal
via :func:`apply_everywhere`.  Cost-based transformations (§2.2) expose
their objects to the CBQT framework, which enumerates transformation
states over them (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..catalog.schema import Catalog
from ..errors import TransformError
from ..qtree.blocks import FromItem, QueryBlock, QueryNode, SetOpBlock
from ..resilience import blame, faults


@dataclass(frozen=True)
class TargetRef:
    """Stable reference to one transformable object inside a query tree.

    ``kind`` is transformation-specific: ``"subquery"`` (index into
    :meth:`QueryBlock.subquery_exprs`), ``"view"`` (from-item alias),
    ``"setop"`` (the named SetOpBlock), ``"predicate"`` (index into
    ``where_conjuncts``), ...
    """

    block: str
    kind: str
    key: object

    def describe(self) -> str:
        return f"{self.kind}[{self.key}]@{self.block}"


def find_block(root: QueryNode, name: str) -> Optional[QueryBlock]:
    """Locate the query block called *name* in *root*."""
    for block in root.iter_blocks():
        if isinstance(block, QueryBlock) and block.name == name:
            return block
    return None


def find_setop(root: QueryNode, name: str) -> Optional[SetOpBlock]:
    """Locate the SetOpBlock called *name*, searching every position a
    node can occupy (root, derived tables, subquery bodies)."""
    for node, _replace in iter_nodes_with_replacers(root):
        if isinstance(node, SetOpBlock) and node.name == name:
            return node
    return None


def iter_nodes_with_replacers(root: QueryNode, replace_root=None):
    """Yield every query node in the tree together with a callable that
    replaces it in its parent.  Used by transformations that substitute a
    whole node (set-op into join, OR expansion).

    The root's replacer is *replace_root* (may be None when the caller
    handles root replacement itself).
    """
    yield root, replace_root
    if isinstance(root, SetOpBlock):
        for i, branch in enumerate(list(root.branches)):
            def replace_branch(new, node=root, index=i):
                node.branches[index] = new

            yield from iter_nodes_with_replacers(branch, replace_branch)
    elif isinstance(root, QueryBlock):
        for item in root.from_items:
            if item.is_derived:
                def replace_source(new, target=item):
                    target.source = new

                yield from iter_nodes_with_replacers(item.subquery, replace_source)
        for sub in root.subquery_exprs():
            if isinstance(sub.query, QueryNode):
                def replace_query(new, target=sub):
                    target.query = new

                yield from iter_nodes_with_replacers(sub.query, replace_query)


class Transformation:
    """Base class for all transformations."""

    #: short identifier used in reports and configuration
    name: str = "transformation"
    #: whether the CBQT framework must cost this transformation (§2.2)
    cost_based: bool = False

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    def find_targets(self, root: QueryNode) -> list[TargetRef]:
        """All objects in *root* this transformation can apply to."""
        raise NotImplementedError

    def apply(self, root: QueryNode, target: TargetRef) -> QueryNode:
        """Apply to one target, in place; returns the (possibly new) root.

        Must be called on a tree where :meth:`find_targets` (re-)reported
        *target*; raises :class:`TransformError` otherwise.
        """
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------

    def _require_block(self, root: QueryNode, target: TargetRef) -> QueryBlock:
        block = find_block(root, target.block)
        if block is None:
            raise TransformError(
                f"{self.name}: block {target.block!r} not found"
            )
        return block

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def apply_everywhere(transformation: Transformation, root: QueryNode) -> QueryNode:
    """Imperatively apply a heuristic transformation until no targets
    remain (a transformation may expose new targets — e.g. merging one
    view un-nests another)."""
    for _round in range(64):  # safety bound against non-terminating rules
        targets = transformation.find_targets(root)
        if not targets:
            return root
        with blame(transformation.name):
            faults.check(f"transform.{transformation.name}")
            root = transformation.apply(root, targets[0])
    raise TransformError(
        f"{transformation.name}: did not reach a fixpoint after 64 rounds"
    )


def ensure_unique_aliases(block: QueryBlock, incoming: QueryBlock) -> dict[str, str]:
    """Rename from-item aliases of *incoming* (in place) so they do not
    collide with *block*'s aliases.  Returns the rename map applied."""
    from ..qtree import exprutil

    incoming_blocks = {
        id(b) for b in incoming.iter_blocks() if isinstance(b, QueryBlock)
    }
    taken = {
        b_alias
        for b in block.iter_blocks()
        if isinstance(b, QueryBlock) and id(b) not in incoming_blocks
        for b_alias in b.aliases()
    }
    mapping: dict[str, str] = {}
    for item in incoming.from_items:
        if item.alias in taken:
            new_alias = FromItem.fresh_alias(item.alias)
            mapping[item.alias] = new_alias
    if mapping:
        exprutil.rename_qualifiers_in_node(incoming, mapping)
        for item in incoming.from_items:
            if item.alias in mapping:
                item.alias = mapping[item.alias]
    return mapping
