"""Public facade: an embedded relational database whose optimizer
implements the paper's cost-based query transformation framework.

Typical use::

    from repro import Database

    db = Database()
    db.execute_ddl("CREATE TABLE employees (emp_id INT PRIMARY KEY, ...)")
    db.insert("employees", rows)
    db.analyze()

    result = db.execute("SELECT ...")       # optimize + run
    print(db.explain("SELECT ..."))         # plan + transformed SQL
    report = db.optimize("SELECT ...").report  # CBQT decisions & states
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Optional, TextIO

from .analysis import DiagnosticReport, TransformationAuditor
from .catalog.schema import Catalog, Index, TableDef
from .catalog.statistics import StatisticsRegistry, collect_statistics
from .cbqt.caching import DynamicSamplingCache
from .cbqt.framework import CbqtConfig, CbqtFramework, OptimizationReport
from .durability import (
    DurabilityConfig,
    DurabilityManager,
    RecoveryReport,
)
from .engine.executor import ExecStats, Executor
from .engine.expressions import FunctionRegistry
from .engine.reference import ReferenceEvaluator
from .engine.tables import Storage, StorageSnapshot
from .engine.vector import VectorExecutor
from .engine.vector.parallel import worker_count
from .errors import (
    CatalogError,
    DurabilityError,
    ExecutionError,
    ReproError,
    StatementCancelled,
    StatementTimeout,
)
from .obs import (
    MetricsRegistry,
    Tracer,
    annotation_lines,
    format_explain_analyze,
)
from .optimizer.annotations import AnnotationStore
from .optimizer.costmodel import DEFAULT_COST_MODEL, CostModel
from .optimizer.memo import MemoSession, PlanMemo
from .optimizer.physical import OptimizerCounters, PhysicalOptimizer
from .optimizer.plans import Plan
from .qtree import build_query_tree
from .qtree.binds import apply_peeks, has_peeked_binds
from .qtree.blocks import QueryNode
from .resilience import (
    CancelToken,
    DegradationInfo,
    QuarantineRegistry,
    ResilienceConfig,
    SearchGovernor,
    activate,
)
from .sql import ast, parse_query, parse_statement

#: execution engines selectable per database / per statement; "vector"
#: (the default) runs the batch engine, "parallel" adds morsel-parallel
#: scans/joins/aggregation, "row" is the classic row-at-a-time escape
#: hatch (also reachable via the ``REPRO_EXEC`` environment variable)
EXECUTOR_MODES = ("row", "vector", "parallel")


def _default_executor_mode() -> str:
    mode = os.environ.get("REPRO_EXEC", "").strip().lower()
    if not mode:
        return "vector"
    if mode not in EXECUTOR_MODES:
        raise ExecutionError(
            f"REPRO_EXEC={mode!r} is not one of {'/'.join(EXECUTOR_MODES)}"
        )
    return mode


def _env_memo_enabled() -> bool:
    """Default for :attr:`OptimizerConfig.plan_memo`, from ``REPRO_MEMO``
    (the plan-stability CI job runs a leg with ``REPRO_MEMO=0`` to prove
    the memo changes no chosen plan)."""
    return os.environ.get("REPRO_MEMO", "").strip().lower() not in (
        "0", "false", "off", "no",
    )


_TRANSFORMATION_NAMES: Optional[frozenset] = None


def _all_transformation_names() -> frozenset:
    """Every registered transformation name (computed once; the ladder
    consults this on each optimize call)."""
    global _TRANSFORMATION_NAMES
    if _TRANSFORMATION_NAMES is None:
        from .transform.pipeline import COST_BASED_ORDER, HEURISTIC_ORDER

        _TRANSFORMATION_NAMES = frozenset(
            cls.name for cls in HEURISTIC_ORDER + COST_BASED_ORDER
        )
    return _TRANSFORMATION_NAMES


@dataclass
class OptimizerConfig:
    """All optimizer knobs; the evaluation section's switches map 1:1.

    * Figure 2: ``OptimizerConfig()`` vs ``OptimizerConfig.heuristic_mode()``
    * Figure 3: default vs ``OptimizerConfig.without("unnest_view",
      "subquery_merge")``
    * Figure 4: default vs ``OptimizerConfig.without("jppd")``
    * Table 2: ``replace(config, cbqt=replace(config.cbqt,
      search_strategy="linear"))`` etc.
    """

    cbqt: CbqtConfig = field(default_factory=CbqtConfig)
    #: resilience layer: degradation ladder, search governor, quarantine
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    cost_model: CostModel = DEFAULT_COST_MODEL
    #: reuse of query sub-tree cost annotations (§3.4.2)
    annotation_reuse: bool = True
    #: cross-statement subplan memo (generalized annotation reuse; see
    #: :mod:`repro.optimizer.memo`); also requires annotation_reuse
    plan_memo: bool = field(default_factory=_env_memo_enabled)
    #: left-deep DP up to this many from-items, greedy beyond
    dp_threshold: int = 8
    #: dynamic sampling for tables without statistics (§3.4.4)
    dynamic_sampling: bool = True

    @staticmethod
    def heuristic_mode() -> "OptimizerConfig":
        """Pre-10g behaviour: transformations by heuristic rules only."""
        return OptimizerConfig(cbqt=CbqtConfig(enabled=False))

    def without(self, *names: str) -> "OptimizerConfig":
        """Copy with the named transformations disabled entirely."""
        disabled = self.cbqt.disabled_transformations | frozenset(names)
        return replace(
            self, cbqt=replace(self.cbqt, disabled_transformations=disabled)
        )

    def with_strategy(self, strategy: Optional[str]) -> "OptimizerConfig":
        """Copy with a forced state-space search strategy."""
        return replace(self, cbqt=replace(self.cbqt, search_strategy=strategy))


@dataclass
class OptimizedQuery:
    """Outcome of optimizing (not running) one query."""

    sql: str
    tree: QueryNode
    plan: Plan
    report: OptimizationReport
    counters: OptimizerCounters
    columns: list[str]

    @property
    def transformed_sql(self) -> str:
        return self.report.transformed_sql

    @property
    def estimated_cost(self) -> float:
        return self.plan.cost

    def explain(self) -> str:
        lines = annotation_lines(self.report)
        lines.append(self.plan.describe())
        return "\n".join(lines)


@dataclass
class ReadSnapshot:
    """A consistent point-in-time read handle over one database.

    Pins every table's current copy-on-write version
    (:class:`~repro.engine.tables.StorageSnapshot`) together with the
    catalog/statistics version counters observed at pin time.  Executing
    against the handle (``execute_plan(storage=snapshot.storage)``) sees
    exactly the pinned data regardless of concurrent DDL / INSERT /
    ANALYZE, and the recorded versions let the plan cache validate (and
    hard parses record) dependencies *as of the snapshot* rather than
    racing the live counters — this is the snapshot-read isolation the
    multi-session server front end (:mod:`repro.server`) serves reads
    under."""

    storage: StorageSnapshot
    #: table -> (catalog_version, statistics_version) at pin time
    table_versions: dict

    def versions(self, table: str) -> tuple:
        """Version pair for *table* as of the snapshot (the
        :class:`~repro.service.plan_cache.PlanCache` VersionReader
        contract); tables created after the pin read as (0, 0) — absent,
        exactly as the snapshot sees them."""
        return self.table_versions.get(table.lower(), (0, 0))


@dataclass
class QueryResult:
    """Rows plus full optimization/execution accounting."""

    rows: list[tuple]
    columns: list[str]
    plan: Plan
    report: OptimizationReport
    exec_stats: ExecStats
    optimize_seconds: float
    execute_seconds: float
    #: set by the service layer: "miss", "hit", or "reoptimized"
    cache_status: Optional[str] = None

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def work_units(self) -> float:
        return self.exec_stats.work_units

    def explain_analyze(self, timing: bool = True) -> str:
        """EXPLAIN ANALYZE output: the annotation header plus the plan
        with estimated vs. actual rows, per-operator Q-error, invocation
        counts, and (when the run was profiled and *timing* is on)
        wall-clock self-time per operator.  ``timing=False`` yields
        deterministic output for golden tests."""
        lines = annotation_lines(self.report, self.cache_status)
        lines.append(
            format_explain_analyze(self.plan, self.exec_stats, timing)
        )
        return "\n".join(lines)

    @property
    def total_time_units(self) -> float:
        """The paper's "total run time": optimization + execution, in one
        deterministic currency (optimizer states weigh in as work too)."""
        return self.exec_stats.work_units + self.report.total_states


class Database:
    """A database instance: in-memory by default, durable when opened
    with a *data_dir* (write-ahead log + checkpoint + recovery; see
    :mod:`repro.durability`)."""

    def __init__(
        self,
        config: Optional[OptimizerConfig] = None,
        data_dir: Optional[str] = None,
        durability: Optional[DurabilityConfig] = None,
    ):
        self.config = config or OptimizerConfig()
        self.catalog = Catalog()
        self.storage = Storage()
        self.statistics = StatisticsRegistry()
        self.functions = FunctionRegistry()
        self._sampling_cache = DynamicSamplingCache(self.storage, self.catalog)
        #: shared failure ledger for the degradation ladder (fix-control
        #: style kill switches; see repro.resilience.quarantine)
        self.quarantine = QuarantineRegistry(
            self.config.resilience.quarantine_statement_threshold,
            self.config.resilience.quarantine_global_threshold,
        )
        #: unified metrics registry (set to None to detach entirely —
        #: every recording site is guarded on it); collectors read the
        #: subsystems' own accounting at snapshot time only
        self.metrics: Optional[MetricsRegistry] = MetricsRegistry()
        self.metrics.register_collector(
            "quarantine", self.quarantine.snapshot
        )
        self.metrics.register_collector(
            "dynamic_sampling", self._sampling_cache.snapshot
        )
        #: cross-statement memo of optimized physical subplans, shared by
        #: every hard parse against this instance; epoch-invalidated on
        #: catalog/statistics version bumps (DDL, INSERT, ANALYZE)
        self.plan_memo = PlanMemo()
        self.metrics.register_collector("plan_memo", self.plan_memo.snapshot)
        #: 10053-style optimizer trace; None (the default) emits nothing.
        #: Arm with :meth:`tracing` or assign a Tracer directly.
        self.tracer: Optional[Tracer] = None
        #: default execution engine ("row" / "vector" / "parallel"),
        #: overridable per statement via ``execute(..., executor=...)``
        self.executor_mode: str = _default_executor_mode()
        #: worker count for "parallel" mode morsel dispatch
        self.executor_workers: int = worker_count()
        #: durable-storage manager; None = pure in-memory instance (the
        #: default, and the zero-cost path every mutation is guarded on)
        self.durability: Optional[DurabilityManager] = None
        #: what recovery found when a *data_dir* instance opened
        self.recovery: Optional[RecoveryReport] = None
        if data_dir is not None:
            manager = DurabilityManager(data_dir, durability, self.metrics)
            # replay drives the public mutation API below; the manager is
            # attached only afterwards so recovery does not re-log
            self.recovery = manager.open(self)
            self.durability = manager
            self.metrics.register_collector("durability", manager.stats)
        elif durability is not None:
            raise DurabilityError(
                "a DurabilityConfig needs a data_dir to apply to"
            )

    # -- schema & data -------------------------------------------------------

    def execute_ddl(self, sql: str) -> None:
        """Run one CREATE TABLE / CREATE INDEX statement."""
        stmt = parse_statement(sql)
        if isinstance(stmt, ast.CreateTable):
            self._create_table(self.catalog.create_table_from_ddl, stmt)
        elif isinstance(stmt, ast.CreateIndex):
            self._create_index(self.catalog.create_index_from_ddl, stmt)
        else:
            raise CatalogError("execute_ddl expects CREATE TABLE/INDEX")

    def create_table(self, table: TableDef) -> None:
        """Register a programmatically built table definition."""
        self._create_table(self.catalog.add_table, table)

    def create_index(self, index: Index) -> None:
        self._create_index(self.catalog.add_index, index)

    def _create_table(self, register: Callable, definition) -> None:
        """Shared CREATE TABLE path: catalog + storage + WAL, atomically.

        The catalog entry is rolled back if storage creation or WAL
        logging fails — a half-created table (in the catalog but without
        storage, or in memory but not in the log) must never survive."""
        manager = self.durability
        if manager is None:
            table = register(definition)
            try:
                self.storage.create(table)
            except BaseException:
                self.catalog.remove_table(table.name)
                raise
            return
        with manager.exclusive():
            table = register(definition)
            try:
                self.storage.create(table)
                manager.append({
                    "op": "create_table",
                    "table": table.to_dict(include_indexes=False),
                })
            except BaseException:
                self.catalog.remove_table(table.name)
                self.storage.drop(table.name)
                raise

    def _create_index(self, register: Callable, definition) -> None:
        """Shared CREATE INDEX path, mirroring :meth:`_create_table`:
        the catalog entry is rolled back when the index build (e.g. a
        unique violation over existing rows) or WAL logging fails."""
        manager = self.durability
        if manager is None:
            index = register(definition)
            try:
                self.storage.get(index.table).attach_index(index)
            except BaseException:
                self.catalog.remove_index(index.name)
                raise
            return
        with manager.exclusive():
            index = register(definition)
            try:
                data = self.storage.get(index.table)

                def log_then_publish(publish: Callable[[], None]) -> None:
                    manager.commit(
                        {"op": "create_index", "index": index.to_dict()},
                        publish,
                    )

                data.attach_index(index, on_commit=log_then_publish)
            except BaseException:
                self.catalog.remove_index(index.name)
                raise

    def insert(self, table: str, rows: Iterable[dict]) -> int:
        """Insert dict rows (missing columns become NULL).

        On a durable instance the batch's WAL record is appended —
        normalised rows, one record for the whole batch — *before* the
        new table version is published, so an acknowledged insert
        survives a crash and a failed one is invisible everywhere."""
        manager = self.durability
        if manager is None:
            count = self.storage.get(table).insert(rows)
        else:
            with manager.exclusive():
                data = self.storage.get(table)
                name = data.table.name

                def log_then_publish(
                    batch: list, publish: Callable[[], None]
                ) -> None:
                    manager.commit(
                        {"op": "insert", "table": name, "rows": batch},
                        publish,
                    )

                count = data.insert(rows, on_commit=log_then_publish)
        self.statistics.drop(table)
        self._sampling_cache.invalidate(table)
        if manager is not None:
            manager.maybe_checkpoint(self)
        return count

    def analyze(self, table: Optional[str] = None) -> None:
        """Collect exact optimizer statistics (ANALYZE)."""
        manager = self.durability
        if manager is None:
            for name, stats in self._collect_analyze(table):
                self.statistics.set(name, stats)
            return
        with manager.exclusive():
            # collect first (it can fail on an unknown table — nothing
            # may be logged then), log, then publish.  The record carries
            # no statistics: replay re-runs the same deterministic
            # collection over identical rows, and the exclusive lock
            # pins the rows the LSN refers to.
            computed = self._collect_analyze(table)
            manager.append({"op": "analyze", "table": table})
            for name, stats in computed:
                self.statistics.set(name, stats)

    def _collect_analyze(self, table: Optional[str]) -> list:
        names = [table.lower()] if table else list(self.catalog.tables)  # staticcheck: ignore[lock.discipline] GIL-atomic dict iteration, as the pre-durability analyze did
        return [
            (
                name,
                collect_statistics(
                    self.storage.get(name).rows,
                    self.catalog.table(name).column_names,
                ),
            )
            for name in names
        ]

    def register_function(
        self,
        name: str,
        fn: Callable,
        expensive_cost: Optional[float] = None,
    ) -> None:
        """Register a scalar function; a non-None *expensive_cost* marks
        it expensive for the predicate-pullup transformation (§2.2.6).

        Only the catalog fact (name + cost) is durable — the callable
        itself cannot be serialized, so applications must re-register
        their functions on every open; costing then behaves identically
        after recovery."""
        self.functions.register(name, fn)
        if expensive_cost is None:
            return
        manager = self.durability
        if manager is None:
            self.catalog.register_expensive_function(name, expensive_cost)
            return
        with manager.exclusive():
            manager.append({
                "op": "expensive_function",
                "name": name,
                "cost": expensive_cost,
            })
            self.catalog.register_expensive_function(name, expensive_cost)

    # -- durability ----------------------------------------------------------

    def checkpoint(self) -> int:
        """Serialize the full committed state to the data directory and
        truncate the WAL; returns the checkpoint's LSN."""
        if self.durability is None:
            raise DurabilityError(
                "checkpoint requires a database opened with data_dir"
            )
        return self.durability.checkpoint(self)

    def close(self) -> None:
        """Flush and release durable resources (no-op when in-memory)."""
        if self.durability is not None:
            self.durability.close()

    # -- observability ---------------------------------------------------------

    @contextmanager
    def tracing(
        self, capacity: int = 4096, sink: Optional[TextIO] = None
    ) -> Iterator[Tracer]:
        """Arm the 10053-style optimizer trace for the with-block.

        Every optimization inside the block emits ``cbqt.*`` and
        ``heuristic.*`` events into the yielded :class:`Tracer` (and, as
        JSON lines, into *sink* when given).  Nested blocks shadow the
        outer tracer; on exit the previous tracer is restored.
        """
        tracer = Tracer(capacity, sink)
        previous = self.tracer
        self.tracer = tracer
        try:
            yield tracer
        finally:
            self.tracer = previous

    def read_snapshot(self) -> ReadSnapshot:
        """Pin a consistent point-in-time view for reads: every table's
        current copy-on-write version plus the catalog/statistics version
        counters at pin time (see :class:`ReadSnapshot`)."""
        storage = self.storage.snapshot()
        versions = {
            name: (
                self.catalog.table_version(name),
                self.statistics.table_version(name),
            )
            for name in storage.versions()
        }
        return ReadSnapshot(storage, versions)

    def snapshot(self) -> dict:
        """One consistent export of every metric the instance kept:
        counters, histogram percentiles, and the absorbed subsystem
        accounting (quarantine, dynamic sampling, and — when a
        :class:`~repro.service.QueryService` wraps this database — the
        plan cache).  Empty when ``metrics`` was detached."""
        if self.metrics is None:
            return {}
        return self.metrics.snapshot()

    def _record_optimized(self, optimized: OptimizedQuery) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        report = optimized.report
        metrics.counter("optimizer.statements").inc()
        metrics.histogram("optimizer.states").record(report.total_states)
        metrics.histogram("optimizer.seconds").record(report.elapsed_seconds)
        if report.degradation is not None:
            metrics.counter("optimizer.degradations").inc()
            metrics.counter(
                f"optimizer.degraded.{report.degradation.level}"
            ).inc()
        if report.quarantined:
            metrics.counter("optimizer.quarantined_statements").inc()
        if report.governor is not None and report.governor.exhausted:
            metrics.counter("optimizer.governor_exhaustions").inc()
        memo_hits = report.memo_hits + report.memo_join_hits
        if memo_hits:
            metrics.counter("optimizer.memo_hits").inc(memo_hits)

    # -- optimization & execution ----------------------------------------------

    def parse(self, sql: str) -> QueryNode:
        """Parse + resolve into a query tree (no transformation)."""
        return build_query_tree(parse_query(sql), self.catalog)

    def _physical(
        self,
        config: OptimizerConfig,
        memo: Optional[MemoSession] = None,
    ) -> PhysicalOptimizer:
        return PhysicalOptimizer(
            self.catalog,
            self.statistics,
            config.cost_model,
            AnnotationStore(config.annotation_reuse),
            OptimizerCounters(),
            config.dp_threshold,
            self._sampling_cache if config.dynamic_sampling else None,
            memo,
        )

    def _memo_session(
        self, config: OptimizerConfig, tree: QueryNode
    ) -> Optional[MemoSession]:
        """Open the statement's memo session (None = memo-off).

        The epoch fingerprint carries everything a cached subplan depends
        on besides query structure: catalog/statistics versions (so DDL,
        INSERT, and ANALYZE invalidate, like the plan cache) and the
        costing-relevant config.  Statements with peeked bind values skip
        the memo — peeks are not part of the structural signature."""
        if not (config.plan_memo and config.annotation_reuse):
            return None
        fingerprint = (
            self.catalog.version,
            self.statistics.version,
            config.cost_model,
            config.dp_threshold,
            config.dynamic_sampling,
        )
        return self.plan_memo.begin_statement(
            fingerprint,
            peeked=has_peeked_binds(tree),
            paranoid=config.cbqt.debug_checks,
        )

    def optimize_tree(
        self,
        tree: QueryNode,
        sql: str = "",
        config: Optional[OptimizerConfig] = None,
        token: Optional[CancelToken] = None,
        rebuild: Optional[Callable[[], QueryNode]] = None,
    ) -> OptimizedQuery:
        """Transform + plan an already-built query tree.

        This is the single optimization path: ``optimize``, ``explain``,
        ``execute``, and the service layer's plan cache all funnel through
        it.  The framework may mutate *tree*; callers that need to keep a
        pristine copy (for re-optimization) must clone or re-parse.

        With ``config.resilience.fallback`` enabled this drives the
        degradation ladder: a typed error raised by a transformation or
        the search discards the blamed transformation and retries — full
        CBQT minus the culprit, then heuristic-only, then the
        untransformed plan — recording the degradation on the report.
        *rebuild* supplies a pristine tree for a retry (defaults to
        re-parsing *sql*); *token* arms statement timeout/cancellation,
        which always aborts instead of degrading."""
        config = config or self.config
        resilience = config.resilience
        if not resilience.fallback:
            optimized = self._optimize_attempt(tree, sql, config, token)
            self._record_optimized(optimized)
            return optimized

        all_names = _all_transformation_names()
        quarantine = self.quarantine
        signature = None
        quarantined: list[str] = []
        if quarantine.dirty():
            signature = " ".join(sql.split()) if sql else "<tree>"
            quarantined = sorted(
                name for name in all_names
                if quarantine.is_quarantined(name, signature)
            )
        base_disabled = config.cbqt.disabled_transformations
        if quarantined:
            base_disabled = base_disabled | frozenset(quarantined)
        if rebuild is None:
            if sql:
                rebuild = lambda: self.parse(sql)  # noqa: E731
            else:
                # raw-tree caller: keep a pristine copy for retries
                pristine = tree.clone()
                rebuild = pristine.clone

        blamed: list[str] = []
        failures: list[str] = []
        last_error: Optional[ReproError] = None
        attempts = 0
        for level in ("full", "cbqt-discard", "heuristic", "untransformed"):
            if level == "full":
                enabled, disabled = config.cbqt.enabled, base_disabled
            elif level == "cbqt-discard":
                if not blamed or not config.cbqt.enabled:
                    continue  # nothing to discard / already heuristic
                enabled = True
                disabled = base_disabled | frozenset(blamed)
            elif level == "heuristic":
                enabled = False
                disabled = base_disabled | frozenset(blamed)
            else:
                enabled, disabled = False, all_names
            if (
                enabled == config.cbqt.enabled
                and disabled == config.cbqt.disabled_transformations
            ):
                attempt_config = config  # untroubled fast path: no rewrite
            else:
                attempt_config = replace(
                    config,
                    cbqt=replace(
                        config.cbqt,
                        enabled=enabled,
                        disabled_transformations=disabled,
                    ),
                )
            attempts += 1
            try:
                optimized = self._optimize_attempt(
                    tree, sql, attempt_config, token
                )
            except (StatementTimeout, StatementCancelled):
                raise  # user limits abort; they never degrade
            except ReproError as exc:
                if signature is None:
                    signature = " ".join(sql.split()) if sql else "<tree>"
                name = getattr(exc, "transformation", None)
                if name:
                    quarantine.record_failure(name, signature)
                    if name not in blamed:
                        blamed.append(name)
                failures.append(f"{type(exc).__name__}: {exc}")
                last_error = exc
                tree = rebuild()  # the failed attempt may have mutated it
                continue
            optimized.report.quarantined = quarantined
            if level != "full":
                optimized.report.degradation = DegradationInfo(
                    level=level,
                    reason=failures[-1],
                    blamed=list(blamed),
                    attempts=attempts,
                    errors=list(failures),
                )
            self._record_optimized(optimized)
            return optimized
        assert last_error is not None
        raise last_error

    def _optimize_attempt(
        self,
        tree: QueryNode,
        sql: str,
        config: OptimizerConfig,
        token: Optional[CancelToken],
    ) -> OptimizedQuery:
        """One optimization attempt at one ladder level."""
        if token is not None:
            token.check()  # fast-fail before any optimization work
        columns = list(tree.output_columns())
        physical = self._physical(config, self._memo_session(config, tree))
        resilience = config.resilience
        governor = None
        if (
            token is not None
            or resilience.governor_deadline is not None
            or resilience.governor_max_states is not None
        ):
            governor = SearchGovernor(
                resilience.governor_deadline,
                resilience.governor_max_states,
                token,
            )
        framework = CbqtFramework(
            self.catalog, physical, config.cbqt,
            governor=governor, tracer=self.tracer,
        )
        tree, plan, report = framework.optimize(tree)
        return OptimizedQuery(sql, tree, plan, report, physical.counters, columns)

    def optimize(
        self,
        sql: str,
        config: Optional[OptimizerConfig] = None,
        binds: Optional[dict] = None,
        token: Optional[CancelToken] = None,
    ) -> OptimizedQuery:
        """Transform + plan a query without running it.

        When *binds* are given their values are peeked for selectivity
        estimation (Oracle-style bind peeking); the plan still contains
        bind placeholders and runs correctly for any later values."""

        def build() -> QueryNode:
            tree = self.parse(sql)
            if binds:
                apply_peeks(tree, binds)
            return tree

        return self.optimize_tree(
            build(), sql, config, token=token, rebuild=build
        )

    def explain(self, sql: str, config: Optional[OptimizerConfig] = None) -> str:
        """EXPLAIN-style output: transformed SQL + the operator tree."""
        return self.optimize(sql, config).explain()

    def check(
        self, sql: str, config: Optional[OptimizerConfig] = None
    ) -> DiagnosticReport:
        """Run the optimizer sanitizer over one query and report.

        Optimizes *sql* with the verifiers wired into every
        transformation step (regardless of ``debug_checks``), but in
        reporting mode: violations are collected into the returned
        :class:`~repro.analysis.DiagnosticReport` — attributed to the
        transformation and CBQT state that produced them — instead of
        raising."""
        config = config or self.config
        auditor = TransformationAuditor(
            self.catalog, raise_on_error=False, context=sql
        )
        tree = self.parse(sql)
        physical = self._physical(config)
        framework = CbqtFramework(
            self.catalog, physical, config.cbqt, auditor=auditor
        )
        framework.optimize(tree)
        return auditor.report

    def execute_plan(
        self,
        optimized: OptimizedQuery,
        config: Optional[OptimizerConfig] = None,
        binds: Optional[dict] = None,
        optimize_seconds: float = 0.0,
        cache_status: Optional[str] = None,
        token: Optional[CancelToken] = None,
        analyze: bool = False,
        executor: Optional[str] = None,
        storage: Optional[StorageSnapshot] = None,
    ) -> QueryResult:
        """Run an already-optimized query with the given bind values.

        *token* arms cooperative cancellation: the executor's loops poll
        it and abort with a typed error when it trips.  *analyze*
        profiles every operator (invocations + wall-clock self-time) for
        :meth:`QueryResult.explain_analyze`.  *executor* picks the
        engine for this statement ("row" / "vector" / "parallel");
        the default is the database's :attr:`executor_mode`.  *storage*
        substitutes a pinned :class:`~repro.engine.tables.StorageSnapshot`
        (from :meth:`read_snapshot`) for the live tables, giving the run
        snapshot-read isolation against concurrent writers."""
        config = config or self.config
        mode = executor or self.executor_mode
        if mode not in EXECUTOR_MODES:
            raise ExecutionError(
                f"unknown executor mode {mode!r}; "
                f"expected one of {'/'.join(EXECUTOR_MODES)}"
            )
        physical = self._physical(config)
        row_executor = Executor(
            storage if storage is not None else self.storage,
            self.catalog,
            self.functions,
            plan_subquery=physical.optimize,
            cost_model=config.cost_model,
        )
        started = time.perf_counter()
        with activate(token):
            if mode == "row":
                rows, stats = row_executor.execute(
                    optimized.plan, binds=binds, token=token, analyze=analyze
                )
            else:
                workers = self.executor_workers if mode == "parallel" else 0
                vector = VectorExecutor(row_executor, workers=workers)
                try:
                    rows, stats = vector.execute(
                        optimized.plan,
                        binds=binds,
                        token=token,
                        analyze=analyze,
                    )
                except (StatementTimeout, StatementCancelled):
                    raise
                except ReproError:
                    # The batch engine is an optimization, not an oracle:
                    # under the resilience policy a failure degrades to
                    # the row engine rather than failing the statement.
                    if not config.resilience.fallback:
                        raise
                    if self.metrics is not None:
                        self.metrics.counter("executor.vector_fallbacks").inc()
                    rows, stats = row_executor.execute(
                        optimized.plan,
                        binds=binds,
                        token=token,
                        analyze=analyze,
                    )
        execute_seconds = time.perf_counter() - started
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("executor.statements").inc()
            metrics.histogram("executor.seconds").record(execute_seconds)
            metrics.histogram("executor.work_units").record(stats.work_units)
        return QueryResult(
            rows,
            optimized.columns,
            optimized.plan,
            optimized.report,
            stats,
            optimize_seconds,
            execute_seconds,
            cache_status,
        )

    def execute(
        self,
        sql: str,
        config: Optional[OptimizerConfig] = None,
        binds: Optional[dict] = None,
        timeout: Optional[float] = None,
        token: Optional[CancelToken] = None,
        analyze: bool = False,
        executor: Optional[str] = None,
    ) -> QueryResult:
        """Optimize and run a query (one-shot, no plan cache).

        *timeout* bounds the whole statement (optimize + execute) in
        wall-clock seconds; expiry raises
        :class:`~repro.errors.StatementTimeout`.  *analyze* arms the
        per-operator execution profiler (EXPLAIN ANALYZE)."""
        if token is None and timeout is not None:
            token = CancelToken(timeout)
        elif token is not None and timeout is not None:
            token.set_deadline(timeout)
        with activate(token):
            started = time.perf_counter()
            optimized = self.optimize(sql, config, binds, token=token)
            optimize_seconds = time.perf_counter() - started
            return self.execute_plan(
                optimized,
                config,
                binds,
                optimize_seconds=optimize_seconds,
                token=token,
                analyze=analyze,
                executor=executor,
            )

    def explain_analyze(
        self,
        sql: str,
        config: Optional[OptimizerConfig] = None,
        binds: Optional[dict] = None,
        timing: bool = True,
    ) -> str:
        """EXPLAIN ANALYZE: optimize and *run* the query with operator
        profiling armed, then render estimated vs. actual rows, Q-error,
        invocations, and self-time per operator.  ``timing=False``
        produces deterministic output."""
        result = self.execute(sql, config, binds, analyze=True)
        return result.explain_analyze(timing=timing)

    def reference_execute(
        self, sql: str, binds: Optional[dict] = None
    ) -> list[tuple]:
        """Evaluate with the naive reference evaluator (test oracle)."""
        evaluator = ReferenceEvaluator(self.storage, self.functions, binds)
        return evaluator.evaluate(self.parse(sql))
