"""Cooperative statement cancellation and wall-clock timeouts.

A :class:`CancelToken` is created per statement (``Session.execute(...,
timeout=...)`` or ``Cursor``), threaded through the optimizer's search
governor and the executor's row loops, and checked cooperatively:
``token.check()`` raises :class:`~repro.errors.StatementTimeout` or
:class:`~repro.errors.StatementCancelled` the next time a loop reaches a
check point.  Cancellation is therefore safe anywhere — no state is
destroyed mid-operation, the statement simply unwinds with a typed error.

The module also tracks the *current* token per thread so code without an
explicit handle on the statement (the fault-injection stall helper, the
plan cache) can still honour cancellation.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import StatementCancelled, StatementTimeout

_TLS = threading.local()


class CancelToken:
    """Cooperative cancellation handle for one statement execution.

    Thread-safe: ``cancel()`` may be called from any thread while the
    executing thread polls ``check()``.
    """

    #: class-level construction counter (bench_resilience asserts the
    #: idle path creates zero tokens)
    created = 0

    def __init__(self, timeout: Optional[float] = None) -> None:
        type(self).created += 1
        self._cancelled = threading.Event()
        self._deadline: Optional[float] = None
        #: number of ``check()`` polls served (observability / benches)
        self.checks = 0
        if timeout is not None:
            self.set_deadline(timeout)

    def set_deadline(self, timeout: float) -> None:
        """Arm (or re-arm) the wall-clock deadline *timeout* seconds out."""
        self._deadline = time.monotonic() + timeout

    def cancel(self) -> None:
        """Request cancellation; the executing thread aborts at its next
        check point with :class:`~repro.errors.StatementCancelled`."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def expired(self) -> bool:
        return (
            self._deadline is not None and time.monotonic() >= self._deadline
        )

    def check(self) -> None:
        """Raise if the statement was cancelled or timed out."""
        self.checks += 1
        if self._cancelled.is_set():
            raise StatementCancelled("statement cancelled")
        if self.expired():
            raise StatementTimeout("statement exceeded its timeout")


def current_token() -> Optional[CancelToken]:
    """The token of the statement executing on this thread, if any."""
    return getattr(_TLS, "token", None)


@contextmanager
def activate(token: Optional[CancelToken]) -> Iterator[None]:
    """Publish *token* as this thread's current statement token for the
    duration of the block (None is a no-op, nesting restores)."""
    if token is None:
        yield
        return
    previous = getattr(_TLS, "token", None)
    _TLS.token = token
    try:
        yield
    finally:
        _TLS.token = previous
