"""Deterministic fault-injection harness for the optimizer and executor.

Every layer that can fail in production exposes a *named injection
point*: each transformation (``transform.<name>``), the CBQT costing
call (``cbqt.costing``), each executor operator
(``executor.<PlanClass>``), the plan cache
(``plan_cache.lookup`` / ``plan_cache.store``), and the subplan memo
(``memo.lookup``).  Call sites invoke
:func:`check`, which is a single global-load-and-None-test when no
injector is active — the harness costs nothing unless armed.

A test arms faults with :func:`inject`::

    with inject(FaultSpec("transform.unnest_view", at=2)):
        db.execute(sql)           # 2nd unnest application raises

Faults are deterministic: a :class:`FaultSpec` fires on the *k*-th
invocation of its point, and :meth:`FaultInjector.plan` derives a spec
from a seed so chaos suites can sweep seed matrices reproducibly.  A
``stall`` fault busy-waits honouring the current statement's
:class:`~repro.resilience.cancel.CancelToken` — used to prove timeouts
and ``Cursor.cancel()`` interrupt a wedged operator — and gives up with
:class:`~repro.errors.FaultInjected` after ``stall_limit`` seconds so a
mis-armed test can never hang the suite.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import FaultInjected
from .cancel import CancelToken, current_token

#: executor operator names (mirrors repro.optimizer.plans; kept as
#: strings to avoid importing the executor from this leaf module)
EXECUTOR_OPERATORS = (
    "TableScan",
    "IndexScan",
    "ViewScan",
    "NestedLoopJoin",
    "HashJoin",
    "MergeJoin",
    "Filter",
    "GroupBy",
    "WindowCompute",
    "Project",
    "Distinct",
    "Sort",
    "Limit",
    "SetOp",
)

#: operators the vectorized engine runs natively; each also checks an
#: ``executor.batch.<Op>`` point before producing every batch, so chaos
#: tests can fail an operator mid-stream rather than only at startup
BATCH_OPERATORS = (
    "TableScan",
    "Filter",
    "Project",
    "HashJoin",
    "GroupBy",
    "Distinct",
    "Sort",
    "SetOp",
)

#: non-transformation, non-executor injection points
CORE_POINTS = ("cbqt.costing", "plan_cache.lookup", "plan_cache.store")

#: durable-storage injection points (:mod:`repro.durability`):
#: ``wal.append`` fires before a record is written (commit refused,
#: nothing persisted), ``wal.fsync`` fires before the flush+fsync (the
#: buffered record is rolled back), ``wal.torn_tail`` half-writes the
#: record and poisons the log — simulating a crash mid-append — and
#: ``checkpoint.write`` fails a checkpoint before its temp file is
#: written (the previous checkpoint + WAL stay authoritative)
DURABILITY_POINTS = (
    "wal.append",
    "wal.fsync",
    "wal.torn_tail",
    "checkpoint.write",
)

#: subplan-memo injection points (:mod:`repro.optimizer.memo`):
#: ``memo.lookup`` fires inside a memo lookup; the statement degrades to
#: memo-off (fresh optimization) rather than failing or mis-planning
MEMO_POINTS = ("memo.lookup",)


def injection_points() -> list[str]:
    """Every registered injection point, in a stable order."""
    from ..transform.pipeline import COST_BASED_ORDER, HEURISTIC_ORDER

    points = [
        f"transform.{cls.name}" for cls in HEURISTIC_ORDER + COST_BASED_ORDER
    ]
    points.extend(CORE_POINTS)
    points.extend(f"executor.{name}" for name in EXECUTOR_OPERATORS)
    points.extend(f"executor.batch.{name}" for name in BATCH_OPERATORS)
    points.extend(DURABILITY_POINTS)
    points.extend(MEMO_POINTS)
    return points


@dataclass
class FaultSpec:
    """One armed fault: *point* misbehaves on its ``at``-th invocation."""

    point: str
    #: 1-based invocation ordinal the fault fires on
    at: int = 1
    #: "raise" or "stall"
    kind: str = "raise"
    #: exception type raised (``kind="raise"``); non-ReproError types are
    #: allowed so tests can prove KeyboardInterrupt/SystemExit escape
    #: every handler in transform/ and cbqt/
    error: type = FaultInjected
    message: str = ""
    #: keep firing on every invocation >= ``at``
    repeat: bool = False


class FaultInjector:
    """Counts invocations per injection point and fires matching specs."""

    def __init__(self, *specs: FaultSpec, stall_limit: float = 2.0) -> None:
        self.specs = list(specs)
        self.stall_limit = stall_limit
        self._lock = threading.Lock()
        #: point -> invocations observed while this injector was active
        self.counts: dict[str, int] = {}
        #: (point, invocation, kind) for every fault actually fired
        self.fired: list[tuple[str, int, str]] = []

    @classmethod
    def plan(
        cls,
        seed: int,
        points: Optional[list[str]] = None,
        kinds: tuple[str, ...] = ("raise",),
        max_at: int = 3,
        stall_limit: float = 2.0,
    ) -> "FaultInjector":
        """Derive one fault deterministically from *seed* (chaos sweeps)."""
        rng = random.Random(seed)
        pool = points if points is not None else injection_points()
        spec = FaultSpec(
            point=rng.choice(pool),
            at=rng.randint(1, max_at),
            kind=rng.choice(kinds),
        )
        return cls(spec, stall_limit=stall_limit)

    def fire(self, point: str, token: Optional[CancelToken] = None) -> None:
        with self._lock:
            count = self.counts.get(point, 0) + 1
            self.counts[point] = count
            matched = [
                spec for spec in self.specs
                if spec.point == point
                and (count == spec.at or (spec.repeat and count >= spec.at))
            ]
            if matched:
                self.fired.append((point, count, matched[0].kind))
        for spec in matched:
            if spec.kind == "stall":
                self._stall(point, token)
            else:
                message = spec.message or (
                    f"injected fault at {point} (invocation {count})"
                )
                raise spec.error(message)

    def _stall(self, point: str, token: Optional[CancelToken]) -> None:
        """Wedge until cancelled/timed out; never hangs past stall_limit."""
        deadline = time.monotonic() + self.stall_limit
        while time.monotonic() < deadline:
            if token is not None:
                token.check()
            ambient = current_token()
            if ambient is not None and ambient is not token:
                ambient.check()
            time.sleep(0.0005)
        raise FaultInjected(
            f"stalled operator at {point} exceeded the stall limit "
            f"({self.stall_limit}s) without being cancelled"
        )


#: the active injector (None = harness disarmed, near-zero overhead)
_ACTIVE: Optional[FaultInjector] = None


def check(point: str, token: Optional[CancelToken] = None) -> None:
    """Injection-point hook; a no-op unless a fault injector is active."""
    injector = _ACTIVE
    if injector is not None:
        injector.fire(point, token)


def active() -> Optional[FaultInjector]:
    return _ACTIVE


@contextmanager
def inject(*specs: FaultSpec, stall_limit: float = 2.0,
           injector: Optional[FaultInjector] = None) -> Iterator[FaultInjector]:
    """Arm *specs* (or a prebuilt *injector*) for the duration of the
    block; restores the previous injector on exit."""
    global _ACTIVE
    if injector is None:
        injector = FaultInjector(*specs, stall_limit=stall_limit)
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
