"""The search governor: budgeted, deadline-bounded CBQT state search.

The paper bounds transformation search with cost cut-off and state-space
budgets; the governor generalises that into a per-statement contract:
**optimization always terminates with the best plan found so far**.  The
CBQT framework asks :meth:`SearchGovernor.admit` before costing each
search state; once the wall-clock deadline or the cost-estimation budget
is exhausted every further state is refused, the active search strategies
drain instantly (refused states cost ``inf``), and the framework
transfers whatever incumbent the search had — degrading plan quality,
never failing the statement.

``admit`` also polls the statement's
:class:`~repro.resilience.cancel.CancelToken`, so a user timeout or
``Cursor.cancel()`` aborts optimization (with a typed error) between any
two states — the governor degrades, the token aborts.

When no deadline, no budget, and no token are configured the Database
facade never constructs a governor at all, so the idle optimize path
pays a single ``is None`` test per state (bench_resilience proves the
end-to-end overhead is under 2%).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from .cancel import CancelToken


@dataclass
class GovernorStats:
    """What the governor did for one statement (surfaced in explain)."""

    cost_estimations: int = 0
    #: None while within budget; "deadline" or "state budget" once the
    #: search was cut short and the best-so-far plan was returned
    exhausted: Optional[str] = None

    def describe(self) -> str:
        if self.exhausted is None:
            return f"{self.cost_estimations} cost estimations, within budget"
        return (
            f"search stopped after {self.cost_estimations} cost "
            f"estimations ({self.exhausted} exhausted); best-so-far plan kept"
        )

    def as_dict(self) -> dict:
        """JSON-friendly form for trace events and metrics snapshots."""
        return {
            "cost_estimations": self.cost_estimations,
            "exhausted": self.exhausted,
        }


class SearchGovernor:
    """Per-statement wall-clock + cost-estimation budget for the search."""

    #: class-level construction counter (bench_resilience asserts the
    #: idle path constructs zero governors)
    created = 0

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        max_cost_estimations: Optional[int] = None,
        token: Optional[CancelToken] = None,
    ) -> None:
        type(self).created += 1
        self._deadline = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        self._max = max_cost_estimations
        self._token = token
        self.cost_estimations = 0
        self.exhausted: Optional[str] = None

    def admit(self) -> bool:
        """Account one cost estimation; False once the budget is gone.

        Raises :class:`~repro.errors.StatementTimeout` /
        :class:`~repro.errors.StatementCancelled` via the token — user
        limits abort, governor limits merely degrade.
        """
        token = self._token
        if token is not None:
            token.check()
        if self.exhausted is not None:
            return False
        if self._max is not None and self.cost_estimations >= self._max:
            self.exhausted = "state budget"
            return False
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self.exhausted = "deadline"
            return False
        self.cost_estimations += 1
        return True

    def stats(self) -> GovernorStats:
        return GovernorStats(self.cost_estimations, self.exhausted)
