"""Optimizer resilience layer: never fail a statement the engine could
have run unoptimized.

Production optimizers are judged on robustness as much as plan quality —
one buggy rewrite or pathological search must not abort a statement the
engine could execute with a simpler plan.  This package supplies the
four safeguards, plus the harness that proves them:

* :class:`~repro.resilience.governor.SearchGovernor` — per-statement
  wall-clock deadline and cost-estimation budget for the CBQT search;
  exhaustion returns the best-so-far plan instead of raising;
* the **degradation ladder** (driven by ``Database.optimize_tree``) — on
  a typed error from a transformation or the search, retry full CBQT
  with the blamed transformation discarded, then heuristic-only, then
  the untransformed plan, recording the reason in explain output and
  service metrics;
* :class:`~repro.resilience.quarantine.QuarantineRegistry` — a
  transformation failing repeatedly (per statement signature or
  globally) is disabled for subsequent parses, fix-control style,
  inspectable and resettable at runtime;
* :class:`~repro.resilience.cancel.CancelToken` — statement timeouts and
  cooperative ``Cursor.cancel()`` threaded through the optimizer and the
  executor's row loops;
* :mod:`~repro.resilience.faults` — a deterministic, seed-driven
  fault-injection harness over named injection points (every
  transformation, costing, every executor operator, the plan cache) used
  by the chaos suite to prove each fault yields a correct result via
  fallback or a clean typed error — never a wrong answer or a hang.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import ReproError
from .cancel import CancelToken, activate, current_token
from .faults import (
    FaultInjector,
    FaultSpec,
    inject,
    injection_points,
)
from .governor import GovernorStats, SearchGovernor
from .quarantine import QuarantineRegistry


def _env_fallback() -> bool:
    """Degradation-ladder default from ``REPRO_FALLBACK`` (on unless
    explicitly disabled; the test suite disables it so corruption aborts
    loudly instead of being recovered)."""
    return os.environ.get("REPRO_FALLBACK", "").lower() not in (
        "0", "off", "false", "no",
    )


@dataclass
class ResilienceConfig:
    """Knobs of the resilience layer (one per safeguard)."""

    #: degradation ladder: recover from optimizer errors by retrying at
    #: lower optimization levels instead of failing the statement
    fallback: bool = field(default_factory=_env_fallback)
    #: search governor wall-clock deadline per statement (seconds)
    governor_deadline: Optional[float] = None
    #: search governor budget on cost estimations per statement
    governor_max_states: Optional[int] = None
    #: failures of one transformation on one statement signature before
    #: it is quarantined for that statement
    quarantine_statement_threshold: int = 3
    #: total failures of one transformation before it is quarantined
    #: globally
    quarantine_global_threshold: int = 12


@dataclass
class DegradationInfo:
    """How a statement was rescued by the degradation ladder."""

    #: level that finally succeeded: "cbqt-discard" (full CBQT with the
    #: blamed transformations disabled), "heuristic", or "untransformed"
    level: str
    #: the failure that triggered the final fallback step
    reason: str
    #: transformation names blamed and discarded on the way down
    blamed: list[str] = field(default_factory=list)
    #: optimization attempts spent (including the one that succeeded)
    attempts: int = 1
    #: every failure seen while descending the ladder
    errors: list[str] = field(default_factory=list)

    def describe(self) -> str:
        blamed = f" blamed={','.join(self.blamed)}" if self.blamed else ""
        return f"{self.level} after {self.attempts} attempts{blamed}; {self.reason}"


@contextmanager
def blame(transformation: str) -> Iterator[None]:
    """Attribute any :class:`ReproError` escaping the block to
    *transformation* (innermost attribution wins) so the degradation
    ladder and quarantine know which rewrite to discard."""
    try:
        yield
    except ReproError as exc:
        if getattr(exc, "transformation", None) is None:
            exc.transformation = transformation  # type: ignore[attr-defined]
        raise


__all__ = [
    "CancelToken",
    "DegradationInfo",
    "FaultInjector",
    "FaultSpec",
    "GovernorStats",
    "QuarantineRegistry",
    "ResilienceConfig",
    "SearchGovernor",
    "activate",
    "blame",
    "current_token",
    "inject",
    "injection_points",
]
