"""Transformation quarantine — Oracle fix-control style kill switches.

A transformation that keeps failing is worse than a missing
transformation: every statement it touches pays a failed optimization
attempt before the degradation ladder rescues it.  The registry counts
statement-failing errors blamed on each transformation, both per
statement signature (normalized SQL) and globally; once either count
passes its threshold the transformation is *quarantined* — skipped at
parse time for the matching scope, recorded in the optimization report
and explain output.

Quarantine is an operational state, not a config: it is inspectable and
resettable at runtime (``.quarantine`` in the shell, ``python -m repro
quarantine``, :meth:`QuarantineRegistry.reset`).  Every reset bumps
``epoch``; the plan cache records the epoch on entries that were built
via fallback, so a reset makes the service re-attempt those statements
at full CBQT instead of serving the degraded plan forever.
"""

from __future__ import annotations

import threading
from typing import Optional


class QuarantineRegistry:
    """Thread-safe failure ledger with per-signature and global scopes."""

    def __init__(
        self,
        statement_threshold: int = 3,
        global_threshold: int = 12,
    ) -> None:
        if statement_threshold < 1 or global_threshold < 1:
            raise ValueError("quarantine thresholds must be >= 1")
        self.statement_threshold = statement_threshold
        self.global_threshold = global_threshold
        self._lock = threading.Lock()
        self._global: dict[str, int] = {}
        self._by_statement: dict[tuple[str, str], int] = {}
        #: bumped on every reset; cached degraded plans are re-attempted
        #: at full CBQT when their recorded epoch is stale
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Reset generation, read under the lock: a torn read racing
        :meth:`reset` could misclassify a fresh fallback plan as stale
        (or the reverse) in the plan cache's re-attempt check."""
        with self._lock:
            return self._epoch

    # -- recording ---------------------------------------------------------

    def record_failure(self, transformation: str, signature: str) -> None:
        """Count one statement-failing error blamed on *transformation*
        while optimizing the statement with *signature*."""
        with self._lock:
            self._global[transformation] = (
                self._global.get(transformation, 0) + 1
            )
            key = (transformation, signature)
            self._by_statement[key] = self._by_statement.get(key, 0) + 1

    def dirty(self) -> bool:
        """Cheap lock-free gate for the optimize hot path: False until
        the first failure is ever recorded (dict truthiness is atomic),
        letting untroubled statements skip the per-name lookups."""
        return bool(self._global) or bool(self._by_statement)  # staticcheck: ignore[lock.discipline] documented lock-free gate; dict truthiness is atomic

    def is_quarantined(self, transformation: str, signature: str) -> bool:
        """True when *transformation* must be skipped for this statement
        (its per-signature or global failure count passed a threshold)."""
        with self._lock:
            if self._global.get(transformation, 0) >= self.global_threshold:
                return True
            return (
                self._by_statement.get((transformation, signature), 0)
                >= self.statement_threshold
            )

    # -- lifecycle ---------------------------------------------------------

    def reset(self, transformation: Optional[str] = None) -> None:
        """Clear failure counts (for one transformation, or all) and bump
        the epoch so fallback-cached plans get re-attempted."""
        with self._lock:
            if transformation is None:
                self._global.clear()
                self._by_statement.clear()
            else:
                self._global.pop(transformation, None)
                for key in [
                    k for k in self._by_statement if k[0] == transformation
                ]:
                    del self._by_statement[key]
            self._epoch += 1

    # -- introspection -----------------------------------------------------

    def failures(self, transformation: str) -> int:
        with self._lock:
            return self._global.get(transformation, 0)

    def snapshot(self) -> dict:
        """Counts and currently-quarantined names (global scope)."""
        with self._lock:
            globally_out = sorted(
                name for name, count in self._global.items()
                if count >= self.global_threshold
            )
            statement_out = sorted(
                f"{name} @ {sig}"
                for (name, sig), count in self._by_statement.items()
                if count >= self.statement_threshold
            )
            return {
                "epoch": self._epoch,
                "failures": dict(sorted(self._global.items())),
                "quarantined_global": globally_out,
                "quarantined_statements": statement_out,
            }

    def format_table(self) -> str:
        snap = self.snapshot()
        lines = [
            "transformation quarantine",
            f"  epoch            {snap['epoch']}",
            f"  thresholds       statement={self.statement_threshold} "
            f"global={self.global_threshold}",
        ]
        if not snap["failures"]:
            lines.append("  (no recorded failures)")
        for name, count in snap["failures"].items():
            marker = "  QUARANTINED" if name in snap["quarantined_global"] else ""
            lines.append(f"  {name:<20} {count}{marker}")
        for entry in snap["quarantined_statements"]:
            lines.append(f"  statement-scope: {entry}")
        return "\n".join(lines)
