"""Schema objects: tables, columns, indexes, and integrity constraints.

The catalog is purely definitional — row storage lives in
:mod:`repro.engine.tables` and statistics in
:mod:`repro.catalog.statistics`.  Transformations consult the catalog for
the structural facts they key on: primary/unique keys (join elimination,
group-by removal under JPPD), foreign keys (join elimination), NOT NULL
(null-aware antijoin legality), and index existence (the pre-10g heuristic
unnesting rule from §2.2.1 of the paper).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Iterable, Optional

from ..errors import CatalogError
from ..sql import ast


class DataType(enum.Enum):
    """Column data types.  DATE values are ISO-format strings, which order
    correctly under string comparison."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"

    @classmethod
    def from_sql(cls, type_name: str) -> "DataType":
        name = type_name.upper()
        if name in ("INT", "INTEGER"):
            return cls.INT
        if name in ("NUMBER", "FLOAT"):
            return cls.FLOAT
        if name in ("VARCHAR", "VARCHAR2", "CHAR"):
            return cls.STRING
        if name == "DATE":
            return cls.DATE
        raise CatalogError(f"unsupported SQL type {type_name!r}")


@dataclass
class Column:
    """One column of a table."""

    name: str
    data_type: DataType
    not_null: bool = False

    def __post_init__(self) -> None:
        self.name = self.name.lower()


@dataclass(frozen=True)
class Index:
    """A (B-tree) index on one or more columns of a table."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False

    @property
    def leading_column(self) -> str:
        return self.columns[0]

    def to_dict(self) -> dict:
        """JSON-able form (durability checkpoint / WAL record payload)."""
        return {
            "name": self.name,
            "table": self.table,
            "columns": list(self.columns),
            "unique": self.unique,
        }


def index_from_dict(payload: dict) -> Index:
    """Rebuild an :class:`Index` from :meth:`Index.to_dict` output."""
    return Index(
        payload["name"],
        payload["table"],
        tuple(payload["columns"]),
        bool(payload["unique"]),
    )


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint: ``columns`` reference
    ``ref_table.ref_columns`` (which must be that table's PK or a unique
    key)."""

    table: str
    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]


class TableDef:
    """Definition of one base table."""

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: Optional[tuple[str, ...]] = None,
        unique_keys: Iterable[tuple[str, ...]] = (),
        foreign_keys: Iterable[ForeignKey] = (),
    ):
        self.name = name.lower()
        self.columns: dict[str, Column] = {}
        for column in columns:
            if column.name in self.columns:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            self.columns[column.name] = column
        self.primary_key = primary_key
        self.unique_keys: list[tuple[str, ...]] = list(unique_keys)
        self.foreign_keys: list[ForeignKey] = list(foreign_keys)
        self.indexes: list[Index] = []
        self._validate()

    def _validate(self) -> None:
        for key in ([self.primary_key] if self.primary_key else []) + self.unique_keys:
            for col in key:
                if col not in self.columns:
                    raise CatalogError(
                        f"key column {col!r} not in table {self.name!r}"
                    )
        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in self.columns:
                    raise CatalogError(
                        f"foreign key column {col!r} not in table {self.name!r}"
                    )

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def has_column(self, name: str) -> bool:
        return name.lower() in self.columns

    def column(self, name: str) -> Column:
        try:
            return self.columns[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def all_keys(self) -> list[tuple[str, ...]]:
        """All declared unique keys, primary key first."""
        keys = []
        if self.primary_key:
            keys.append(self.primary_key)
        keys.extend(self.unique_keys)
        for index in self.indexes:
            if index.unique and index.columns not in keys:
                keys.append(index.columns)
        return keys

    def is_unique_key(self, columns: Iterable[str]) -> bool:
        """True if some declared key is a subset of *columns* (so equality
        on *columns* identifies at most one row)."""
        column_set = {c.lower() for c in columns}
        return any(set(key) <= column_set for key in self.all_keys())

    def to_dict(self, include_indexes: bool = True) -> dict:
        """JSON-able form of this definition.

        A durability *checkpoint* serializes with indexes (the fully
        derived state, restored verbatim via :meth:`Catalog.load_table`);
        a ``create_table`` *WAL record* serializes without them — replay
        goes through :meth:`Catalog.add_table`, which re-synthesizes the
        pk/uk auto-indexes deterministically."""
        payload = {
            "name": self.name,
            "columns": [
                {
                    "name": column.name,
                    "type": column.data_type.value,
                    "not_null": column.not_null,
                }
                for column in self.columns.values()
            ],
            "primary_key": list(self.primary_key) if self.primary_key else None,
            "unique_keys": [list(key) for key in self.unique_keys],
            "foreign_keys": [
                {
                    "columns": list(fk.columns),
                    "ref_table": fk.ref_table,
                    "ref_columns": list(fk.ref_columns),
                }
                for fk in self.foreign_keys
            ],
        }
        if include_indexes:
            payload["indexes"] = [index.to_dict() for index in self.indexes]
        return payload

    def __repr__(self) -> str:
        return f"TableDef({self.name}, {len(self.columns)} columns)"


def table_from_dict(payload: dict) -> tuple[TableDef, list[Index]]:
    """Rebuild a :class:`TableDef` (and its serialized indexes, if any)
    from :meth:`TableDef.to_dict` output."""
    name = payload["name"]
    columns = [
        Column(c["name"], DataType(c["type"]), bool(c["not_null"]))
        for c in payload["columns"]
    ]
    primary_key = payload.get("primary_key")
    table = TableDef(
        name,
        columns,
        tuple(primary_key) if primary_key else None,
        [tuple(key) for key in payload.get("unique_keys", [])],
        [
            ForeignKey(
                name,
                tuple(fk["columns"]),
                fk["ref_table"],
                tuple(fk["ref_columns"]),
            )
            for fk in payload.get("foreign_keys", [])
        ],
    )
    indexes = [index_from_dict(ix) for ix in payload.get("indexes", [])]
    return table, indexes


class Catalog:
    """The schema dictionary: table definitions, indexes, and registered
    expensive functions (used by the predicate-pullup transformation).

    The catalog carries monotonic version counters — one global, one per
    table — bumped on every DDL change.  Cached plans record the versions
    of the objects they depend on, making staleness an O(1) comparison
    (the library-cache invalidation hook)."""

    def __init__(self) -> None:
        self.tables: dict[str, TableDef] = {}
        self.indexes: dict[str, Index] = {}
        #: function name -> per-call cost in work units; presence marks the
        #: function as "expensive" per §2.2.6 of the paper.
        self.expensive_functions: dict[str, float] = {}
        #: serializes DDL and version bumps — the server front end runs
        #: DDL on worker threads concurrently with parses on others, and
        #: a lost version bump would leave a stale plan cached forever
        self._lock = threading.Lock()
        self._version = 0
        self._table_versions: dict[str, int] = {}

    # -- versioning --------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every DDL change."""
        return self._version  # staticcheck: ignore[lock.discipline] GIL-atomic int/dict read; writers serialize under the lock

    def table_version(self, name: str) -> int:
        """DDL version of one table (0 until it exists)."""
        return self._table_versions.get(name.lower(), 0)  # staticcheck: ignore[lock.discipline] GIL-atomic int/dict read; writers serialize under the lock

    def _bump(self, table: str) -> None:
        with self._lock:
            self._version += 1
            key = table.lower()
            self._table_versions[key] = self._table_versions.get(key, 0) + 1

    # -- definition --------------------------------------------------------

    def add_table(self, table: TableDef) -> TableDef:
        with self._lock:
            if table.name in self.tables:
                raise CatalogError(f"table {table.name!r} already exists")
            self.tables[table.name] = table
        self._bump(table.name)
        if table.primary_key:
            self._add_key_index(table, table.primary_key, "pk")
        for i, key in enumerate(table.unique_keys):
            self._add_key_index(table, key, f"uk{i}")
        return table

    def _add_key_index(self, table: TableDef, key: tuple[str, ...], tag: str) -> None:
        name = f"{table.name}_{tag}"
        if name not in self.indexes:
            self.add_index(Index(name, table.name, tuple(key), unique=True))

    def add_index(self, index: Index) -> Index:
        if index.name in self.indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        table = self.table(index.table)
        for col in index.columns:
            if not table.has_column(col):
                raise CatalogError(
                    f"index column {col!r} not in table {table.name!r}"
                )
        self.indexes[index.name] = index
        table.indexes.append(index)
        self._bump(table.name)
        if index.unique and index.columns not in table.unique_keys and \
                index.columns != table.primary_key:
            table.unique_keys.append(index.columns)
        return index

    def load_table(self, table: TableDef, indexes: Iterable[Index]) -> TableDef:
        """Install a checkpoint-deserialized table exactly as serialized:
        no pk/uk auto-index synthesis and no unique-key back-propagation —
        the checkpoint already captured the fully derived state."""
        with self._lock:
            if table.name in self.tables:
                raise CatalogError(f"table {table.name!r} already exists")
            self.tables[table.name] = table
        for index in indexes:
            if index.name in self.indexes:
                raise CatalogError(f"index {index.name!r} already exists")
            table.indexes.append(index)
            self.indexes[index.name] = index
        self._bump(table.name)
        return table

    def remove_table(self, name: str) -> None:
        """Back out a table definition and every index on it.

        Only the DDL-rollback and recovery paths call this — user-facing
        DROP TABLE is outside the SQL subset."""
        key = name.lower()
        with self._lock:
            table = self.tables.pop(key, None)
        if table is None:
            return
        for index in table.indexes:
            self.indexes.pop(index.name, None)
        self._bump(key)

    def remove_index(self, name: str) -> None:
        """Back out one index definition (DDL-rollback path only).

        Undoes exactly what :meth:`add_index` did: the unique-key entry it
        back-propagated is removed only when no *other* unique index still
        backs those columns — declared unique keys always keep their
        ``<table>_uk<i>`` auto-index, so they are never dropped here."""
        index = self.indexes.pop(name, None)
        if index is None:
            return
        table = self.tables.get(index.table)  # staticcheck: ignore[lock.discipline] GIL-atomic dict read; DDL serializes under the durability lock
        if table is None:
            return
        table.indexes = [ix for ix in table.indexes if ix.name != name]
        if (
            index.unique
            and index.columns != table.primary_key
            and index.columns in table.unique_keys
            and not any(
                ix.unique and ix.columns == index.columns
                for ix in table.indexes
            )
        ):
            table.unique_keys.remove(index.columns)
        self._bump(table.name)

    def register_expensive_function(self, name: str, cost: float = 1000.0) -> None:
        """Mark *name* as an expensive (procedural / user-defined) function
        with the given per-call cost in work units."""
        self.expensive_functions[name.upper()] = cost

    def create_table_from_ddl(self, stmt: ast.CreateTable) -> TableDef:
        columns = [
            Column(spec.name, DataType.from_sql(spec.type_name), spec.not_null)
            for spec in stmt.columns
        ]
        primary_key: Optional[tuple[str, ...]] = None
        unique_keys: list[tuple[str, ...]] = []
        foreign_keys: list[ForeignKey] = []
        for spec in stmt.columns:
            if spec.primary_key:
                if primary_key is not None:
                    raise CatalogError(
                        f"multiple primary keys in table {stmt.name!r}"
                    )
                primary_key = (spec.name,)
            if spec.unique:
                unique_keys.append((spec.name,))
            if spec.references:
                ref_table, ref_column = spec.references
                foreign_keys.append(
                    ForeignKey(stmt.name, (spec.name,), ref_table, (ref_column,))
                )
        for constraint in stmt.constraints:
            cols = tuple(constraint.columns)
            if constraint.kind == "PRIMARY KEY":
                if primary_key is not None:
                    raise CatalogError(
                        f"multiple primary keys in table {stmt.name!r}"
                    )
                primary_key = cols
            elif constraint.kind == "UNIQUE":
                unique_keys.append(cols)
            else:
                foreign_keys.append(
                    ForeignKey(
                        stmt.name,
                        cols,
                        constraint.ref_table,
                        tuple(constraint.ref_columns or ()),
                    )
                )
        if primary_key:
            for col in columns:
                if col.name in primary_key:
                    col.not_null = True
        return self.add_table(
            TableDef(stmt.name, columns, primary_key, unique_keys, foreign_keys)
        )

    def create_index_from_ddl(self, stmt: ast.CreateIndex) -> Index:
        return self.add_index(
            Index(stmt.name, stmt.table, tuple(stmt.columns), stmt.unique)
        )

    # -- lookup --------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def table(self, name: str) -> TableDef:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def indexes_on(self, table: str, leading_column: Optional[str] = None) -> list[Index]:
        """Indexes on *table*, optionally filtered to those whose leading
        column is *leading_column* (the ones usable for an equality or
        range probe on that column)."""
        result = self.table(table).indexes
        if leading_column is None:
            return list(result)
        leading = leading_column.lower()
        return [ix for ix in result if ix.leading_column == leading]

    def foreign_key_between(
        self, child_table: str, parent_table: str
    ) -> Optional[ForeignKey]:
        """The FK from *child_table* referencing *parent_table*, if any."""
        for fk in self.table(child_table).foreign_keys:
            if fk.ref_table == parent_table.lower():
                return fk
        return None

    def is_expensive_function(self, name: str) -> bool:
        return name.upper() in self.expensive_functions

    def function_cost(self, name: str) -> float:
        return self.expensive_functions.get(name.upper(), 0.0)
