"""Catalog: schema definitions, statistics, and synthetic data generators."""

from .schema import Catalog, Column, DataType, ForeignKey, Index, TableDef
from .statistics import (
    ColumnStats,
    Histogram,
    StatisticsRegistry,
    TableStats,
    collect_statistics,
    sample_statistics,
)

__all__ = [
    "Catalog",
    "Column",
    "DataType",
    "ForeignKey",
    "Index",
    "TableDef",
    "ColumnStats",
    "Histogram",
    "StatisticsRegistry",
    "TableStats",
    "collect_statistics",
    "sample_statistics",
]
